//! # lagoon
//!
//! A Rust reproduction of **Languages as Libraries** (Tobin-Hochstadt,
//! St-Amour, Culpepper, Flatt, Felleisen — PLDI 2011): a Racket-style
//! extensible host language in which a full typed sister language — type
//! system, typed/untyped interoperation via contracts, and a type-driven
//! optimizer — is implemented *as a library*, with no changes to the host
//! compiler.
//!
//! This crate is the facade: it wires the substrate crates together and
//! exposes a small embedding API.
//!
//! ```
//! use lagoon::{Lagoon, EngineKind};
//!
//! let lagoon = Lagoon::new();
//! lagoon.add_module("hello", "#lang lagoon\n(+ 1 2)\n");
//! let v = lagoon.run("hello", EngineKind::Vm)?;
//! assert_eq!(v.to_string(), "3");
//!
//! lagoon.add_module("typed-hello", "#lang typed/lagoon\n(define: x : Integer 40)\n(+ x 2)\n");
//! let v = lagoon.run("typed-hello", EngineKind::Vm)?;
//! assert_eq!(v.to_string(), "42");
//! # Ok::<(), lagoon::RtError>(())
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`lagoon_syntax`] | reader, syntax objects, scope sets, properties |
//! | [`lagoon_runtime`] | values, numeric tower, primitives, contracts |
//! | [`lagoon_vm`] | core IR, AST interpreter, bytecode compiler + VM |
//! | [`lagoon_core`] | hygienic expander, macros, `local-expand`, modules, `#lang` |
//! | [`lagoon_typed`] | the typed sister language (paper §§3–6) |
//! | [`lagoon_optimizer`] | the type-driven optimizer (paper §7) |

#![warn(missing_docs)]

use std::rc::Rc;

pub use lagoon_core::{CompiledModule, EngineKind, ModuleRegistry};
pub use lagoon_diag as diag;
pub use lagoon_diag::{FaultPlan, Limits};
pub use lagoon_runtime::io::capture_output;
pub use lagoon_runtime::{Kind, RtError, Value};
pub use lagoon_syntax::{Datum, Symbol, Syntax};
pub use lagoon_typed::Type;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Runs `f` behind the embedding boundary: refills the per-run resource
/// budgets and converts any escaped panic into an `internal-error`
/// diagnostic instead of unwinding through the caller.
fn guarded<T>(f: impl FnOnce() -> Result<T, RtError>) -> Result<T, RtError> {
    diag::limits::refill();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(RtError::new(
            Kind::Internal,
            format!("internal error: {}", panic_message(payload)),
        )),
    }
}

/// An embedded Lagoon world with the base and typed languages installed.
pub struct Lagoon {
    registry: Rc<ModuleRegistry>,
}

impl Lagoon {
    /// A fresh world with languages `lagoon`, `typed/lagoon` (typechecked
    /// and optimized), and `typed/no-opt` (typechecked only) registered.
    pub fn new() -> Lagoon {
        let registry = ModuleRegistry::new();
        lagoon_optimizer::register_typed_languages(&registry);
        Lagoon { registry }
    }

    /// Registers (or replaces) a module's source text. The source must
    /// start with a `#lang` line.
    pub fn add_module(&self, name: &str, source: &str) {
        self.registry.add_module(name, source);
    }

    /// Compiles and runs a module on the chosen engine, returning the
    /// value of its last top-level expression.
    ///
    /// # Errors
    ///
    /// Returns read, expansion, typecheck, or runtime errors.
    pub fn run(&self, name: &str, engine: EngineKind) -> Result<Value, RtError> {
        guarded(|| self.registry.run(name, engine))
    }

    /// Like [`Lagoon::run`] but captures everything the program printed.
    ///
    /// # Errors
    ///
    /// Returns read, expansion, typecheck, or runtime errors.
    pub fn run_capturing(
        &self,
        name: &str,
        engine: EngineKind,
    ) -> Result<(Value, String), RtError> {
        let (result, output) = capture_output(|| guarded(|| self.registry.run(name, engine)));
        Ok((result?, output))
    }

    /// An exported value from an instantiated module.
    ///
    /// # Errors
    ///
    /// Returns an error if the module fails to run or has no such export.
    pub fn exported(
        &self,
        module: &str,
        export: &str,
        engine: EngineKind,
    ) -> Result<Value, RtError> {
        guarded(|| self.registry.exported_value(module, export, engine))
    }

    /// The fully-expanded core forms of a module, as printable syntax —
    /// useful for inspecting what the typechecker and optimizer produced.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn expanded(&self, module: &str) -> Result<Vec<Syntax>, RtError> {
        guarded(|| self.registry.expanded_body(module))
    }

    /// Like [`Lagoon::run`] but with the diagnostics sink installed for
    /// the duration: returns the result value together with a
    /// [`diag::Report`] covering phase timings, macro/typechecker
    /// counters, the optimizer decision log, contract boundary crossings,
    /// and (when the `vm-counters` feature is on) the executed opcode mix.
    ///
    /// The module (and anything it pulls in) is compiled first, then run
    /// on fresh instances, so the run-phase timing and opcode counts cover
    /// the full execution rather than a cached instance.
    ///
    /// # Errors
    ///
    /// Returns read, expansion, typecheck, or runtime errors.
    pub fn run_with_stats(
        &self,
        name: &str,
        engine: EngineKind,
    ) -> Result<(Value, diag::Report), RtError> {
        let collector = diag::Collector::install();
        let result = guarded(|| {
            self.registry.compile(Symbol::intern(name))?;
            // run on fresh instances so the counters see the whole execution
            self.registry.reset_instances();
            #[cfg(feature = "vm-counters")]
            {
                lagoon_vm::counters::reset();
                lagoon_vm::counters::set_active(true);
            }
            let result = {
                let _t = diag::time(diag::Phase::Run, Symbol::intern(name));
                self.registry.run(name, engine)
            };
            #[cfg(feature = "vm-counters")]
            lagoon_vm::counters::set_active(false);
            result
        });
        if let Err(e) = &result {
            // surface budget exhaustion in the report's limits table
            if let Kind::ResourceExhausted { budget } = e.kind {
                diag::limit_event_named(budget, Symbol::intern(name), e.span);
            }
        }
        diag::uninstall();
        let value = result?;
        #[cfg_attr(not(feature = "vm-counters"), allow(unused_mut))]
        let mut report = collector.report();
        #[cfg(feature = "vm-counters")]
        report.set_opcodes(
            lagoon_vm::counters::snapshot()
                .into_iter()
                .map(|(op, class, count)| diag::OpcodeRow {
                    op: op.to_string(),
                    class: class.name().to_string(),
                    count,
                })
                .collect(),
        );
        Ok((value, report))
    }

    /// Like [`Lagoon::expanded`] but with the diagnostics sink installed:
    /// returns the expanded forms together with a report of per-phase
    /// timings and expansion counters.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn expand_with_stats(&self, module: &str) -> Result<(Vec<Syntax>, diag::Report), RtError> {
        let collector = diag::Collector::install();
        let result = guarded(|| self.registry.expanded_body(module));
        diag::uninstall();
        Ok((result?, collector.report()))
    }

    /// Installs resource limits for everything this thread subsequently
    /// runs: expansion steps/depth, phase-1 and run-time step budgets, VM
    /// stack depth, and an optional wall-clock deadline. Budgets refill to
    /// these limits at every entry point ([`Lagoon::run`] and friends), so
    /// each run gets the full allowance.
    pub fn set_limits(&self, limits: Limits) {
        diag::limits::install(limits);
    }

    /// The resource limits currently in force on this thread.
    pub fn limits(&self) -> Limits {
        diag::limits::current()
    }

    /// The underlying registry, for advanced embedding (registering
    /// additional languages, inspecting compiled modules).
    pub fn registry(&self) -> &Rc<ModuleRegistry> {
        &self.registry
    }
}

impl Default for Lagoon {
    fn default() -> Lagoon {
        Lagoon::new()
    }
}

impl std::fmt::Debug for Lagoon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("#<lagoon>")
    }
}
