//! The `lagoon` command-line tool.
//!
//! ```text
//! lagoon run <file.lag> [--interp] [--stats [--json]] [--no-peephole]
//!            [--no-cache] [--cache-dir <dir>] [--trace <out.json>]
//!            [limit options]
//!                                      run a program (required modules
//!                                      resolve lazily to sibling
//!                                      <name>.lag files at compile time);
//!                                      --stats prints phase timings, the
//!                                      optimizer decision log, and opcode
//!                                      counters (including fused
//!                                      superinstructions), --json
//!                                      machine-readably. --no-peephole
//!                                      disables the VM's bytecode fusion
//!                                      pass (artifacts record the setting,
//!                                      so switching it recompiles).
//!                                      Compiled modules persist as .lagc
//!                                      artifacts under <dir>/compiled (or
//!                                      --cache-dir) and are reused while
//!                                      fresh; --no-cache disables this.
//!                                      --trace writes a Chrome trace-event
//!                                      JSON file (load it in Perfetto or
//!                                      chrome://tracing) of nested phase
//!                                      spans with source attribution, plus
//!                                      a VM sampling profile.
//! lagoon expand <file.lag> [--timings] print the fully-expanded core forms
//! lagoon repl [--typed]                interactive prompt
//!
//! lagoon build <entry.lag>... [--jobs N] [--cache-dir <dir>]
//!              [--no-peephole] [--stats [--json]] [--trace <out.json>]
//!              [limit options]
//!                                      compile a module graph in parallel:
//!                                      the graph is scanned from top-level
//!                                      (require ...) forms and scheduled as
//!                                      a wavefront over N workers sharing
//!                                      one .lagc store. N defaults to the
//!                                      host's available cores (a warning is
//!                                      printed when N oversubscribes them).
//!                                      Deterministic freshening makes
//!                                      --jobs N output byte-identical to
//!                                      --jobs 1. --trace writes one Chrome
//!                                      trace track per worker.
//! lagoon serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!              [--root <dir>] [--cache-dir <dir>] [--no-peephole]
//!              [--max-request-bytes B] [limit options]
//!                                      evaluation daemon: newline-delimited
//!                                      JSON requests over TCP, bounded
//!                                      queue with backpressure, per-request
//!                                      limits and request-size cap, graceful
//!                                      drain on SIGTERM or
//!                                      {"op":"shutdown"}.
//! lagoon gateway [--addr HOST:PORT] [--shards N] [--workers-per-shard M]
//!              [--queue-cap N] [--root <dir>] [--cache-dir <dir>]
//!              [--no-peephole] [--max-request-bytes B] [limit options]
//!                                      HTTP/1.1 front end over N daemon
//!                                      shards (spawned `lagoon serve`
//!                                      processes sharing one .lagc store):
//!                                      POST /v1/run|expand|check and GET
//!                                      /v1/stats|healthz, keep-alive and
//!                                      pipelining, least-outstanding
//!                                      routing with shed-aware failover,
//!                                      dead shards respawned in place.
//! lagoon remote --addr HOST:PORT <run|expand|check> <file.lag> [--json]
//!              [--repeat N] [limit options]
//! lagoon remote --addr HOST:PORT <stats|shutdown> [--json]
//!                                      client for a running daemon;
//!                                      --repeat sends the request N times
//!                                      over one persistent connection.
//!
//! limit options (resource budgets; runaway programs become diagnostics):
//!   --max-steps <n>          run-time VM/interpreter steps
//!   --max-expand-steps <n>   macro-expansion steps
//!   --max-expand-depth <n>   expansion nesting depth
//!   --max-phase1-steps <n>   compile-time (phase-1) evaluation steps
//!   --max-stack-depth <n>    call-frame depth
//!   --timeout-ms <n>         wall-clock deadline in milliseconds
//! ```

use lagoon::{EngineKind, Lagoon, Limits};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  lagoon run <file.lag> [--interp] [--stats [--json]] [--no-peephole] [--no-cache] [--cache-dir <dir>] [--trace <out.json>] [limit options]\n  lagoon expand <file.lag> [--timings]\n  lagoon repl [--typed]\n  lagoon build <entry.lag>... [--jobs N] [--cache-dir <dir>] [--no-peephole] [--stats [--json]] [--trace <out.json>] [limit options]\n  lagoon serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--recycle-after N] [--root <dir>] [--cache-dir <dir>] [--no-peephole] [--max-request-bytes B] [limit options]\n  lagoon gateway [--addr HOST:PORT] [--shards N] [--workers-per-shard M] [--queue-cap N] [--root <dir>] [--cache-dir <dir>] [--no-peephole] [--max-request-bytes B] [limit options]\n  lagoon remote --addr HOST:PORT <run|expand|check|stats|shutdown> [<file.lag>] [--json] [--repeat N] [--retries N] [--backoff-ms B] [limit options]\n\nlimit options:\n  --max-steps <n>  --max-expand-steps <n>  --max-expand-depth <n>\n  --max-phase1-steps <n>  --max-stack-depth <n>  --timeout-ms <n>"
    );
    ExitCode::from(2)
}

/// The value after a `--flag value` pair, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].as_str())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{flag}: bad value '{v}'")),
    }
}

/// Parses the `--max-*`/`--timeout-ms` flags into a [`Limits`] over the
/// defaults. `Ok(None)` means no flag was given.
fn parse_limits(args: &[String]) -> Result<Option<Limits>, String> {
    let mut limits = Limits::default();
    let mut any = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let slot: &mut u64 = match arg.as_str() {
            "--max-steps" => &mut limits.max_vm_steps,
            "--max-expand-steps" => &mut limits.max_expansion_steps,
            "--max-expand-depth" => &mut limits.max_expansion_depth,
            "--max-phase1-steps" => &mut limits.max_phase1_steps,
            "--max-stack-depth" => &mut limits.max_stack_depth,
            "--timeout-ms" => {
                let v = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs a value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{arg}: {e}"))?;
                limits.timeout = Some(std::time::Duration::from_millis(v));
                any = true;
                continue;
            }
            _ => continue,
        };
        *slot = iter
            .next()
            .ok_or_else(|| format!("{arg} needs a value"))?
            .parse::<u64>()
            .map_err(|e| format!("{arg}: {e}"))?;
        any = true;
    }
    Ok(if any { Some(limits) } else { None })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let Some(file) = args.get(1) else {
                return usage();
            };
            let engine = if args.iter().any(|a| a == "--interp") {
                EngineKind::Interp
            } else {
                EngineKind::Vm
            };
            let stats = args.iter().any(|a| a == "--stats");
            let json = args.iter().any(|a| a == "--json");
            // applies to everything this thread compiles, so set it
            // before any Lagoon world is built
            lagoon::set_peephole(!args.iter().any(|a| a == "--no-peephole"));
            let limits = match parse_limits(&args) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let file = Path::new(file);
            let cache_dir =
                if args.iter().any(|a| a == "--no-cache") {
                    None
                } else {
                    let explicit = args
                        .windows(2)
                        .find(|w| w[0] == "--cache-dir")
                        .map(|w| PathBuf::from(&w[1]));
                    Some(explicit.unwrap_or_else(|| {
                        file.parent().unwrap_or(Path::new(".")).join("compiled")
                    }))
                };
            if let Some(trace_out) = flag_value(&args, "--trace") {
                run_file_traced(file, engine, Path::new(trace_out), limits, cache_dir)
            } else if stats {
                run_file_with_stats(file, engine, json, limits, cache_dir)
            } else {
                run_file(file, engine, limits, cache_dir)
            }
        }
        Some("expand") => {
            let Some(file) = args.get(1) else {
                return usage();
            };
            expand_file(Path::new(file), args.iter().any(|a| a == "--timings"))
        }
        Some("repl") => repl(args.iter().any(|a| a == "--typed")),
        Some("build") => build_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("gateway") => gateway_cmd(&args[1..]),
        Some("remote") => remote_cmd(&args[1..]),
        _ => usage(),
    }
}

/// `lagoon build`: parallel wavefront compile of a module graph.
fn build_cmd(args: &[String]) -> ExitCode {
    let entries: Vec<&String> = args
        .iter()
        .filter(|a| a.ends_with(".lag") && !a.starts_with("--"))
        .collect();
    if entries.is_empty() {
        return usage();
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = match parse_flag(args, "--jobs", host_cpus) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if jobs > host_cpus {
        eprintln!(
            "warning: --jobs {jobs} oversubscribes the host ({host_cpus} available \
             core{}); workers are CPU-bound, so extra threads only add contention",
            if host_cpus == 1 { "" } else { "s" }
        );
    }
    let limits = match parse_limits(args) {
        Ok(l) => l.unwrap_or_default(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let first = Path::new(entries[0]);
    let root = first.parent().unwrap_or(Path::new(".")).to_path_buf();
    let cache_dir = flag_value(args, "--cache-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("compiled"));
    let mut names = Vec::new();
    for entry in &entries {
        let path = Path::new(entry);
        if path.parent().unwrap_or(Path::new(".")) != root.as_path() {
            eprintln!("all entries must live in one directory: {entry}");
            return ExitCode::from(2);
        }
        match path.file_stem().and_then(|s| s.to_str()) {
            Some(stem) => names.push(stem.to_string()),
            None => {
                eprintln!("bad file name: {entry}");
                return ExitCode::from(2);
            }
        }
    }
    let trace_out = flag_value(args, "--trace").map(PathBuf::from);
    let opts = lagoon::server::BuildOptions {
        jobs,
        cache_dir: Some(cache_dir),
        limits,
        peephole: !args.iter().any(|a| a == "--no-peephole"),
        trace: trace_out.is_some(),
    };
    let report = lagoon::server::build(&names, lagoon::server::dir_source(root), &opts);
    if let Some(path) = &trace_out {
        let tracks: Vec<(String, lagoon::diag::trace::Trace)> = report
            .traces
            .iter()
            .map(|(i, t)| (format!("worker {i}"), t.clone()))
            .collect();
        let json = lagoon::diag::trace::chrome_trace_json(&tracks, &[]);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {}", path.display());
    }
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        let built = report
            .modules
            .iter()
            .filter(|m| m.status == lagoon::server::ModuleStatus::Built)
            .count();
        println!(
            "built {built}/{} modules with {} jobs in {:.1} ms ({} store hits, {} misses, utilization {:.0}%)",
            report.modules.len(),
            report.jobs,
            report.wall.as_secs_f64() * 1e3,
            report.cache_hits,
            report.cache_misses,
            report.utilization() * 100.0,
        );
        for failure in report.failures() {
            match &failure.status {
                lagoon::server::ModuleStatus::Failed(e) => {
                    eprintln!("{}: {e}", failure.name);
                }
                lagoon::server::ModuleStatus::Skipped(why) => {
                    eprintln!("{}: skipped ({why})", failure.name);
                }
                lagoon::server::ModuleStatus::Built => {}
            }
        }
        if args.iter().any(|a| a == "--stats") {
            print!("{}", report.diag.render_text());
        }
    }
    if report.success() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `lagoon serve`: the evaluation daemon.
fn serve_cmd(args: &[String]) -> ExitCode {
    let limits = match parse_limits(args) {
        Ok(l) => l.unwrap_or_default(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let workers = match parse_flag(args, "--workers", 2usize) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let queue_cap = match parse_flag(args, "--queue-cap", 64usize) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let recycle_after = match parse_flag(args, "--recycle-after", 0usize) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let max_request_bytes = match parse_flag(
        args,
        "--max-request-bytes",
        lagoon::server::daemon::DEFAULT_MAX_REQUEST_BYTES,
    ) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let opts = lagoon::server::ServeOptions {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        workers,
        queue_cap,
        cache_dir: flag_value(args, "--cache-dir").map(PathBuf::from),
        source_root: flag_value(args, "--root").map(PathBuf::from),
        limits,
        peephole: !args.iter().any(|a| a == "--no-peephole"),
        recycle_after,
        // Undocumented: enables the fault-injection ops ("test-panic",
        // "test-kill") the supervision tests drive.
        test_ops: args.iter().any(|a| a == "--test-ops"),
        max_request_bytes,
    };
    lagoon::server::install_sigterm_handler();
    let server = match lagoon::server::Server::start(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    let _ = std::io::stdout().flush();
    if args.iter().any(|a| a == "--stats") {
        eprintln!("{}", server.wait_with_stats());
    } else {
        server.wait();
    }
    ExitCode::SUCCESS
}

/// `lagoon gateway`: the HTTP/1.1 front end over a pool of spawned
/// `lagoon serve` shard processes sharing one compiled store.
fn gateway_cmd(args: &[String]) -> ExitCode {
    let limits = match parse_limits(args) {
        Ok(l) => l.unwrap_or_default(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let parsed: Result<(usize, usize, usize, usize), String> = (|| {
        Ok((
            parse_flag(args, "--shards", 2usize)?,
            parse_flag(args, "--workers-per-shard", 2usize)?,
            parse_flag(args, "--queue-cap", 64usize)?,
            parse_flag(args, "--max-request-bytes", 1usize << 20)?,
        ))
    })();
    let (shards, workers_per_shard, queue_cap, max_body_bytes) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate the lagoon binary for shard spawning: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Limit flags pass through to each spawned shard daemon verbatim.
    let mut extra_shard_args = Vec::new();
    for flag in [
        "--max-steps",
        "--max-expand-steps",
        "--max-expand-depth",
        "--max-phase1-steps",
        "--max-stack-depth",
        "--timeout-ms",
        "--recycle-after",
    ] {
        if let Some(v) = flag_value(args, flag) {
            extra_shard_args.push(flag.to_string());
            extra_shard_args.push(v.to_string());
        }
    }
    let opts = lagoon::gateway::GatewayOptions {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        shards,
        workers_per_shard,
        queue_cap,
        backend: lagoon::gateway::shard::ShardBackend::Process {
            cmd: vec![exe.display().to_string()],
        },
        cache_dir: flag_value(args, "--cache-dir").map(PathBuf::from),
        source_root: flag_value(args, "--root").map(PathBuf::from),
        limits,
        peephole: !args.iter().any(|a| a == "--no-peephole"),
        max_body_bytes,
        request_timeout: Some(std::time::Duration::from_secs(60)),
        test_ops: args.iter().any(|a| a == "--test-ops"),
        extra_shard_args,
    };
    lagoon::server::install_sigterm_handler();
    let gateway = match lagoon::gateway::Gateway::start(opts) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot start gateway: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "gateway listening on {} ({shards} shard{} x {workers_per_shard} worker{})",
        gateway.addr(),
        if shards == 1 { "" } else { "s" },
        if workers_per_shard == 1 { "" } else { "s" },
    );
    let _ = std::io::stdout().flush();
    gateway.wait();
    ExitCode::SUCCESS
}

/// `lagoon remote`: one request against a running daemon.
fn remote_cmd(args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, "--addr") else {
        eprintln!("remote needs --addr HOST:PORT");
        return ExitCode::from(2);
    };
    let op = args.iter().find(|a| {
        matches!(
            a.as_str(),
            "run" | "expand" | "check" | "stats" | "shutdown"
        )
    });
    let Some(op) = op else {
        return usage();
    };
    let request = if matches!(op.as_str(), "stats" | "shutdown") {
        format!("{{\"op\":\"{op}\"}}")
    } else {
        let Some(file) = args.iter().find(|a| a.ends_with(".lag")) else {
            eprintln!("remote {op} needs a <file.lag>");
            return ExitCode::from(2);
        };
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let limits = match parse_limits(args) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let mut wire = Vec::new();
        if let Some(l) = limits {
            wire = vec![
                ("max_expansion_steps", l.max_expansion_steps),
                ("max_expansion_depth", l.max_expansion_depth),
                ("max_phase1_steps", l.max_phase1_steps),
                ("max_vm_steps", l.max_vm_steps),
                ("max_stack_depth", l.max_stack_depth),
            ];
            if let Some(t) = l.timeout {
                wire.push(("timeout_ms", t.as_millis() as u64));
            }
        }
        lagoon::server::client::inline_request(op, &source, wire)
    };
    let retries = match parse_flag(args, "--retries", 3u32) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let backoff_ms = match parse_flag(args, "--backoff-ms", 25u64) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let policy = lagoon::server::client::RetryPolicy {
        attempts: retries.saturating_add(1),
        base: std::time::Duration::from_millis(backoff_ms.max(1)),
        // seed from the pid so concurrent clients jitter differently
        seed: 0x5EED ^ u64::from(std::process::id()),
        ..Default::default()
    };
    let timeout = Some(std::time::Duration::from_secs(60));
    let repeat = match parse_flag(args, "--repeat", 1u64) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if repeat > 1 {
        // One persistent connection for the whole batch, reconnecting
        // only on transport failure, honoring shed retry-after hints.
        return match lagoon::server::client::repeat_request(
            addr, &request, repeat, timeout, &policy,
        ) {
            Ok(outcome) => {
                if args.iter().any(|a| a == "--json") {
                    for response in &outcome.responses {
                        println!("{response}");
                    }
                } else {
                    println!(
                        "{} ok, {} error{} over {repeat} requests in {:.1} ms \
                         ({} retries, {} reconnects)",
                        outcome.ok,
                        outcome.errors,
                        if outcome.errors == 1 { "" } else { "s" },
                        outcome.wall.as_secs_f64() * 1e3,
                        outcome.retries,
                        outcome.reconnects,
                    );
                }
                if outcome.errors == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("request failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match lagoon::server::client::request_line_retry(addr, &request, timeout, &policy) {
        Ok((response, _retries)) => {
            if args.iter().any(|a| a == "--json") {
                println!("{response}");
                return ExitCode::SUCCESS;
            }
            match lagoon::server::json::parse(&response) {
                Ok(parsed) => {
                    let ok = parsed
                        .get("ok")
                        .and_then(lagoon::server::json::Json::as_bool)
                        == Some(true);
                    if ok {
                        if let Some(v) = parsed
                            .get("value")
                            .and_then(lagoon::server::json::Json::as_str)
                        {
                            if let Some(out) = parsed
                                .get("output")
                                .and_then(lagoon::server::json::Json::as_str)
                            {
                                print!("{out}");
                            }
                            println!("{v}");
                        } else {
                            println!("{response}");
                        }
                        ExitCode::SUCCESS
                    } else {
                        let msg = parsed
                            .get("error")
                            .and_then(|e| e.get("message"))
                            .and_then(lagoon::server::json::Json::as_str)
                            .unwrap_or("unknown error");
                        eprintln!("{msg}");
                        ExitCode::FAILURE
                    }
                }
                Err(_) => {
                    println!("{response}");
                    ExitCode::SUCCESS
                }
            }
        }
        Err(e) => {
            eprintln!("request failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Registers `file` as the main module and installs a lazy loader that
/// resolves any module `require`d during compilation — including requires
/// a macro generates mid-expansion, which no pre-scan of the source text
/// could have seen — to a sibling `<name>.lag` file.
fn setup_program(lagoon: &Lagoon, file: &Path) -> Result<String, String> {
    let main_name = file
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| format!("bad file name: {}", file.display()))?
        .to_string();
    let source = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    lagoon.add_module(&main_name, &source);
    let dir = file.parent().unwrap_or(Path::new(".")).to_path_buf();
    lagoon.set_module_loader(move |name| {
        // keep lookups inside the program's directory
        if name.is_empty() || name.contains(['/', '\\']) || name.contains("..") {
            return None;
        }
        std::fs::read_to_string(dir.join(format!("{name}.lag"))).ok()
    });
    Ok(main_name)
}

fn run_file(
    file: &Path,
    engine: EngineKind,
    limits: Option<Limits>,
    cache_dir: Option<PathBuf>,
) -> ExitCode {
    let lagoon = Lagoon::new();
    if let Some(limits) = limits {
        lagoon.set_limits(limits);
    }
    lagoon.set_cache_dir(cache_dir);
    let main = match setup_program(&lagoon, file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match lagoon.run(&main, engine) {
        Ok(v) => {
            if !v.is_void() {
                println!("{}", v.write_string());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `lagoon run --trace out.json`: runs with the structured tracer (and,
/// when the `vm-profile` feature is on, the VM sampling profiler)
/// installed, then writes a Chrome trace-event JSON file loadable in
/// Perfetto or chrome://tracing.
fn run_file_traced(
    file: &Path,
    engine: EngineKind,
    out_path: &Path,
    limits: Option<Limits>,
    cache_dir: Option<PathBuf>,
) -> ExitCode {
    let lagoon = Lagoon::new();
    if let Some(limits) = limits {
        lagoon.set_limits(limits);
    }
    lagoon.set_cache_dir(cache_dir);
    let main = match setup_program(&lagoon, file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    #[cfg(feature = "vm-profile")]
    {
        lagoon_vm::profile::reset();
        lagoon_vm::profile::set_active(true);
    }
    let (result, trace) = lagoon.run_traced(&main, engine);
    #[cfg_attr(not(feature = "vm-profile"), allow(unused_mut))]
    let mut extra: Vec<(&str, String)> = Vec::new();
    #[cfg(feature = "vm-profile")]
    {
        lagoon_vm::profile::set_active(false);
        extra.push(("vmProfile", lagoon_vm::profile::snapshot_json()));
    }
    let tracks = [("main".to_string(), trace)];
    let json = lagoon::diag::trace::chrome_trace_json(&tracks, &extra);
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("cannot write trace {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("trace written to {}", out_path.display());
    match result {
        Ok(v) => {
            if !v.is_void() {
                println!("{}", v.write_string());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn run_file_with_stats(
    file: &Path,
    engine: EngineKind,
    json: bool,
    limits: Option<Limits>,
    cache_dir: Option<PathBuf>,
) -> ExitCode {
    let lagoon = Lagoon::new();
    if let Some(limits) = limits {
        lagoon.set_limits(limits);
    }
    lagoon.set_cache_dir(cache_dir);
    let main = match setup_program(&lagoon, file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match lagoon.run_with_stats(&main, engine) {
        Ok((v, report)) => {
            if json {
                println!(
                    "{{\"result\":{},\"report\":{}}}",
                    lagoon::diag::json_string(&v.write_string()),
                    report.to_json()
                );
            } else {
                if !v.is_void() {
                    println!("{}", v.write_string());
                }
                print!("{}", report.render_text());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn expand_file(file: &Path, timings: bool) -> ExitCode {
    // no compiled store here: `expand` exists to show the expansion,
    // which a cache hit would skip
    let lagoon = Lagoon::new();
    let main = match setup_program(&lagoon, file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if timings {
        lagoon.expand_with_stats(&main).map(|(forms, report)| {
            for form in forms {
                println!("{}", form.to_datum());
            }
            print!("{}", report.render_phases());
        })
    } else {
        lagoon.expanded(&main).map(|forms| {
            for form in forms {
                println!("{}", form.to_datum());
            }
        })
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// A simple accumulating REPL: every input line is appended to a module
/// body which is recompiled and rerun, and the value of the latest
/// expression is printed.
fn repl(typed: bool) -> ExitCode {
    let lang = if typed { "typed/lagoon" } else { "lagoon" };
    println!("lagoon repl (#lang {lang}) — ctrl-d to exit");
    let stdin = std::io::stdin();
    let mut history: Vec<String> = Vec::new();
    let mut generation = 0usize;
    loop {
        print!("> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return ExitCode::SUCCESS,
            Ok(_) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let lagoon = Lagoon::new();
        generation += 1;
        let module = format!("repl-{generation}");
        let mut body = history.join("\n");
        body.push('\n');
        body.push_str(&line);
        lagoon.add_module(&module, &format!("#lang {lang}\n{body}\n"));
        match lagoon.run(&module, EngineKind::Vm) {
            Ok(v) => {
                history.push(line.trim_end().to_string());
                if !v.is_void() {
                    println!("{}", v.write_string());
                }
            }
            Err(e) => eprintln!("{e}"),
        }
    }
}
