//! The `lagoon` command-line tool.
//!
//! ```text
//! lagoon run <file.lag> [--interp] [--stats [--json]] [--no-peephole]
//!            [--no-cache] [--cache-dir <dir>] [limit options]
//!                                      run a program (required modules
//!                                      resolve lazily to sibling
//!                                      <name>.lag files at compile time);
//!                                      --stats prints phase timings, the
//!                                      optimizer decision log, and opcode
//!                                      counters (including fused
//!                                      superinstructions), --json
//!                                      machine-readably. --no-peephole
//!                                      disables the VM's bytecode fusion
//!                                      pass (artifacts record the setting,
//!                                      so switching it recompiles).
//!                                      Compiled modules persist as .lagc
//!                                      artifacts under <dir>/compiled (or
//!                                      --cache-dir) and are reused while
//!                                      fresh; --no-cache disables this.
//! lagoon expand <file.lag> [--timings] print the fully-expanded core forms
//! lagoon repl [--typed]                interactive prompt
//!
//! limit options (resource budgets; runaway programs become diagnostics):
//!   --max-steps <n>          run-time VM/interpreter steps
//!   --max-expand-steps <n>   macro-expansion steps
//!   --max-expand-depth <n>   expansion nesting depth
//!   --max-phase1-steps <n>   compile-time (phase-1) evaluation steps
//!   --max-stack-depth <n>    call-frame depth
//!   --timeout-ms <n>         wall-clock deadline in milliseconds
//! ```

use lagoon::{EngineKind, Lagoon, Limits};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  lagoon run <file.lag> [--interp] [--stats [--json]] [--no-peephole] [--no-cache] [--cache-dir <dir>] [limit options]\n  lagoon expand <file.lag> [--timings]\n  lagoon repl [--typed]\n\nlimit options:\n  --max-steps <n>  --max-expand-steps <n>  --max-expand-depth <n>\n  --max-phase1-steps <n>  --max-stack-depth <n>  --timeout-ms <n>"
    );
    ExitCode::from(2)
}

/// Parses the `--max-*`/`--timeout-ms` flags into a [`Limits`] over the
/// defaults. `Ok(None)` means no flag was given.
fn parse_limits(args: &[String]) -> Result<Option<Limits>, String> {
    let mut limits = Limits::default();
    let mut any = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let slot: &mut u64 = match arg.as_str() {
            "--max-steps" => &mut limits.max_vm_steps,
            "--max-expand-steps" => &mut limits.max_expansion_steps,
            "--max-expand-depth" => &mut limits.max_expansion_depth,
            "--max-phase1-steps" => &mut limits.max_phase1_steps,
            "--max-stack-depth" => &mut limits.max_stack_depth,
            "--timeout-ms" => {
                let v = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs a value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{arg}: {e}"))?;
                limits.timeout = Some(std::time::Duration::from_millis(v));
                any = true;
                continue;
            }
            _ => continue,
        };
        *slot = iter
            .next()
            .ok_or_else(|| format!("{arg} needs a value"))?
            .parse::<u64>()
            .map_err(|e| format!("{arg}: {e}"))?;
        any = true;
    }
    Ok(if any { Some(limits) } else { None })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let Some(file) = args.get(1) else {
                return usage();
            };
            let engine = if args.iter().any(|a| a == "--interp") {
                EngineKind::Interp
            } else {
                EngineKind::Vm
            };
            let stats = args.iter().any(|a| a == "--stats");
            let json = args.iter().any(|a| a == "--json");
            // applies to everything this thread compiles, so set it
            // before any Lagoon world is built
            lagoon::set_peephole(!args.iter().any(|a| a == "--no-peephole"));
            let limits = match parse_limits(&args) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let file = Path::new(file);
            let cache_dir =
                if args.iter().any(|a| a == "--no-cache") {
                    None
                } else {
                    let explicit = args
                        .windows(2)
                        .find(|w| w[0] == "--cache-dir")
                        .map(|w| PathBuf::from(&w[1]));
                    Some(explicit.unwrap_or_else(|| {
                        file.parent().unwrap_or(Path::new(".")).join("compiled")
                    }))
                };
            if stats {
                run_file_with_stats(file, engine, json, limits, cache_dir)
            } else {
                run_file(file, engine, limits, cache_dir)
            }
        }
        Some("expand") => {
            let Some(file) = args.get(1) else {
                return usage();
            };
            expand_file(Path::new(file), args.iter().any(|a| a == "--timings"))
        }
        Some("repl") => repl(args.iter().any(|a| a == "--typed")),
        _ => usage(),
    }
}

/// Registers `file` as the main module and installs a lazy loader that
/// resolves any module `require`d during compilation — including requires
/// a macro generates mid-expansion, which no pre-scan of the source text
/// could have seen — to a sibling `<name>.lag` file.
fn setup_program(lagoon: &Lagoon, file: &Path) -> Result<String, String> {
    let main_name = file
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| format!("bad file name: {}", file.display()))?
        .to_string();
    let source = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    lagoon.add_module(&main_name, &source);
    let dir = file.parent().unwrap_or(Path::new(".")).to_path_buf();
    lagoon.set_module_loader(move |name| {
        // keep lookups inside the program's directory
        if name.is_empty() || name.contains(['/', '\\']) || name.contains("..") {
            return None;
        }
        std::fs::read_to_string(dir.join(format!("{name}.lag"))).ok()
    });
    Ok(main_name)
}

fn run_file(
    file: &Path,
    engine: EngineKind,
    limits: Option<Limits>,
    cache_dir: Option<PathBuf>,
) -> ExitCode {
    let lagoon = Lagoon::new();
    if let Some(limits) = limits {
        lagoon.set_limits(limits);
    }
    lagoon.set_cache_dir(cache_dir);
    let main = match setup_program(&lagoon, file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match lagoon.run(&main, engine) {
        Ok(v) => {
            if !matches!(v, lagoon::Value::Void) {
                println!("{}", v.write_string());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn run_file_with_stats(
    file: &Path,
    engine: EngineKind,
    json: bool,
    limits: Option<Limits>,
    cache_dir: Option<PathBuf>,
) -> ExitCode {
    let lagoon = Lagoon::new();
    if let Some(limits) = limits {
        lagoon.set_limits(limits);
    }
    lagoon.set_cache_dir(cache_dir);
    let main = match setup_program(&lagoon, file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match lagoon.run_with_stats(&main, engine) {
        Ok((v, report)) => {
            if json {
                println!(
                    "{{\"result\":{},\"report\":{}}}",
                    lagoon::diag::json_string(&v.write_string()),
                    report.to_json()
                );
            } else {
                if !matches!(v, lagoon::Value::Void) {
                    println!("{}", v.write_string());
                }
                print!("{}", report.render_text());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn expand_file(file: &Path, timings: bool) -> ExitCode {
    // no compiled store here: `expand` exists to show the expansion,
    // which a cache hit would skip
    let lagoon = Lagoon::new();
    let main = match setup_program(&lagoon, file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if timings {
        lagoon.expand_with_stats(&main).map(|(forms, report)| {
            for form in forms {
                println!("{}", form.to_datum());
            }
            print!("{}", report.render_phases());
        })
    } else {
        lagoon.expanded(&main).map(|forms| {
            for form in forms {
                println!("{}", form.to_datum());
            }
        })
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// A simple accumulating REPL: every input line is appended to a module
/// body which is recompiled and rerun, and the value of the latest
/// expression is printed.
fn repl(typed: bool) -> ExitCode {
    let lang = if typed { "typed/lagoon" } else { "lagoon" };
    println!("lagoon repl (#lang {lang}) — ctrl-d to exit");
    let stdin = std::io::stdin();
    let mut history: Vec<String> = Vec::new();
    let mut generation = 0usize;
    loop {
        print!("> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return ExitCode::SUCCESS,
            Ok(_) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let lagoon = Lagoon::new();
        generation += 1;
        let module = format!("repl-{generation}");
        let mut body = history.join("\n");
        body.push('\n');
        body.push_str(&line);
        lagoon.add_module(&module, &format!("#lang {lang}\n{body}\n"));
        match lagoon.run(&module, EngineKind::Vm) {
            Ok(v) => {
                history.push(line.trim_end().to_string());
                if !matches!(v, lagoon::Value::Void) {
                    println!("{}", v.write_string());
                }
            }
            Err(e) => eprintln!("{e}"),
        }
    }
}
