//! # lagoon-optimizer
//!
//! The type-driven optimizer of *Languages as Libraries* §7, as a
//! library: a source-to-source rewriting pass over fully-expanded,
//! typechecked core forms. It reads the `type` properties the checker
//! attached and rewrites generic operations to the `unsafe-*`
//! type-specialized primitives — which the bytecode backend compiles to
//! dedicated no-dispatch instructions (“they also serve as signals to the
//! code generator”, §7.1).
//!
//! Transformations (paper §7.2's catalogue):
//!
//! * **float specialization** — `(+ e1 e2)` with both operands `Float`
//!   becomes `(unsafe-fl+ e1 e2)` (the paper's figure 5), likewise
//!   `- * / < <= > >= = min max abs sqrt sin cos log exp add1 sub1 zero?`;
//!   `Integer` literals mixed into float arithmetic are promoted at
//!   compile time, and `Integer` expressions via `unsafe-fx->fl`;
//! * **float-complex specialization** — arithmetic and `magnitude` on
//!   `Float-Complex` operands use the fused pairwise `unsafe-fc*`
//!   operations (the arity-raised representation of §7.2);
//! * **fixnum comparisons** — `Integer` comparisons become `unsafe-fx<`
//!   etc. (arithmetic is *not* specialized: Lagoon integers are
//!   overflow-checked, and wrapping would change semantics);
//! * **tag-check elimination** — `car`/`cdr`/`first`/`rest`/`second`/
//!   `third` on operands statically known to be pairs (`List`/`Pairof`
//!   types, not possibly-empty `Listof`) become `unsafe-car`/`unsafe-cdr`
//!   chains (§3.2's `first` example).
//!
//! Use [`register_typed_languages`] to install both the optimizing and
//! non-optimizing typed languages in a registry.

#![warn(missing_docs)]

use lagoon_core::build::{self, id};
use lagoon_core::ModuleRegistry;
use lagoon_diag::Event;
use lagoon_runtime::RtError;
use lagoon_syntax::{Datum, PropValue, Span, Symbol, SynData, Syntax};
use lagoon_typed::check::prop_type;
use lagoon_typed::{Tcx, Type};
use std::cell::Cell;
use std::rc::Rc;

thread_local! {
    static REWRITE_COUNT: Cell<u64> = const { Cell::new(0) };
    static REWRITE_MODULE: Cell<Option<Symbol>> = const { Cell::new(None) };
}

/// Number of specializing rewrites performed on this thread *for the
/// module currently (or most recently) being optimized*. The counter
/// resets each time optimization moves to a new module.
#[deprecated(note = "install a lagoon_diag::Collector and read the decision log \
            (Event::Rewrite) instead")]
pub fn rewrite_count() -> u64 {
    REWRITE_COUNT.with(Cell::get)
}

/// Resets the legacy counter whenever optimization enters a new module,
/// so back-to-back runs no longer report cumulative counts.
fn note_module(module: Symbol) {
    REWRITE_MODULE.with(|m| {
        if m.get() != Some(module) {
            m.set(Some(module));
            REWRITE_COUNT.with(|c| c.set(0));
        }
    });
}

/// The per-expression optimization context: which module is being
/// optimized (for attributing diagnostics) and which rewrite families are
/// enabled.
struct Ctx {
    module: Symbol,
    options: Options,
}

/// Records an applied rewrite: bumps the legacy counter and, when
/// diagnostics are on, logs the decision with its source span.
fn applied(ctx: &Ctx, family: &'static str, op: &str, rule: &'static str, span: Span) {
    REWRITE_COUNT.with(|c| c.set(c.get() + 1));
    if lagoon_diag::trace::active() {
        lagoon_diag::trace::note("rewrite", format!("{op} -> {rule} @ {span}"));
    }
    if lagoon_diag::enabled() {
        lagoon_diag::emit(Event::Rewrite {
            family,
            op: op.to_string(),
            rule,
            module: ctx.module,
            span,
        });
    }
}

/// Records a near-miss: a site that matched a rewrite's shape but was
/// blocked, with the reason. Only constructed when diagnostics are on.
fn near_miss(ctx: &Ctx, family: &'static str, op: &str, span: Span, reason: String) {
    lagoon_diag::emit(Event::NearMiss {
        family,
        op: op.to_string(),
        module: ctx.module,
        span,
        reason,
    });
}

/// The operand's static type rendered for near-miss reasons.
fn type_name(stx: &Syntax) -> String {
    type_of(stx)
        .map(|t| t.to_string())
        .unwrap_or_else(|| "an unannotated type".to_string())
}

/// The computed type the checker attached to an expression, if any.
pub fn type_of(stx: &Syntax) -> Option<Type> {
    match stx.property(prop_type())? {
        PropValue::Datum(d) => Type::from_datum(d).ok(),
        PropValue::Syntax(s) => Type::parse(s).ok(),
    }
}

fn is_float(stx: &Syntax) -> bool {
    matches!(type_of(stx), Some(Type::Float))
}

fn is_int(stx: &Syntax) -> bool {
    matches!(type_of(stx), Some(Type::Integer))
}

fn is_complex(stx: &Syntax) -> bool {
    matches!(type_of(stx), Some(Type::FloatComplex))
}

/// Statically known to be a pair (so `unsafe-car` is safe): fixed-length
/// non-empty lists and pairs, but *not* possibly-empty `Listof`.
fn is_known_pair(stx: &Syntax) -> bool {
    match type_of(stx) {
        Some(Type::Pairof(_, _)) => true,
        Some(Type::List(ts)) => !ts.is_empty(),
        _ => false,
    }
}

fn int_literal(stx: &Syntax) -> Option<i64> {
    match stx.e() {
        SynData::Atom(Datum::Int(n)) => Some(*n),
        SynData::List(items)
            if items.len() == 2 && items[0].sym() == Some(Symbol::intern("quote")) =>
        {
            match items[1].e() {
                SynData::Atom(Datum::Int(n)) => Some(*n),
                _ => None,
            }
        }
        _ => None,
    }
}

fn float_literal_stx(x: f64) -> Syntax {
    build::lst(vec![
        id("quote"),
        Syntax::atom(Datum::Float(x), lagoon_syntax::Span::synthetic()),
    ])
    .with_property(prop_type(), PropValue::Datum(Type::Float.to_datum()))
}

/// Coerces an argument of float arithmetic to a `Float`-typed expression:
/// integer literals become float literals; `Integer` expressions go
/// through `unsafe-fx->fl`; `Float` expressions pass through.
fn coerce_to_float(stx: &Syntax) -> Option<Syntax> {
    if is_float(stx) {
        return Some(stx.clone());
    }
    if let Some(n) = int_literal(stx) {
        return Some(float_literal_stx(n as f64));
    }
    if is_int(stx) {
        return Some(
            build::app(id("unsafe-fx->fl"), vec![stx.clone()])
                .with_property(prop_type(), PropValue::Datum(Type::Float.to_datum())),
        );
    }
    None
}

/// Coerces an argument of float-complex arithmetic to `Float-Complex`.
fn coerce_to_complex(stx: &Syntax) -> Option<Syntax> {
    if is_complex(stx) {
        return Some(stx.clone());
    }
    if let Some(n) = int_literal(stx) {
        return Some(build::lst(vec![
            id("quote"),
            Syntax::atom(
                Datum::Complex(n as f64, 0.0),
                lagoon_syntax::Span::synthetic(),
            ),
        ]));
    }
    if let SynData::List(items) = stx.e() {
        if items.len() == 2 && items[0].sym() == Some(Symbol::intern("quote")) {
            if let SynData::Atom(Datum::Float(x)) = items[1].e() {
                return Some(build::lst(vec![
                    id("quote"),
                    Syntax::atom(Datum::Complex(*x, 0.0), lagoon_syntax::Span::synthetic()),
                ]));
            }
        }
    }
    if is_float(stx) || is_int(stx) {
        let as_float = coerce_to_float(stx)?;
        return Some(build::app(
            id("make-rectangular"),
            vec![as_float, float_literal_stx(0.0)],
        ));
    }
    None
}

fn strip_rename(sym: Symbol) -> String {
    sym.with_str(|s| lagoon_syntax::strip_gensym(s).to_string())
}

const FL_BINOPS: &[(&str, &str)] = &[
    ("+", "unsafe-fl+"),
    ("-", "unsafe-fl-"),
    ("*", "unsafe-fl*"),
    ("/", "unsafe-fl/"),
    ("<", "unsafe-fl<"),
    ("<=", "unsafe-fl<="),
    (">", "unsafe-fl>"),
    (">=", "unsafe-fl>="),
    ("=", "unsafe-fl="),
    ("min", "unsafe-flmin"),
    ("max", "unsafe-flmax"),
];

const FL_UNOPS: &[(&str, &str)] = &[
    ("abs", "unsafe-flabs"),
    ("sqrt", "unsafe-flsqrt"),
    ("sin", "unsafe-flsin"),
    ("cos", "unsafe-flcos"),
    ("atan", "unsafe-flatan"),
    ("log", "unsafe-fllog"),
    ("exp", "unsafe-flexp"),
    ("floor", "unsafe-flfloor"),
];

const FX_CMPS: &[(&str, &str)] = &[
    ("<", "unsafe-fx<"),
    ("<=", "unsafe-fx<="),
    (">", "unsafe-fx>"),
    (">=", "unsafe-fx>="),
    ("=", "unsafe-fx="),
];

const FC_BINOPS: &[(&str, &str)] = &[
    ("+", "unsafe-fc+"),
    ("-", "unsafe-fc-"),
    ("*", "unsafe-fc*"),
    ("/", "unsafe-fc/"),
];

/// Which rewrite families the optimizer applies — each corresponds to one
/// of the paper §7.2 transformation classes, so ablation benches can
/// attribute the speedup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Options {
    /// Float specialization (figure 5).
    pub floats: bool,
    /// Float-complex specialization / arity raising.
    pub complexes: bool,
    /// Fixnum comparison specialization.
    pub fixnums: bool,
    /// Tag-check elimination on pairs (`car`/`first`/…).
    pub pairs: bool,
}

impl Options {
    /// Everything on — the paper's configuration.
    pub fn full() -> Options {
        Options {
            floats: true,
            complexes: true,
            fixnums: true,
            pairs: true,
        }
    }

    /// Everything off (a no-op optimizer, for sanity checks).
    pub fn none() -> Options {
        Options {
            floats: false,
            complexes: false,
            fixnums: false,
            pairs: false,
        }
    }
}

impl Default for Options {
    fn default() -> Options {
        Options::full()
    }
}

/// Generic arithmetic that stays generic on `Integer` operands: Lagoon
/// integers are overflow-checked, so wrapping `unsafe-fx` arithmetic
/// would change semantics (only *comparisons* are fixnum-specialized).
const INT_ARITH: &[&str] = &["+", "-", "*", "/", "min", "max"];

/// Rewrites one application whose operands have already been optimized.
/// Returns `None` if no specialization applies; `span` is the original
/// application's source location, attached to logged decisions.
fn specialize_app(op_name: &str, args: &[Syntax], span: Span, ctx: &Ctx) -> Option<Syntax> {
    let options = &ctx.options;
    let diag = lagoon_diag::enabled();
    // float binary ops: both operands coercible to Float, at least one
    // actually Float (otherwise leave integer arithmetic alone)
    if args.len() == 2 {
        if let Some((_, unsafe_op)) = FL_BINOPS.iter().find(|(g, _)| *g == op_name) {
            if options.floats
                && (is_float(&args[0]) || is_float(&args[1]))
                && !is_complex(&args[0])
                && !is_complex(&args[1])
            {
                match (coerce_to_float(&args[0]), coerce_to_float(&args[1])) {
                    (Some(a), Some(b)) => {
                        applied(ctx, "float", op_name, unsafe_op, span);
                        return Some(build::app(id(unsafe_op), vec![a, b]));
                    }
                    (a, _) => {
                        if diag {
                            let bad = if a.is_none() { &args[0] } else { &args[1] };
                            near_miss(
                                ctx,
                                "float",
                                op_name,
                                span,
                                format!(
                                    "mixed operands: one side has static type {}, \
                                     which cannot be coerced to Float",
                                    type_name(bad)
                                ),
                            );
                        }
                    }
                }
            }
        }
        if let Some((_, unsafe_op)) = FC_BINOPS.iter().find(|(g, _)| *g == op_name) {
            if options.complexes && (is_complex(&args[0]) || is_complex(&args[1])) {
                match (coerce_to_complex(&args[0]), coerce_to_complex(&args[1])) {
                    (Some(a), Some(b)) => {
                        applied(ctx, "float-complex", op_name, unsafe_op, span);
                        return Some(build::app(id(unsafe_op), vec![a, b]));
                    }
                    (a, _) => {
                        if diag {
                            let bad = if a.is_none() { &args[0] } else { &args[1] };
                            near_miss(
                                ctx,
                                "float-complex",
                                op_name,
                                span,
                                format!(
                                    "mixed operands: one side has static type {}, \
                                     which cannot be coerced to Float-Complex",
                                    type_name(bad)
                                ),
                            );
                        }
                    }
                }
            }
        }
        if let Some((_, unsafe_op)) = FX_CMPS.iter().find(|(g, _)| *g == op_name) {
            if options.fixnums {
                if is_int(&args[0]) && is_int(&args[1]) {
                    applied(ctx, "fixnum", op_name, unsafe_op, span);
                    return Some(build::app(
                        id(unsafe_op),
                        vec![args[0].clone(), args[1].clone()],
                    ));
                }
                // one known-Integer side against a wider type, and the
                // float family above didn't already claim the site
                if diag
                    && (is_int(&args[0]) ^ is_int(&args[1]))
                    && !is_float(&args[0])
                    && !is_float(&args[1])
                {
                    let other = if is_int(&args[0]) { &args[1] } else { &args[0] };
                    near_miss(
                        ctx,
                        "fixnum",
                        op_name,
                        span,
                        format!(
                            "mixed operands: one side has static type {}, not Integer",
                            type_name(other)
                        ),
                    );
                }
            }
        }
        if diag
            && options.fixnums
            && INT_ARITH.contains(&op_name)
            && is_int(&args[0])
            && is_int(&args[1])
        {
            near_miss(
                ctx,
                "fixnum",
                op_name,
                span,
                "Integer arithmetic is overflow-checked; wrapping unsafe-fx \
                 arithmetic would change semantics (comparisons do specialize)"
                    .to_string(),
            );
        }
    }
    if args.len() == 1 {
        let a = &args[0];
        if let Some((_, unsafe_op)) = FL_UNOPS.iter().find(|(g, _)| *g == op_name) {
            if options.floats && is_float(a) {
                applied(ctx, "float", op_name, unsafe_op, span);
                return Some(build::app(id(unsafe_op), vec![a.clone()]));
            }
        }
        match op_name {
            "add1" if options.floats && is_float(a) => {
                applied(ctx, "float", op_name, "unsafe-fl+", span);
                return Some(build::app(
                    id("unsafe-fl+"),
                    vec![a.clone(), float_literal_stx(1.0)],
                ));
            }
            "sub1" if options.floats && is_float(a) => {
                applied(ctx, "float", op_name, "unsafe-fl-", span);
                return Some(build::app(
                    id("unsafe-fl-"),
                    vec![a.clone(), float_literal_stx(1.0)],
                ));
            }
            "zero?" if options.floats && is_float(a) => {
                applied(ctx, "float", op_name, "unsafe-fl=", span);
                return Some(build::app(
                    id("unsafe-fl="),
                    vec![a.clone(), float_literal_stx(0.0)],
                ));
            }
            "zero?" if options.fixnums && is_int(a) => {
                applied(ctx, "fixnum", op_name, "unsafe-fx=", span);
                return Some(build::app(
                    id("unsafe-fx="),
                    vec![a.clone(), build::lst(vec![id("quote"), build::int(0)])],
                ));
            }
            "magnitude" if options.complexes && is_complex(a) => {
                applied(ctx, "float-complex", op_name, "unsafe-fcmagnitude", span);
                return Some(build::app(id("unsafe-fcmagnitude"), vec![a.clone()]));
            }
            "exact->inexact" if options.floats && is_int(a) => {
                applied(ctx, "float", op_name, "unsafe-fx->fl", span);
                return Some(build::app(id("unsafe-fx->fl"), vec![a.clone()]));
            }
            "car" | "first" if options.pairs && is_known_pair(a) => {
                applied(ctx, "pairs", op_name, "unsafe-car", span);
                return Some(build::app(id("unsafe-car"), vec![a.clone()]));
            }
            "cdr" | "rest" if options.pairs && is_known_pair(a) => {
                applied(ctx, "pairs", op_name, "unsafe-cdr", span);
                return Some(build::app(id("unsafe-cdr"), vec![a.clone()]));
            }
            "second" | "cadr" if options.pairs && is_known_pair(a) && pair_depth(a) >= 2 => {
                applied(ctx, "pairs", op_name, "unsafe-car", span);
                let cdr = build::app(id("unsafe-cdr"), vec![a.clone()]);
                return Some(build::app(id("unsafe-car"), vec![cdr]));
            }
            "third" | "caddr" if options.pairs && is_known_pair(a) && pair_depth(a) >= 3 => {
                applied(ctx, "pairs", op_name, "unsafe-car", span);
                let cdr = build::app(id("unsafe-cdr"), vec![a.clone()]);
                let cddr = build::app(id("unsafe-cdr"), vec![cdr]);
                return Some(build::app(id("unsafe-car"), vec![cddr]));
            }
            "car" | "first" | "cdr" | "rest"
                if diag && options.pairs && matches!(type_of(a), Some(Type::Listof(_))) =>
            {
                near_miss(
                    ctx,
                    "pairs",
                    op_name,
                    span,
                    format!(
                        "operand has possibly-empty static type {}; the pair \
                         tag check cannot be dropped",
                        type_name(a)
                    ),
                );
            }
            "second" | "cadr" | "third" | "caddr" if diag && options.pairs && is_known_pair(a) => {
                near_miss(
                    ctx,
                    "pairs",
                    op_name,
                    span,
                    format!(
                        "known list prefix of {} is too short for {op_name}",
                        type_name(a)
                    ),
                );
            }
            _ => {}
        }
    }
    None
}

/// Known fixed-prefix length of the operand's list type.
fn pair_depth(stx: &Syntax) -> usize {
    match type_of(stx) {
        Some(Type::List(ts)) => ts.len(),
        Some(Type::Pairof(_, b)) => 1 + pair_depth_ty(&b),
        _ => 0,
    }
}

fn pair_depth_ty(t: &Type) -> usize {
    match t {
        Type::List(ts) => ts.len(),
        Type::Pairof(_, b) => 1 + pair_depth_ty(b),
        _ => 0,
    }
}

/// Optimizes one fully-expanded, type-annotated core form (the paper's
/// figure 5, generalized). Recurs structurally; the output is still a
/// valid core form with type properties preserved where unchanged.
///
/// # Errors
///
/// Returns an error only on malformed core syntax (an internal bug).
pub fn optimize(tcx: &Tcx, stx: &Syntax) -> Result<Syntax, RtError> {
    let ctx = Ctx {
        module: tcx.exp.module_name,
        options: Options::full(),
    };
    note_module(ctx.module);
    optimize_expr(stx, &ctx)
}

/// Like [`optimize`] but with a configurable rewrite-family selection —
/// the ablation hook.
pub fn optimize_with(options: Options) -> std::rc::Rc<lagoon_typed::OptimizeFn> {
    Rc::new(move |tcx: &Tcx, stx: &Syntax| {
        let ctx = Ctx {
            module: tcx.exp.module_name,
            options,
        };
        note_module(ctx.module);
        optimize_expr(stx, &ctx)
    })
}

fn optimize_expr(stx: &Syntax, ctx: &Ctx) -> Result<Syntax, RtError> {
    let Some(items) = stx.as_list() else {
        return Ok(stx.clone());
    };
    let Some(head) = items.first().and_then(Syntax::sym) else {
        return Ok(stx.clone());
    };
    let items = items.to_vec();
    let rebuilt = |new_items: Vec<Syntax>| stx.with_data(SynData::List(new_items));
    head.with_str(|head| match head {
        "quote" | "quote-syntax" => Ok(stx.clone()),
        "if" | "begin" | "set!" => {
            let mut out = vec![items[0].clone()];
            // set! keeps its target identifier untouched
            let start = if head == "set!" {
                out.push(items[1].clone());
                2
            } else {
                1
            };
            for e in &items[start..] {
                out.push(optimize_expr(e, ctx)?);
            }
            Ok(rebuilt(out))
        }
        "#%plain-lambda" => {
            let mut out = vec![items[0].clone(), items[1].clone()];
            for e in &items[2..] {
                out.push(optimize_expr(e, ctx)?);
            }
            Ok(rebuilt(out))
        }
        "let-values" | "letrec-values" => {
            let clauses = items[1]
                .as_list()
                .map(|cs| {
                    cs.iter()
                        .map(|clause| {
                            let parts = clause.as_list().unwrap();
                            Ok(clause.with_data(SynData::List(vec![
                                parts[0].clone(),
                                optimize_expr(&parts[1], ctx)?,
                            ])))
                        })
                        .collect::<Result<Vec<_>, RtError>>()
                })
                .transpose()?
                .unwrap_or_default();
            let mut out = vec![items[0].clone(), items[1].with_data(SynData::List(clauses))];
            for e in &items[2..] {
                out.push(optimize_expr(e, ctx)?);
            }
            Ok(rebuilt(out))
        }
        "define-values" => {
            let mut out = vec![items[0].clone(), items[1].clone()];
            out.push(optimize_expr(&items[2], ctx)?);
            Ok(rebuilt(out))
        }
        "#%plain-app" => {
            let op = &items[1];
            let args = items[2..]
                .iter()
                .map(|a| optimize_expr(a, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            if let Some(op_sym) = op.sym() {
                let name = strip_rename(op_sym);
                if let Some(specialized) = specialize_app(&name, &args, stx.span(), ctx) {
                    // keep the application's computed type annotation
                    return Ok(specialized.copy_properties_from(stx));
                }
            }
            let mut out = vec![items[0].clone(), optimize_expr(op, ctx)?];
            out.extend(args);
            Ok(rebuilt(out))
        }
        _ => Ok(stx.clone()),
    })
}

/// Registers typed languages in `registry`:
///
/// * `typed/lagoon` — typechecked **and** optimized (the paper's Typed
///   Racket configuration);
/// * `typed/no-opt` — typechecked only (the ablation baseline).
pub fn register_typed_languages(registry: &Rc<ModuleRegistry>) {
    lagoon_typed::register(registry, "typed/lagoon", Some(Rc::new(optimize)));
    lagoon_typed::register(registry, "typed/no-opt", None);
}

/// Registers one ablation language per rewrite family: each
/// `typed/only-<family>` applies exactly that family, so the ablation
/// bench can attribute the optimizer's speedup (DESIGN.md's ablation
/// study).
pub fn register_ablation_languages(registry: &Rc<ModuleRegistry>) {
    let families: [(&str, Options); 4] = [
        (
            "typed/only-floats",
            Options {
                floats: true,
                ..Options::none()
            },
        ),
        (
            "typed/only-complexes",
            Options {
                complexes: true,
                ..Options::none()
            },
        ),
        (
            "typed/only-fixnums",
            Options {
                fixnums: true,
                ..Options::none()
            },
        ),
        (
            "typed/only-pairs",
            Options {
                pairs: true,
                ..Options::none()
            },
        ),
    ];
    for (name, options) in families {
        lagoon_typed::register(registry, name, Some(optimize_with(options)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_core::{EngineKind, ModuleRegistry};
    use lagoon_runtime::Value;

    fn registry() -> Rc<ModuleRegistry> {
        let reg = ModuleRegistry::new();
        register_typed_languages(&reg);
        reg
    }

    fn run(src: &str) -> Value {
        let reg = registry();
        reg.add_module("main", src);
        reg.run("main", EngineKind::Vm).unwrap()
    }

    fn expanded(src: &str) -> String {
        let reg = registry();
        reg.add_module("main", src);
        reg.expanded_body("main")
            .unwrap()
            .iter()
            .map(|s| s.to_datum().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn float_addition_specializes() {
        // the paper's figure 5 rewrite
        let out = expanded(
            "#lang typed/lagoon
             (define: (f [x : Float] [y : Float]) : Float (+ x y))",
        );
        assert!(out.contains("unsafe-fl+"), "no rewrite in: {out}");
    }

    #[test]
    fn integer_arithmetic_is_untouched() {
        let out = expanded(
            "#lang typed/lagoon
             (define: (f [x : Integer] [y : Integer]) : Integer (+ x y))",
        );
        assert!(
            !out.contains("unsafe-fx+"),
            "unsafe integer arith in: {out}"
        );
        assert!(!out.contains("unsafe-fl+"), "float rewrite in: {out}");
    }

    #[test]
    fn integer_comparisons_specialize() {
        let out = expanded(
            "#lang typed/lagoon
             (define: (f [x : Integer]) : Boolean (< x 10))",
        );
        assert!(out.contains("unsafe-fx<"), "no rewrite in: {out}");
    }

    #[test]
    fn mixed_literal_promotes() {
        let out = expanded(
            "#lang typed/lagoon
             (define: (f [x : Float]) : Float (* 2 x))",
        );
        assert!(out.contains("unsafe-fl*"), "no rewrite in: {out}");
        assert!(out.contains("2.0"), "literal not promoted in: {out}");
    }

    #[test]
    fn complex_arithmetic_specializes() {
        let out = expanded(
            "#lang typed/lagoon
             (define: (f [z : Float-Complex]) : Float-Complex (* z 2.0+2.0i))",
        );
        assert!(out.contains("unsafe-fc*"), "no rewrite in: {out}");
    }

    #[test]
    fn magnitude_specializes() {
        let out = expanded(
            "#lang typed/lagoon
             (define: (f [z : Float-Complex]) : Float (magnitude z))",
        );
        assert!(out.contains("unsafe-fcmagnitude"), "no rewrite in: {out}");
    }

    #[test]
    fn first_on_fixed_list_specializes() {
        // paper §3.2: "this program need not check that the argument to
        // first is a pair"
        let out = expanded(
            "#lang typed/lagoon
             (define: p : (List Number Number Number) (list 1 2 3))
             (first p)",
        );
        assert!(out.contains("unsafe-car"), "no rewrite in: {out}");
    }

    #[test]
    fn car_on_possibly_empty_list_is_untouched() {
        let out = expanded(
            "#lang typed/lagoon
             (define: (f [l : (Listof Integer)]) : Integer (car l))",
        );
        assert!(!out.contains("unsafe-car"), "unsound rewrite in: {out}");
    }

    #[test]
    fn no_opt_language_skips_rewrites() {
        let reg = registry();
        reg.add_module(
            "main",
            "#lang typed/no-opt
             (define: (f [x : Float] [y : Float]) : Float (+ x y))",
        );
        let out = reg
            .expanded_body("main")
            .unwrap()
            .iter()
            .map(|s| s.to_datum().to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!out.contains("unsafe-fl+"), "no-opt rewrote: {out}");
    }

    #[test]
    fn optimized_programs_compute_the_same_results() {
        let v = run("#lang typed/lagoon
             (define: (norm [x : Float] [y : Float]) : Float
               (sqrt (+ (* x x) (* y y))))
             (norm 3.0 4.0)");
        assert_eq!(v.as_float(), Some(5.0));

        // the paper §3.2 Float-Complex loop
        let v = run("#lang typed/lagoon
             (define: (count [f : Float-Complex]) : Integer
               (let: loop : Integer ([f : Float-Complex f])
                 (if (< (magnitude f) 0.001)
                     0
                     (add1 (loop (/ f 2.0+2.0i))))))
             (count 8.0+8.0i)");
        assert!(v.as_int().is_some_and(|n| n > 5));
    }

    #[test]
    fn optimized_and_unoptimized_agree() {
        let src_body = "(define: (poly [x : Float]) : Float
               (+ (* 3.0 (* x x)) (+ (* 2.0 x) 1.0)))
             (define: (go [i : Integer] [acc : Float]) : Float
               (if (= i 0) acc (go (- i 1) (+ acc (poly (exact->inexact i))))))
             (go 50 0.0)";
        let opt = run(&format!("#lang typed/lagoon\n{src_body}"));
        let reg = registry();
        reg.add_module("main", &format!("#lang typed/no-opt\n{src_body}"));
        let unopt = reg.run("main", EngineKind::Vm).unwrap();
        assert!(opt.equal(&unopt), "opt={opt} unopt={unopt}");
    }

    #[test]
    fn bench_shape_float_kernel_faster_optimized() {
        // a smoke check of the performance channel (full benchmarks live
        // in lagoon-bench): the optimized kernel must not be slower
        let body = "(define: (go [i : Integer] [acc : Float]) : Float
               (if (= i 0) acc (go (- i 1) (sqrt (+ (* acc acc) 1.0)))))
             (go 20000 1.0)";
        let reg = registry();
        reg.add_module("opt", &format!("#lang typed/lagoon\n{body}"));
        reg.add_module("unopt", &format!("#lang typed/no-opt\n{body}"));
        // warm both
        reg.run("opt", EngineKind::Vm).unwrap();
        reg.run("unopt", EngineKind::Vm).unwrap();
        // compiled code differs
        let opt_code = reg.expanded_body("opt").unwrap();
        let unopt_code = reg.expanded_body("unopt").unwrap();
        let opt_str: String = opt_code.iter().map(|s| s.to_string()).collect();
        let unopt_str: String = unopt_code.iter().map(|s| s.to_string()).collect();
        assert!(opt_str.contains("unsafe-fl"));
        assert!(!unopt_str.contains("unsafe-fl"));
    }
}

#[cfg(test)]
mod decision_log_tests {
    use super::*;
    use lagoon_core::ModuleRegistry;
    use lagoon_diag::{Collector, Event};

    /// Expands `src` as module `main` with a collector installed and
    /// returns the recorded events.
    fn events_for(src: &str) -> Vec<Event> {
        let reg = ModuleRegistry::new();
        register_typed_languages(&reg);
        reg.add_module("main", src);
        let collector = Collector::install();
        let result = reg.expanded_body("main");
        lagoon_diag::uninstall();
        result.unwrap();
        collector.events()
    }

    fn rewrites(events: &[Event]) -> Vec<(&'static str, String, &'static str, u32)> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Rewrite {
                    family,
                    op,
                    rule,
                    span,
                    ..
                } => Some((*family, op.clone(), *rule, span.line)),
                _ => None,
            })
            .collect()
    }

    fn near_misses(events: &[Event]) -> Vec<(&'static str, String, String, u32)> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::NearMiss {
                    family,
                    op,
                    reason,
                    span,
                    ..
                } => Some((*family, op.clone(), reason.clone(), span.line)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn float_rewrite_logs_one_event_with_span() {
        let events =
            events_for("#lang typed/lagoon\n(define: (f [x : Float] [y : Float]) : Float (+ x y))");
        let rs = rewrites(&events);
        assert_eq!(rs.len(), 1, "expected exactly one rewrite: {rs:?}");
        let (family, op, rule, line) = &rs[0];
        assert_eq!(*family, "float");
        assert_eq!(op, "+");
        assert_eq!(*rule, "unsafe-fl+");
        assert_eq!(*line, 2, "span should point at the source line");
    }

    #[test]
    fn fixnum_comparison_logs_one_event() {
        let events =
            events_for("#lang typed/lagoon\n(define: (f [x : Integer]) : Boolean (< x 10))");
        let rs = rewrites(&events);
        assert_eq!(rs.len(), 1, "{rs:?}");
        assert_eq!(rs[0].0, "fixnum");
        assert_eq!(rs[0].2, "unsafe-fx<");
        assert_eq!(rs[0].3, 2);
    }

    #[test]
    fn float_complex_rewrite_logs_one_event() {
        let events = events_for(
            "#lang typed/lagoon\n(define: (f [z : Float-Complex]) : Float-Complex (* z 2.0+2.0i))",
        );
        let rs = rewrites(&events);
        assert_eq!(rs.len(), 1, "{rs:?}");
        assert_eq!(rs[0].0, "float-complex");
        assert_eq!(rs[0].2, "unsafe-fc*");
        assert_eq!(rs[0].3, 2);
    }

    #[test]
    fn tag_check_elimination_logs_one_event() {
        let events = events_for(
            "#lang typed/lagoon\n(define: (f [p : (List Integer Integer)]) : Integer (first p))",
        );
        let rs = rewrites(&events);
        assert_eq!(rs.len(), 1, "{rs:?}");
        assert_eq!(rs[0].0, "pairs");
        assert_eq!(rs[0].2, "unsafe-car");
        assert_eq!(rs[0].3, 2);
    }

    #[test]
    fn mixed_type_arithmetic_logs_a_near_miss_with_reason() {
        let events = events_for(
            "#lang typed/lagoon\n(define: (f [x : Float] [y : Number]) : Number (+ x y))",
        );
        assert!(rewrites(&events).is_empty());
        let ns = near_misses(&events);
        assert_eq!(ns.len(), 1, "{ns:?}");
        let (family, op, reason, line) = &ns[0];
        assert_eq!(*family, "float");
        assert_eq!(op, "+");
        assert!(
            reason.contains("Number"),
            "reason should name the type: {reason}"
        );
        assert_eq!(*line, 2);
    }

    #[test]
    fn possibly_empty_listof_logs_a_near_miss() {
        let events = events_for(
            "#lang typed/lagoon\n(define: (f [l : (Listof Integer)]) : Integer (car l))",
        );
        assert!(rewrites(&events).is_empty());
        let ns = near_misses(&events);
        assert_eq!(ns.len(), 1, "{ns:?}");
        assert_eq!(ns[0].0, "pairs");
        assert!(ns[0].2.contains("Listof"), "{}", ns[0].2);
    }

    #[test]
    fn integer_arithmetic_logs_overflow_near_miss() {
        let events = events_for(
            "#lang typed/lagoon\n(define: (f [x : Integer] [y : Integer]) : Integer (+ x y))",
        );
        assert!(rewrites(&events).is_empty());
        let ns = near_misses(&events);
        assert_eq!(ns.len(), 1, "{ns:?}");
        assert_eq!(ns[0].0, "fixnum");
        assert!(ns[0].2.contains("overflow"), "{}", ns[0].2);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_counter_resets_per_module() {
        let reg = ModuleRegistry::new();
        register_typed_languages(&reg);
        reg.add_module(
            "a",
            "#lang typed/lagoon\n(define: (f [x : Float] [y : Float]) : Float (+ x y))",
        );
        reg.add_module(
            "b",
            "#lang typed/lagoon\n(define: (g [x : Float]) : Float (* x x))",
        );
        reg.expanded_body("a").unwrap();
        let after_a = rewrite_count();
        assert_eq!(after_a, 1);
        reg.expanded_body("b").unwrap();
        assert_eq!(rewrite_count(), 1, "count must reset between modules");
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use lagoon_core::ModuleRegistry;

    fn expanded_under(lang: &str, body: &str) -> String {
        let reg = ModuleRegistry::new();
        register_typed_languages(&reg);
        register_ablation_languages(&reg);
        reg.add_module("main", &format!("#lang {lang}\n{body}"));
        reg.expanded_body("main")
            .unwrap()
            .iter()
            .map(|s| s.to_datum().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    const MIXED: &str = "(: f : Float Integer (List Integer Integer) -> Float)
(define (f x i l)
  (if (and (< i 10) (< (first l) 5))
      (* x 2.0)
      x))
(f 1.0 3 (list 1 2))";

    #[test]
    fn only_floats_restricts_to_float_rewrites() {
        let out = expanded_under("typed/only-floats", MIXED);
        assert!(out.contains("unsafe-fl*"), "{out}");
        assert!(!out.contains("unsafe-fx<"), "{out}");
        assert!(!out.contains("unsafe-car"), "{out}");
    }

    #[test]
    fn only_fixnums_restricts_to_comparison_rewrites() {
        let out = expanded_under("typed/only-fixnums", MIXED);
        assert!(out.contains("unsafe-fx<"), "{out}");
        assert!(!out.contains("unsafe-fl*"), "{out}");
        assert!(!out.contains("unsafe-car"), "{out}");
    }

    #[test]
    fn only_pairs_restricts_to_tag_check_elimination() {
        let out = expanded_under("typed/only-pairs", MIXED);
        assert!(out.contains("unsafe-car"), "{out}");
        assert!(!out.contains("unsafe-fl*"), "{out}");
        assert!(!out.contains("unsafe-fx<"), "{out}");
    }

    #[test]
    fn ablation_configs_preserve_semantics() {
        let reg = ModuleRegistry::new();
        register_typed_languages(&reg);
        register_ablation_languages(&reg);
        let mut results = Vec::new();
        for lang in [
            "typed/no-opt",
            "typed/only-floats",
            "typed/only-complexes",
            "typed/only-fixnums",
            "typed/only-pairs",
            "typed/lagoon",
        ] {
            let m = format!("m-{}", lang.replace('/', "-"));
            reg.add_module(&m, &format!("#lang {lang}\n{MIXED}"));
            results.push(reg.run(&m, lagoon_core::EngineKind::Vm).unwrap());
        }
        for w in results.windows(2) {
            assert!(w[0].equal(&w[1]), "{} vs {}", w[0], w[1]);
        }
    }
}
