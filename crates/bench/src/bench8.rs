//! The `BENCH_8.json` experiment: the tagged-value-word representation
//! and unified operand/frame stack, old vs new.
//!
//! The "old" side is **not** re-measured: it is the recorded
//! `data/baseline_bench4.json`, a full bench4 sweep captured on the boxed
//! `enum Value` representation immediately before the value-word change
//! (same machine class, release build, peephole on). The "new" side
//! re-runs the same benchmarks — Figures 6–8 under the `vm` and `vm+opt`
//! configurations — on the current representation and joins the two by
//! `(name, figure, config)`.
//!
//! The headline number is the per-configuration **median speedup**
//! (old median ms / new median ms); the change is gated on ≥1.5× for
//! both VM configurations. The report also re-checks the parallel-build
//! determinism invariant on the new constant codec: a `--jobs 1` and a
//! `--jobs 8` build of the same module graph must produce byte-identical
//! compiled stores (equal FNV-1a digests over every artifact byte).

use crate::bench5::bench5_build_sweep;
use crate::{benchmarks_for, prepare, Config, Figure};
use lagoon_runtime::RtError;
use std::time::Instant;

/// The recorded pre-change sweep (boxed `enum Value`, release,
/// peephole on).
pub const BASELINE_JSON: &str = include_str!("../data/baseline_bench4.json");

/// One joined A/B record.
#[derive(Clone, Debug)]
pub struct Bench8Row {
    /// Benchmark name.
    pub name: String,
    /// Figure label (`"fig6"`…`"fig8"`).
    pub figure: String,
    /// Configuration label (`"vm"` or `"vm+opt"`).
    pub config: String,
    /// Median wall time on the old (boxed) representation, ms.
    pub old_median_ms: f64,
    /// Median wall time on the new (tagged-word) representation, ms.
    pub new_median_ms: f64,
}

impl Bench8Row {
    /// Old-over-new speedup (>1 means the new representation is faster).
    pub fn speedup(&self) -> f64 {
        self.old_median_ms / self.new_median_ms
    }
}

/// The full A/B report.
#[derive(Clone, Debug)]
pub struct Bench8Report {
    /// Joined rows, in baseline order.
    pub rows: Vec<Bench8Row>,
    /// `(jobs, artifacts_digest)` for the determinism re-check.
    pub digests: Vec<(usize, u64)>,
}

impl Bench8Report {
    /// Median speedup across the rows of one configuration label.
    pub fn median_speedup(&self, config: &str) -> f64 {
        let mut v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.config == config)
            .map(Bench8Row::speedup)
            .collect();
        crate::median(&mut v)
    }

    /// Whether every build digest matches (the `--jobs 1` vs `--jobs 8`
    /// byte-identity invariant).
    pub fn digests_match(&self) -> bool {
        self.digests.windows(2).all(|w| w[0].1 == w[1].1)
    }
}

/// Parses the recorded baseline into `(name, figure, config) →
/// median_ms`, keeping only peephole-on records of the given configs.
fn parse_baseline(
    json: &str,
    configs: &[Config],
) -> Result<Vec<(String, String, String, f64)>, RtError> {
    let parsed = lagoon_server::json::parse(json)
        .map_err(|e| RtError::user(format!("baseline JSON unreadable: {e}")))?;
    let lagoon_server::json::Json::Arr(records) = parsed else {
        return Err(RtError::user("baseline JSON is not an array"));
    };
    let wanted: Vec<&str> = configs.iter().map(|c| c.label()).collect();
    let mut out = Vec::new();
    for r in &records {
        let (Some(name), Some(figure), Some(config)) = (
            r.get("name").and_then(|j| j.as_str()),
            r.get("figure").and_then(|j| j.as_str()),
            r.get("config").and_then(|j| j.as_str()),
        ) else {
            return Err(RtError::user("baseline record missing name/figure/config"));
        };
        if r.get("peephole").and_then(|j| j.as_bool()) != Some(true) || !wanted.contains(&config) {
            continue;
        }
        let median = match r.get("median_ms") {
            Some(lagoon_server::json::Json::Num(ms)) => *ms,
            _ => return Err(RtError::user(format!("{name}: missing median_ms"))),
        };
        out.push((
            name.to_string(),
            figure.to_string(),
            config.to_string(),
            median,
        ));
    }
    Ok(out)
}

/// Runs the A/B sweep: measures every Figure 6–8 benchmark under `vm`
/// and `vm+opt` (peephole on, `reps` timed runs each), joins against the
/// recorded baseline, and re-checks `--jobs 1` vs `--jobs 8` store
/// digest identity.
///
/// # Errors
///
/// Propagates compile and runtime errors, an unreadable baseline, and a
/// baseline row with no matching live benchmark.
pub fn bench8_sweep(figures: &[Figure], reps: usize) -> Result<Bench8Report, RtError> {
    let configs = [Config::Vm, Config::VmOpt];
    let baseline = parse_baseline(BASELINE_JSON, &configs)?;
    lagoon_vm::peephole::set_enabled(true);
    // measure the new side first, keyed like the baseline
    let mut fresh: Vec<(String, String, String, f64)> = Vec::new();
    for figure in figures {
        let figure_label = match figure {
            Figure::Fig6 => "fig6",
            Figure::Fig7 => "fig7",
            Figure::Fig8 => "fig8",
            Figure::Fig9 => "fig9",
        };
        for bench in benchmarks_for(*figure) {
            for config in configs {
                let mut runner = prepare(&bench, config)?;
                let mut times = Vec::with_capacity(reps);
                for _ in 0..reps.max(1) {
                    let start = Instant::now();
                    runner()?;
                    times.push(start.elapsed().as_secs_f64() * 1000.0);
                }
                fresh.push((
                    bench.name.to_string(),
                    figure_label.to_string(),
                    config.label().to_string(),
                    crate::median(&mut times),
                ));
            }
        }
    }
    let mut rows = Vec::new();
    for (name, figure, config, old_median_ms) in baseline {
        if !figures.iter().any(|f| {
            matches!(
                (f, figure.as_str()),
                (Figure::Fig6, "fig6") | (Figure::Fig7, "fig7") | (Figure::Fig8, "fig8")
            )
        }) {
            continue;
        }
        let new = fresh
            .iter()
            .find(|(n, f, c, _)| *n == name && *f == figure && *c == config)
            .ok_or_else(|| {
                RtError::user(format!(
                    "baseline row {name}/{figure}/{config} has no live match"
                ))
            })?;
        rows.push(Bench8Row {
            name,
            figure,
            config,
            old_median_ms,
            new_median_ms: new.3,
        });
    }
    let digests = bench5_build_sweep(&[1, 8], 1)
        .map_err(RtError::user)?
        .into_iter()
        .map(|b| (b.jobs, b.artifacts_digest))
        .collect();
    Ok(Bench8Report { rows, digests })
}

/// Serializes the report as `BENCH_8.json` (hand-rolled; the workspace
/// takes no serialization dependency).
pub fn bench8_json(report: &Bench8Report) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"rows\":[");
    for (i, r) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"figure\":{},\"config\":{},\"old_median_ms\":{:.6},\
             \"new_median_ms\":{:.6},\"speedup\":{:.4}}}",
            lagoon_diag::json_string(&r.name),
            lagoon_diag::json_string(&r.figure),
            lagoon_diag::json_string(&r.config),
            r.old_median_ms,
            r.new_median_ms,
            r.speedup(),
        );
    }
    let _ = write!(
        out,
        "],\"median_speedup\":{{\"vm\":{:.4},\"vm+opt\":{:.4}}},\"digests\":[",
        report.median_speedup("vm"),
        report.median_speedup("vm+opt"),
    );
    for (i, (jobs, digest)) in report.digests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"jobs\":{jobs},\"digest\":\"{digest:016x}\"}}");
    }
    let _ = write!(out, "],\"digests_match\":{}}}", report.digests_match());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parses_and_covers_vm_configs() {
        let rows = parse_baseline(BASELINE_JSON, &[Config::Vm, Config::VmOpt]).unwrap();
        assert!(!rows.is_empty());
        // every fig6-8 benchmark must appear under both configs
        for config in ["vm", "vm+opt"] {
            let n = rows.iter().filter(|(_, _, c, _)| c == config).count();
            assert!(n >= 14, "only {n} baseline rows for {config}");
        }
        assert!(rows.iter().all(|(_, _, _, ms)| *ms > 0.0));
    }

    #[test]
    fn sweep_joins_every_baseline_row() {
        // one rep on the smallest figure keeps this debug-runnable; the
        // speedup numbers are meaningless in a debug build (the baseline
        // is release), so only the join and serialization are checked
        let report = bench8_sweep(&[Figure::Fig8], 1).unwrap();
        assert!(!report.rows.is_empty());
        assert!(report.rows.iter().all(|r| r.figure == "fig8"));
        assert!(report.rows.iter().all(|r| r.new_median_ms > 0.0));
        assert_eq!(report.digests.len(), 2);
        assert!(report.digests_match(), "jobs 1 vs 8 digests diverged");
        let json = bench8_json(&report);
        let parsed = lagoon_server::json::parse(&json).unwrap();
        assert!(parsed.get("digests_match").and_then(|j| j.as_bool()) == Some(true));
        assert!(matches!(
            parsed.get("rows"),
            Some(lagoon_server::json::Json::Arr(_))
        ));
    }
}
