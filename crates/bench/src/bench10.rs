//! The `BENCH_10.json` experiment: gateway scaling under mixed
//! open-loop traffic.
//!
//! A gateway with 1/2/4 shards (each a daemon with a fixed worker
//! count, all sharing one content-addressed `.lagc` store) is driven
//! by an **open-loop** load generator: request arrivals are scheduled
//! on a fixed clock, independent of completions, and latency is
//! measured from the *scheduled* arrival — so queueing delay shows up
//! in the percentiles instead of being hidden by a closed loop that
//! only sends as fast as the server drains (the BENCH_5 serve
//! measurement's blind spot). The offered rate is calibrated once,
//! against the first configuration, to a multiple of one shard's
//! measured service capacity, and held constant across shard counts:
//! one shard saturates and sheds, more shards absorb the same traffic.
//!
//! Traffic is a mixed run/expand/check cycle over HTTP: a named typed
//! module graph (exercising the shared store), an inline run, an
//! inline expand, and a named check. After each run the store is
//! digested (as in bench5) — equal digests across shard counts prove
//! the shards cooperated on one byte-identical store.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lagoon_gateway::http::HttpClient;
use lagoon_gateway::shard::ShardBackend;
use lagoon_gateway::{Gateway, GatewayOptions};
use lagoon_server::json::{self, Json};

/// One request of the mixed cycle: method target and JSON body.
fn mixed_request(i: usize) -> (&'static str, String) {
    match i % 4 {
        0 => ("/v1/run", r#"{"module":"bench10-top"}"#.to_string()),
        1 => (
            "/v1/run",
            r##"{"source":"#lang lagoon\n(define (sum n acc) (if (= n 0) acc (sum (- n 1) (+ acc n))))\n(sum 40000 0)\n"}"##.to_string(),
        ),
        2 => (
            "/v1/expand",
            r##"{"source":"#lang lagoon\n(let ((x 1)) (+ x 2))\n"}"##.to_string(),
        ),
        _ => ("/v1/check", r#"{"module":"bench10-m0"}"#.to_string()),
    }
}

/// Writes the named-module sources the mixed cycle resolves: a typed
/// three-module chain plus an untyped top module.
fn write_sources(root: &PathBuf) -> Result<(), String> {
    std::fs::create_dir_all(root).map_err(|e| format!("mkdir {}: {e}", root.display()))?;
    let mut modules: Vec<(String, String)> = Vec::new();
    for depth in (0..3).rev() {
        let mut body = String::from("#lang typed/lagoon\n");
        if depth < 2 {
            body.push_str(&format!("(require bench10-m{})\n", depth + 1));
        }
        let callee = if depth < 2 {
            format!("bench10-m{}-f", depth + 1)
        } else {
            "add1".to_string()
        };
        body.push_str(&format!(
            "(: bench10-m{depth}-f : Integer -> Integer)\n\
             (define (bench10-m{depth}-f n) (if (= n 0) 1 (+ ({callee} (- n 1)) {depth})))\n\
             (provide bench10-m{depth}-f)\n"
        ));
        modules.push((format!("bench10-m{depth}"), body));
    }
    modules.push((
        "bench10-top".to_string(),
        "#lang lagoon\n(require bench10-m0)\n\
         (define (go i acc) (if (= i 0) acc (go (- i 1) (+ acc (bench10-m0-f 24)))))\n\
         (go 2000 0)\n"
            .to_string(),
    ));
    for (name, body) in modules {
        let path = root.join(format!("{name}.lag"));
        let mut f =
            std::fs::File::create(&path).map_err(|e| format!("create {}: {e}", path.display()))?;
        f.write_all(body.as_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// FNV-1a digest over the store's artifacts, in filename order (the
/// bench5 byte-identity check).
fn digest_store(dir: &PathBuf) -> Result<u64, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lagc"))
        .collect();
    files.sort();
    let mut bytes = Vec::new();
    for file in files {
        if let Some(name) = file.file_name() {
            bytes.extend_from_slice(name.to_string_lossy().as_bytes());
        }
        bytes.extend_from_slice(
            &std::fs::read(&file).map_err(|e| format!("read {}: {e}", file.display()))?,
        );
    }
    Ok(lagoon_syntax::wire::fnv1a(&bytes))
}

/// One shard-count record of the scaling sweep.
#[derive(Clone, Debug)]
pub struct Bench10Record {
    /// Shard count for this record.
    pub shards: usize,
    /// Requests offered (open loop: all of them are sent).
    pub requests: usize,
    /// Responses with HTTP 200 and `"ok":true`.
    pub ok: u64,
    /// 200s whose body was a program-level error (none expected).
    pub program_errors: u64,
    /// Requests shed by every shard (HTTP 503).
    pub shed: u64,
    /// Transport/5xx failures that were not sheds.
    pub errors: u64,
    /// Median latency from *scheduled arrival* to completion, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency from scheduled arrival, ms.
    pub p99_ms: f64,
    /// Completed requests per second over the run's wall clock.
    pub rps: f64,
    /// Wall time of the whole run, ms.
    pub wall_ms: f64,
    /// Per-shard daemon utilization (busy share) at the end of the run.
    pub utilization: Vec<f64>,
    /// Per-shard completed-request counts (gateway's view).
    pub shard_done: Vec<u64>,
    /// FNV-1a digest of the shared store after the run.
    pub store_digest: u64,
}

/// The whole sweep: per-shard-count records at one constant offered
/// rate, plus the calibration and environment facts needed to read it.
#[derive(Clone, Debug)]
pub struct Bench10Report {
    /// One record per shard count.
    pub records: Vec<Bench10Record>,
    /// The constant offered arrival rate, requests/second.
    pub offered_rps: f64,
    /// "process" (spawned `lagoon serve` shards) or "in-process".
    pub backend: String,
    /// Worker threads per shard daemon.
    pub workers_per_shard: usize,
    /// Per-shard queue capacity.
    pub queue_cap: usize,
}

impl Bench10Report {
    /// Whether every shard count produced a byte-identical store.
    pub fn digests_match(&self) -> bool {
        self.records
            .windows(2)
            .all(|w| w[0].store_digest == w[1].store_digest)
    }
}

/// Options for [`bench10_sweep`].
pub struct Bench10Options {
    /// Shard counts to sweep (the scaling axis).
    pub shard_counts: Vec<usize>,
    /// Open-loop requests per configuration.
    pub requests: usize,
    /// Worker threads per shard daemon.
    pub workers_per_shard: usize,
    /// Per-shard bounded queue capacity (small enough that a
    /// saturated shard actually sheds).
    pub queue_cap: usize,
    /// Backend override; `None` auto-detects: a `lagoon` binary next
    /// to the current executable → process shards, else in-process.
    pub backend: Option<ShardBackend>,
    /// Offered rate as a multiple of one shard's calibrated capacity.
    pub overload_factor: f64,
}

impl Default for Bench10Options {
    fn default() -> Bench10Options {
        Bench10Options {
            shard_counts: vec![1, 2, 4],
            requests: 240,
            workers_per_shard: 2,
            queue_cap: 16,
            backend: None,
            overload_factor: 1.5,
        }
    }
}

/// The auto-detected backend: process shards when a sibling `lagoon`
/// binary exists (figures lives in the same target dir), else
/// in-process daemons.
fn detect_backend() -> ShardBackend {
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("lagoon")));
    match sibling {
        Some(path) if path.is_file() => ShardBackend::Process {
            cmd: vec![path.display().to_string()],
        },
        _ => ShardBackend::InProcess,
    }
}

fn backend_name(backend: &ShardBackend) -> &'static str {
    match backend {
        ShardBackend::Process { .. } => "process",
        ShardBackend::InProcess => "in-process",
    }
}

/// Starts a gateway for one sweep configuration over fresh store and
/// source directories.
fn start_gateway(
    opts: &Bench10Options,
    backend: &ShardBackend,
    shards: usize,
    tag: &str,
) -> Result<(Gateway, PathBuf, PathBuf), String> {
    let base = std::env::temp_dir().join(format!("lagoon-bench10-{}-{tag}", std::process::id()));
    let store = base.join("store");
    let sources = base.join("src");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&store).map_err(|e| format!("mkdir {}: {e}", store.display()))?;
    write_sources(&sources)?;
    let gateway = Gateway::start(GatewayOptions {
        shards,
        workers_per_shard: opts.workers_per_shard,
        queue_cap: opts.queue_cap,
        backend: backend.clone(),
        cache_dir: Some(store.clone()),
        source_root: Some(sources.clone()),
        request_timeout: Some(Duration::from_secs(30)),
        ..GatewayOptions::default()
    })
    .map_err(|e| format!("start gateway ({shards} shards): {e}"))?;
    Ok((gateway, base, store))
}

/// Closed-loop warmup + calibration: runs one full mixed cycle to warm
/// the store, then times `reps` sequential cycles and returns the mean
/// per-request service time.
fn calibrate(addr: &str, reps: usize) -> Result<Duration, String> {
    let mut client =
        HttpClient::connect(addr, Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
    for i in 0..4 {
        let (target, body) = mixed_request(i);
        let response = client
            .request("POST", target, &[], body.as_bytes())
            .map_err(|e| format!("warmup: {e}"))?;
        if response.status != 200 {
            return Err(format!(
                "warmup request {target} -> {}: {}",
                response.status,
                response.body_str()
            ));
        }
    }
    let start = Instant::now();
    let n = (reps.max(1)) * 4;
    for i in 0..n {
        let (target, body) = mixed_request(i);
        client
            .request("POST", target, &[], body.as_bytes())
            .map_err(|e| format!("calibration: {e}"))?;
    }
    Ok(start.elapsed() / (n as u32))
}

/// One completed open-loop request.
struct Sample {
    latency: Duration,
    status: u16,
    ok: bool,
}

/// Fires `requests` arrivals at `interval` spacing against the gateway
/// and returns every sample (latency measured from scheduled arrival).
fn open_loop(
    addr: &str,
    requests: usize,
    interval: Duration,
) -> Result<(Vec<Sample>, Duration), String> {
    let clients = 32.min(requests.max(1));
    let (tx, rx) = mpsc::channel::<(usize, Instant)>();
    let rx = Mutex::new(rx);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(requests));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut client: Option<HttpClient> = None;
                loop {
                    let job = {
                        let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    };
                    let Ok((i, scheduled)) = job else { return };
                    let (target, body) = mixed_request(i);
                    let trace = format!("bench10-{i}");
                    let headers = [("x-lagoon-trace-id", trace)];
                    // One reconnect attempt on a broken pooled socket.
                    let mut outcome: Option<(u16, bool)> = None;
                    for _ in 0..2 {
                        if client.is_none() {
                            client = HttpClient::connect(addr, Some(Duration::from_secs(30))).ok();
                        }
                        let Some(c) = client.as_mut() else { continue };
                        match c.request("POST", target, &headers, body.as_bytes()) {
                            Ok(response) => {
                                let ok = response.status == 200
                                    && response.body_str().contains("\"ok\":true");
                                outcome = Some((response.status, ok));
                                break;
                            }
                            Err(_) => client = None,
                        }
                    }
                    let (status, ok) = outcome.unwrap_or((0, false));
                    let sample = Sample {
                        latency: scheduled.elapsed(),
                        status,
                        ok,
                    };
                    samples
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(sample);
                }
            });
        }
        // Dispatcher: the open-loop clock. Arrival i is scheduled at
        // start + i·interval regardless of how the pool is doing.
        for i in 0..requests {
            let scheduled = started + interval * (i as u32);
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            if tx.send((i, scheduled)).is_err() {
                break;
            }
        }
        drop(tx);
    });
    let wall = started.elapsed();
    let samples = samples.into_inner().unwrap_or_else(|e| e.into_inner());
    if samples.len() != requests {
        return Err(format!(
            "open loop lost samples: {} of {requests}",
            samples.len()
        ));
    }
    Ok((samples, wall))
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Reads per-shard utilization and done counts from the gateway's deep
/// stats object.
fn shard_gauges(stats: &Json, shards: usize) -> (Vec<f64>, Vec<u64>) {
    let mut utilization = vec![0.0; shards];
    let mut done = vec![0u64; shards];
    if let Some(Json::Arr(daemons)) = stats.get("daemons") {
        for (i, daemon) in daemons.iter().enumerate().take(shards) {
            if let Some(u) = daemon.get("utilization").and_then(|j| match j {
                Json::Num(n) => Some(*n),
                _ => None,
            }) {
                utilization[i] = u;
            }
        }
    }
    if let Some(Json::Arr(gauges)) = stats.get("shard") {
        for (i, gauge) in gauges.iter().enumerate().take(shards) {
            if let Some(n) = gauge.get("done").and_then(Json::as_u64) {
                done[i] = n;
            }
        }
    }
    (utilization, done)
}

/// Runs the full sweep: calibrates the offered rate on the first
/// configuration, then drives every shard count at that rate.
///
/// # Errors
///
/// Returns gateway start/traffic failures rendered as text.
pub fn bench10_sweep(opts: &Bench10Options) -> Result<Bench10Report, String> {
    let backend = opts.backend.clone().unwrap_or_else(detect_backend);

    // Calibration: a throwaway 1-shard gateway takes a concurrent
    // burst (arrivals as fast as the pool can carry them), and the
    // offered rate for the whole sweep is `overload_factor` times the
    // burst's *successful* throughput — i.e. a multiple of one shard's
    // real concurrent capacity, not its sequential latency (which
    // overlapping phases inside a daemon make a big underestimate).
    let (gateway, base, _store) = start_gateway(opts, &backend, 1, "calibrate")?;
    let addr = gateway.addr().to_string();
    let warm = calibrate(&addr, 2);
    let burst_n = opts.requests.clamp(32, 128);
    let burst = warm.and_then(|_| open_loop(&addr, burst_n, Duration::ZERO));
    gateway.shutdown();
    gateway.wait();
    let _ = std::fs::remove_dir_all(&base);
    let (burst_samples, burst_wall) = burst?;
    let burst_ok = burst_samples.iter().filter(|s| s.ok).count();
    if burst_ok == 0 {
        return Err("calibration burst produced no successful responses".to_string());
    }
    let capacity = burst_ok as f64 / burst_wall.as_secs_f64().max(1e-9);
    let offered_rps = opts.overload_factor * capacity;
    let interval = Duration::from_secs_f64(1.0 / offered_rps.max(1.0));

    let mut records = Vec::new();
    for &shards in &opts.shard_counts {
        let (gateway, base, store) = start_gateway(opts, &backend, shards, &format!("s{shards}"))?;
        let addr = gateway.addr().to_string();
        if let Err(e) = calibrate(&addr, 1) {
            gateway.shutdown();
            gateway.wait();
            let _ = std::fs::remove_dir_all(&base);
            return Err(e);
        }
        let outcome = open_loop(&addr, opts.requests, interval);
        let stats = json::parse(&gateway.stats_json(true)).unwrap_or(Json::Null);
        gateway.shutdown();
        gateway.wait();
        let (samples, wall) = match outcome {
            Ok(x) => x,
            Err(e) => {
                let _ = std::fs::remove_dir_all(&base);
                return Err(e);
            }
        };
        let store_digest = digest_store(&store)?;
        let _ = std::fs::remove_dir_all(&base);

        let mut latencies: Vec<f64> = samples
            .iter()
            .map(|s| s.latency.as_secs_f64() * 1e3)
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let ok = samples.iter().filter(|s| s.ok).count() as u64;
        let shed = samples.iter().filter(|s| s.status == 503).count() as u64;
        let program_errors = samples.iter().filter(|s| s.status == 200 && !s.ok).count() as u64;
        let errors = samples.len() as u64 - ok - shed - program_errors;
        let (utilization, shard_done) = shard_gauges(&stats, shards);
        records.push(Bench10Record {
            shards,
            requests: samples.len(),
            ok,
            program_errors,
            shed,
            errors,
            p50_ms: percentile_ms(&latencies, 0.50),
            p99_ms: percentile_ms(&latencies, 0.99),
            rps: samples.len() as f64 / wall.as_secs_f64().max(1e-9),
            wall_ms: wall.as_secs_f64() * 1e3,
            utilization,
            shard_done,
            store_digest,
        });
    }
    Ok(Bench10Report {
        records,
        offered_rps,
        backend: backend_name(&backend).to_string(),
        workers_per_shard: opts.workers_per_shard,
        queue_cap: opts.queue_cap,
    })
}

/// Serializes the sweep as the `BENCH_10.json` object (hand-rolled;
/// the workspace takes no serialization dependency).
pub fn bench10_json(report: &Bench10Report) -> String {
    use std::fmt::Write;
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut out = format!(
        "{{\"host_cpus\":{host_cpus},\"backend\":\"{}\",\
         \"workers_per_shard\":{},\"queue_cap\":{},\
         \"offered_rps\":{:.2},\"records\":[",
        report.backend, report.workers_per_shard, report.queue_cap, report.offered_rps,
    );
    for (i, r) in report.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let utilization: Vec<String> = r.utilization.iter().map(|u| format!("{u:.4}")).collect();
        let done: Vec<String> = r.shard_done.iter().map(u64::to_string).collect();
        let _ = write!(
            out,
            "{{\"shards\":{},\"requests\":{},\"ok\":{},\"shed\":{},\
             \"program_errors\":{},\"errors\":{},\"shed_rate\":{:.4},\
             \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"rps\":{:.2},\"wall_ms\":{:.1},\
             \"utilization\":[{}],\"shard_done\":[{}],\
             \"store_digest\":\"{:016x}\"}}",
            r.shards,
            r.requests,
            r.ok,
            r.shed,
            r.program_errors,
            r.errors,
            r.shed as f64 / (r.requests.max(1)) as f64,
            r.p50_ms,
            r.p99_ms,
            r.rps,
            r.wall_ms,
            utilization.join(","),
            done.join(","),
            r.store_digest,
        );
    }
    let _ = write!(out, "],\"byte_identical\":{}}}", report.digests_match());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_round_trips() {
        let opts = Bench10Options {
            shard_counts: vec![1, 2],
            requests: 16,
            workers_per_shard: 1,
            queue_cap: 8,
            backend: Some(ShardBackend::InProcess),
            overload_factor: 1.0,
        };
        let report = bench10_sweep(&opts).expect("sweep");
        assert_eq!(report.records.len(), 2);
        for r in &report.records {
            assert_eq!(r.requests, 16);
            assert_eq!(r.errors, 0, "transport errors in record: {r:?}");
            assert!(r.p50_ms > 0.0 && r.p99_ms >= r.p50_ms);
        }
        // The scaling sweep's core invariant: shards cooperating on
        // one store produce byte-identical artifacts at any count.
        assert!(report.digests_match(), "store digests diverge");
        let json = bench10_json(&report);
        assert!(json.contains("\"byte_identical\":true"));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"p99_ms\""));
    }
}
