//! The `BENCH_6.json` experiment: tracing overhead and daemon memory
//! gauges.
//!
//! Two measurements back EXPERIMENTS.md's "Tracing & telemetry" entry:
//!
//! 1. **Tracing A/B** — every figure 6–8 benchmark is run with the
//!    structured tracer off and on (same compiled module, timed reps
//!    each, medians kept). The off runs are the shipped default: the
//!    tracer's only cost there is a thread-local flag check at phase
//!    boundaries and fuel refills, never per opcode, and the A/B bounds
//!    what turning tracing *on* costs on top.
//! 2. **Daemon soak** — a stream of inline-source `run` requests
//!    against an in-process [`Server`], sampling the `stats` op's
//!    interner gauge along the way. The gauge counts the sealed arena
//!    plus every worker's epoch table; per-request epoch truncation
//!    holds the series flat where the old process-global interner grew
//!    ~3.2 symbols per request.

use crate::{benchmarks_for, median, prepare, Config, Figure};
use lagoon_server::json;
use lagoon_server::{client, ServeOptions, Server};
use std::time::{Duration, Instant};

/// One tracing A/B record: a benchmark under one configuration, traced
/// and untraced.
#[derive(Clone, Debug)]
pub struct Bench6Ab {
    /// Benchmark name.
    pub name: &'static str,
    /// Figure label (`"fig6"`…`"fig8"`).
    pub figure: &'static str,
    /// Configuration label (see [`Config::label`]).
    pub config: &'static str,
    /// Median wall time with tracing off (the shipped default), ms.
    pub off_ms: f64,
    /// Median wall time with the tracer installed, ms.
    pub on_ms: f64,
    /// Spans the traced run recorded (evidence tracing was live).
    pub spans: usize,
}

impl Bench6Ab {
    /// Tracing-on overhead over the off baseline, in percent.
    pub fn overhead_percent(&self) -> f64 {
        if self.off_ms <= 0.0 {
            return 0.0;
        }
        (self.on_ms / self.off_ms - 1.0) * 100.0
    }
}

/// Runs the tracing A/B over `figures`: each benchmark is compiled once
/// under `vm+opt`, then timed `reps` times untraced and `reps` times
/// with the tracer installed, interleaved per benchmark so drift hits
/// both arms equally.
///
/// # Errors
///
/// Propagates compile-time and runtime errors.
pub fn bench6_ab(
    figures: &[Figure],
    reps: usize,
) -> Result<Vec<Bench6Ab>, lagoon_runtime::RtError> {
    let reps = reps.max(1);
    let mut rows = Vec::new();
    for figure in figures {
        for bench in benchmarks_for(*figure) {
            let config = Config::VmOpt;
            let mut runner = prepare(&bench, config)?;
            // warmup: first run pays lazy-init costs neither arm should
            runner()?;
            let mut off = Vec::with_capacity(reps);
            let mut on = Vec::with_capacity(reps);
            let mut spans = 0usize;
            // both arms run under the same run-phase span wrapper the
            // CLI uses, so the off arm pays exactly the shipped cost:
            // one inactive-tracer flag check per phase boundary
            let spanned = |runner: &mut dyn FnMut() -> Result<_, _>| {
                let _t = lagoon_diag::trace::start("run", bench.name);
                runner()
            };
            for _ in 0..reps {
                let start = Instant::now();
                spanned(&mut runner)?;
                off.push(start.elapsed().as_secs_f64() * 1000.0);

                lagoon_diag::trace::install(lagoon_diag::trace::DEFAULT_CAPACITY);
                let start = Instant::now();
                let traced = spanned(&mut runner);
                on.push(start.elapsed().as_secs_f64() * 1000.0);
                let trace = lagoon_diag::trace::uninstall().unwrap_or_default();
                traced?;
                spans = spans.max(trace.spans.len());
            }
            rows.push(Bench6Ab {
                name: bench.name,
                figure: crate::figure_label(*figure),
                config: config.label(),
                off_ms: median(&mut off),
                on_ms: median(&mut on),
                spans,
            });
        }
    }
    Ok(rows)
}

/// The daemon-soak record: interner stability under inline-source load.
#[derive(Clone, Debug)]
pub struct Bench6Soak {
    /// Daemon worker count.
    pub workers: usize,
    /// Inline-source `run` requests sent (all must succeed).
    pub requests: usize,
    /// Interner symbol count before the first request.
    pub interner_start: u64,
    /// Interner symbol count after the last request.
    pub interner_end: u64,
    /// `(requests completed, interner symbols)` samples from the
    /// daemon's `stats` op, every `sample_every` requests.
    pub series: Vec<(u64, u64)>,
    /// The final `stats` response's store-bytes gauge.
    pub store_bytes: u64,
}

impl Bench6Soak {
    /// Symbols interned per request, averaged over the soak.
    pub fn growth_per_request(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.interner_end.saturating_sub(self.interner_start) as f64 / self.requests as f64
    }
}

pub(crate) fn stats_snapshot(addr: &str) -> Result<json::Json, String> {
    let response = client::request_line(addr, "{\"op\":\"stats\"}", Some(Duration::from_secs(30)))
        .map_err(|e| format!("stats request: {e}"))?;
    json::parse(&response).map_err(|e| format!("stats parse: {e}"))
}

pub(crate) fn stats_gauge(addr: &str, path: &[&str]) -> Result<u64, String> {
    let parsed = stats_snapshot(addr)?;
    let mut cur = &parsed;
    for key in path {
        cur = cur
            .get(key)
            .ok_or_else(|| format!("stats response missing {}", path.join(".")))?;
    }
    cur.as_u64()
        .ok_or_else(|| format!("stats gauge {} is not numeric", path.join(".")))
}

/// Blocks until every worker has built its world and published its
/// bootstrap epoch gauge, so soak baselines are not raced by worker
/// startup.
pub(crate) fn wait_for_worker_baselines(addr: &str, workers: usize) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = stats_snapshot(addr)?;
        let epochs = stats
            .get("interner")
            .and_then(|i| i.get("worker_epochs"))
            .and_then(|w| match w {
                json::Json::Arr(items) => Some(items),
                _ => None,
            });
        if let Some(epochs) = epochs {
            if epochs.len() >= workers && epochs.iter().all(|e| e.as_u64().unwrap_or(0) > 0) {
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("workers never published baselines: {stats}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Sends `requests` sequential inline-source `run` requests to an
/// in-process daemon, sampling the interner gauge every `sample_every`
/// requests. Each request body mentions a request-unique identifier, so
/// the soak exercises exactly the documented leak: per-request symbols
/// that outlive the request.
///
/// # Errors
///
/// Returns daemon start failures, failed requests, and malformed
/// `stats` responses rendered as text.
pub fn bench6_soak(
    requests: usize,
    sample_every: usize,
    workers: usize,
) -> Result<Bench6Soak, String> {
    let server = Server::start(ServeOptions {
        workers,
        ..ServeOptions::default()
    })
    .map_err(|e| format!("start daemon: {e}"))?;
    let addr = server.addr().to_string();
    let sample_every = sample_every.max(1);

    wait_for_worker_baselines(&addr, workers)?;
    let interner_start = stats_gauge(&addr, &["interner", "symbols"])?;
    let mut series = Vec::new();
    for i in 0..requests {
        // a fresh top-level identifier per request: under the old
        // process-global interner these accumulated forever; epoch
        // truncation now reclaims them before the response is sent
        let source = format!("#lang lagoon\n(define soak-v{i} {i})\n(+ soak-v{i} 1)\n");
        let request = client::inline_request("run", &source, vec![]);
        let response = client::request_line(&addr, &request, Some(Duration::from_secs(30)))
            .map_err(|e| format!("request {i}: {e}"))?;
        if !response.contains("\"ok\":true") {
            return Err(format!("request {i} failed: {response}"));
        }
        if (i + 1) % sample_every == 0 {
            series.push((
                (i + 1) as u64,
                stats_gauge(&addr, &["interner", "symbols"])?,
            ));
        }
    }
    let interner_end = stats_gauge(&addr, &["interner", "symbols"])?;
    let store_bytes = stats_gauge(&addr, &["store", "bytes"])?;
    server.shutdown();
    server.wait();

    Ok(Bench6Soak {
        workers,
        requests,
        interner_start,
        interner_end,
        series,
        store_bytes,
    })
}

/// Serializes the two measurements as the `BENCH_6.json` object
/// (hand-rolled; the workspace takes no serialization dependency).
pub fn bench6_json(ab: &[Bench6Ab], soak: &Bench6Soak) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"ab\":[");
    let mut worst = 0.0f64;
    let mut sum = 0.0f64;
    for (i, r) in ab.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let overhead = r.overhead_percent();
        worst = worst.max(overhead);
        sum += overhead;
        let _ = write!(
            out,
            "{{\"name\":{},\"figure\":{},\"config\":{},\"off_ms\":{:.6},\
             \"on_ms\":{:.6},\"overhead_percent\":{overhead:.3},\"spans\":{}}}",
            lagoon_diag::json_string(r.name),
            lagoon_diag::json_string(r.figure),
            lagoon_diag::json_string(r.config),
            r.off_ms,
            r.on_ms,
            r.spans,
        );
    }
    let mean = if ab.is_empty() {
        0.0
    } else {
        sum / ab.len() as f64
    };
    let _ = write!(
        out,
        "],\"overhead\":{{\"mean_percent\":{mean:.3},\"max_percent\":{worst:.3}}},\
         \"soak\":{{\"workers\":{},\"requests\":{},\"interner_start\":{},\
         \"interner_end\":{},\"growth_per_request\":{:.3},\"store_bytes\":{},\"series\":[",
        soak.workers,
        soak.requests,
        soak.interner_start,
        soak.interner_end,
        soak.growth_per_request(),
        soak.store_bytes,
    );
    for (i, (n, symbols)) in soak.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{n},{symbols}]");
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab_records_traced_and_untraced_runs() {
        let rows = bench6_ab(&[Figure::Fig8], 1).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.config, "vm+opt");
        assert!(row.off_ms > 0.0 && row.on_ms > 0.0);
        // the traced run saw at least the run-phase span
        assert!(row.spans > 0, "traced run recorded no spans");
    }

    #[test]
    fn soak_observes_flat_interner() {
        let soak = bench6_soak(10, 5, 2).unwrap();
        assert_eq!(soak.requests, 10);
        assert_eq!(soak.series.len(), 2);
        assert_eq!(
            soak.interner_end, soak.interner_start,
            "inline-source load must not grow the per-world interners"
        );
        assert_eq!(soak.growth_per_request(), 0.0);
        // the whole series is flat: every sample sits at the baseline
        for (_, symbols) in &soak.series {
            assert_eq!(*symbols, soak.interner_start);
        }
        let json = bench6_json(&bench6_ab(&[Figure::Fig8], 1).unwrap(), &soak);
        assert!(json.contains("\"overhead\""));
        assert!(json.contains("\"growth_per_request\""));
        assert!(lagoon_server::json::parse(&json).is_ok(), "{json}");
    }
}
