//! A zero-dependency timing harness with a criterion-like surface.
//!
//! The workspace must build in registry-restricted environments, so the
//! bench targets cannot depend on criterion. This module provides the
//! small subset of its API they use — named groups with a warm-up
//! period, a fixed sample count, and per-benchmark wall-clock reporting
//! on stdout (min / median / max over the samples).

use std::time::{Duration, Instant};

/// A named group of benchmarks sharing sampling settings.
pub struct Group {
    name: String,
    sample_size: usize,
    warm_up: Duration,
}

impl Group {
    /// A new group with criterion-like defaults (10 samples, 300 ms
    /// warm-up).
    pub fn new(name: &str) -> Group {
        println!("group {name}");
        Group {
            name: name.to_string(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
        }
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Group {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long each benchmark runs untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Group {
        self.warm_up = d;
        self
    }

    /// Accepted for criterion compatibility; sampling here is
    /// count-based, so the measurement time is implied by
    /// [`Group::sample_size`].
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Group {
        self
    }

    /// Times `f` via the [`Bencher`] it receives and prints a
    /// `group/name  min / median / max` line.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        samples.sort();
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        if let (Some(min), Some(max)) = (samples.first(), samples.last()) {
            let median = samples[samples.len() / 2];
            println!(
                "  {}/{}  min {:.3} ms  median {:.3} ms  max {:.3} ms",
                self.name,
                name.as_ref(),
                ms(*min),
                ms(median),
                ms(*max),
            );
        }
    }

    /// Ends the group (prints a trailing blank line).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` untimed for the warm-up period, then `sample_size`
    /// timed iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}
