//! Figure 6 workloads: Gabriel (1985) and Larceny benchmark-suite
//! micro-benchmarks, in Lagoon. Each program is written in typed style;
//! the harness strips the `(: …)` declarations to obtain the untyped
//! original (the two differ only in annotations, as in the paper §7.3).

use crate::Benchmark;
use crate::Figure;

/// The Gabriel/Larceny suite.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "tak",
            figure: Figure::Fig6,
            source: r#"
(: tak : Integer Integer Integer -> Integer)
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(tak 21 14 7)
"#,
        },
        Benchmark {
            name: "cpstak",
            figure: Figure::Fig6,
            source: r#"
(: tak : Integer Integer Integer (-> Integer Integer) -> Integer)
(define (tak x y z k)
  (if (not (< y x))
      (k z)
      (tak (- x 1) y z
           (lambda (v1)
             (tak (- y 1) z x
                  (lambda (v2)
                    (tak (- z 1) x y
                         (lambda (v3) (tak v1 v2 v3 k)))))))))
(: cpstak : Integer Integer Integer -> Integer)
(define (cpstak x y z) (tak x y z (lambda (a) a)))
(cpstak 19 11 5)
"#,
        },
        Benchmark {
            name: "fib",
            figure: Figure::Fig6,
            source: r#"
(: fib : Integer -> Integer)
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 24)
"#,
        },
        Benchmark {
            name: "fibfp",
            figure: Figure::Fig6,
            source: r#"
(: fibfp : Float -> Float)
(define (fibfp n)
  (if (< n 2.0) n (+ (fibfp (- n 1.0)) (fibfp (- n 2.0)))))
(fibfp 24.0)
"#,
        },
        Benchmark {
            name: "sumfp",
            figure: Figure::Fig6,
            source: r#"
(: go : Float Float -> Float)
(define (go i acc)
  (if (< i 0.5) acc (go (- i 1.0) (+ acc i))))
(go 200000.0 0.0)
"#,
        },
        Benchmark {
            name: "mbrot",
            figure: Figure::Fig6,
            source: r#"
(: iters : Float Float Float Float Integer -> Integer)
(define (iters zr zi cr ci n)
  (cond [(= n 0) 0]
        [(> (+ (* zr zr) (* zi zi)) 4.0) n]
        [else (iters (+ (- (* zr zr) (* zi zi)) cr)
                     (+ (* 2.0 (* zr zi)) ci)
                     cr ci (- n 1))]))
(: col : Integer Integer Integer -> Integer)
(define (col i j acc)
  (if (= j 40)
      acc
      (col i (+ j 1)
           (+ acc (iters 0.0 0.0
                         (- (/ (exact->inexact i) 20.0) 1.5)
                         (- (/ (exact->inexact j) 20.0) 1.0)
                         50)))))
(: rows : Integer Integer -> Integer)
(define (rows i acc)
  (if (= i 40) acc (rows (+ i 1) (col i 0 acc))))
(rows 0 0)
"#,
        },
        Benchmark {
            name: "nqueens",
            figure: Figure::Fig6,
            source: r#"
(: ok? : Integer Integer (Listof Integer) -> Boolean)
(define (ok? row dist placed)
  (if (null? placed)
      #t
      (and (not (= (car placed) (+ row dist)))
           (not (= (car placed) (- row dist)))
           (ok? row (+ dist 1) (cdr placed)))))
(: try : (Listof Integer) (Listof Integer) (Listof Integer) -> Integer)
(define (try x y z)
  (if (null? x)
      (if (null? y) 1 0)
      (+ (if (ok? (car x) 1 z)
             (try (append (cdr x) y) '() (cons (car x) z))
             0)
         (try (cdr x) (cons (car x) y) z))))
(: nqueens : Integer -> Integer)
(define (nqueens n) (try (range 1 (+ n 1)) '() '()))
(nqueens 9)
"#,
        },
        Benchmark {
            name: "pnpoly",
            figure: Figure::Fig6,
            source: r#"
(: poly-walk : (Vectorof Float) (Vectorof Float) Float Float Integer Integer Boolean -> Boolean)
(define (poly-walk xs ys x y i j c)
  (if (= i (vector-length xs))
      c
      (let ([yi (vector-ref ys i)] [yj (vector-ref ys j)]
            [xi (vector-ref xs i)] [xj (vector-ref xs j)])
        (if (and (or (and (<= yi y) (< y yj)) (and (<= yj y) (< y yi)))
                 (< x (+ (/ (* (- xj xi) (- y yi)) (- yj yi)) xi)))
            (poly-walk xs ys x y (+ i 1) i (not c))
            (poly-walk xs ys x y (+ i 1) i c)))))
(: pt-in-poly? : (Vectorof Float) (Vectorof Float) Float Float -> Boolean)
(define (pt-in-poly? xs ys x y)
  (poly-walk xs ys x y 0 (- (vector-length xs) 1) #f))
(: count-hits : Integer Integer (Vectorof Float) (Vectorof Float) -> Integer)
(define (count-hits k acc xs ys)
  (if (= k 0)
      acc
      (count-hits (- k 1)
                  (+ acc (if (pt-in-poly? xs ys
                                          (/ (exact->inexact (modulo (* k 7919) 200)) 100.0)
                                          (/ (exact->inexact (modulo (* k 104729) 200)) 100.0))
                             1 0))
                  xs ys)))
(count-hits 6000 0
            (vector 0.0 1.0 1.0 0.0 0.5)
            (vector 0.0 0.0 1.0 1.0 0.5))
"#,
        },
    ]
}
