//! Figure 7 workloads: Computer Language Benchmarks Game programs
//! (paper §7.3, “shootout”), scaled to simulator-friendly sizes.

use crate::Benchmark;
use crate::Figure;

/// The CLBG suite.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "nbody",
            figure: Figure::Fig7,
            source: r#"
(: advance : (Vectorof Float) (Vectorof Float) (Vectorof Float) (Vectorof Float) (Vectorof Float) Float Integer -> Void)
(define (advance xs ys vxs vys ms dt n)
  (if (= n 0)
      (void)
      (begin
        (pairwise xs ys vxs vys ms dt 0)
        (drift xs ys vxs vys dt 0)
        (advance xs ys vxs vys ms dt (- n 1)))))
(: pairwise : (Vectorof Float) (Vectorof Float) (Vectorof Float) (Vectorof Float) (Vectorof Float) Float Integer -> Void)
(define (pairwise xs ys vxs vys ms dt i)
  (if (= i (vector-length xs))
      (void)
      (begin
        (pair-body xs ys vxs vys ms dt i (+ i 1))
        (pairwise xs ys vxs vys ms dt (+ i 1)))))
(: pair-body : (Vectorof Float) (Vectorof Float) (Vectorof Float) (Vectorof Float) (Vectorof Float) Float Integer Integer -> Void)
(define (pair-body xs ys vxs vys ms dt i j)
  (if (= j (vector-length xs))
      (void)
      (let ([dx (- (vector-ref xs i) (vector-ref xs j))]
            [dy (- (vector-ref ys i) (vector-ref ys j))])
        (let ([d2 (+ (* dx dx) (* dy dy))])
          (let ([mag (/ dt (* d2 (sqrt d2)))])
            (vector-set! vxs i (- (vector-ref vxs i) (* dx (* (vector-ref ms j) mag))))
            (vector-set! vys i (- (vector-ref vys i) (* dy (* (vector-ref ms j) mag))))
            (vector-set! vxs j (+ (vector-ref vxs j) (* dx (* (vector-ref ms i) mag))))
            (vector-set! vys j (+ (vector-ref vys j) (* dy (* (vector-ref ms i) mag))))
            (pair-body xs ys vxs vys ms dt i (+ j 1)))))))
(: drift : (Vectorof Float) (Vectorof Float) (Vectorof Float) (Vectorof Float) Float Integer -> Void)
(define (drift xs ys vxs vys dt i)
  (if (= i (vector-length xs))
      (void)
      (begin
        (vector-set! xs i (+ (vector-ref xs i) (* dt (vector-ref vxs i))))
        (vector-set! ys i (+ (vector-ref ys i) (* dt (vector-ref vys i))))
        (drift xs ys vxs vys dt (+ i 1)))))
(: energy : (Vectorof Float) (Vectorof Float) (Vectorof Float) (Vectorof Float) (Vectorof Float) Integer Float -> Float)
(define (energy xs ys vxs vys ms i acc)
  (if (= i (vector-length xs))
      acc
      (energy xs ys vxs vys ms (+ i 1)
              (+ acc (* 0.5 (* (vector-ref ms i)
                               (+ (* (vector-ref vxs i) (vector-ref vxs i))
                                  (* (vector-ref vys i) (vector-ref vys i)))))))))
(define xs (vector 0.0 4.84 8.34 12.89 15.37))
(define ys (vector 0.0 -1.16 4.12 -15.11 -25.91))
(define vxs (vector 0.0 0.606 -0.276 0.298 0.288))
(define vys (vector 0.0 0.764 0.499 0.157 0.148))
(define ms (vector 39.47 0.0377 0.0113 0.0000431 0.0000515))
(advance xs ys vxs vys ms 0.01 2500)
(floor (* 1000.0 (energy xs ys vxs vys ms 0 0.0)))
"#,
        },
        Benchmark {
            name: "spectralnorm",
            figure: Figure::Fig7,
            source: r#"
(: a-elem : Integer Integer -> Float)
(define (a-elem i j)
  (/ 1.0 (exact->inexact (+ (quotient (* (+ i j) (+ i j 1)) 2) i 1))))
(: mul-av-row : (Vectorof Float) (Vectorof Float) Integer Integer Float Boolean -> Float)
(define (mul-av-row u out i j acc transpose)
  (if (= j (vector-length u))
      acc
      (mul-av-row u out i (+ j 1)
                  (+ acc (* (if transpose (a-elem j i) (a-elem i j)) (vector-ref u j)))
                  transpose)))
(: mul-av : (Vectorof Float) (Vectorof Float) Integer Boolean -> Void)
(define (mul-av u out i transpose)
  (if (= i (vector-length out))
      (void)
      (begin
        (vector-set! out i (mul-av-row u out i 0 0.0 transpose))
        (mul-av u out (+ i 1) transpose))))
(: mul-at-av : (Vectorof Float) (Vectorof Float) (Vectorof Float) -> Void)
(define (mul-at-av u tmp out)
  (begin (mul-av u tmp 0 #f) (mul-av tmp out 0 #t)))
(: power : (Vectorof Float) (Vectorof Float) (Vectorof Float) Integer -> Void)
(define (power u v tmp n)
  (if (= n 0)
      (void)
      (begin (mul-at-av u tmp v) (mul-at-av v tmp u) (power u v tmp (- n 1)))))
(: dot : (Vectorof Float) (Vectorof Float) Integer Float -> Float)
(define (dot a b i acc)
  (if (= i (vector-length a))
      acc
      (dot a b (+ i 1) (+ acc (* (vector-ref a i) (vector-ref b i))))))
(define n 48)
(define u (make-vector n 1.0))
(define v (make-vector n 0.0))
(define tmp (make-vector n 0.0))
(power u v tmp 10)
(floor (* 1000000.0 (sqrt (/ (dot u v 0 0.0) (dot v v 0 0.0)))))
"#,
        },
        Benchmark {
            name: "mandelbrot",
            figure: Figure::Fig7,
            source: r#"
(: in-set? : Float Float -> Integer)
(define (in-set? cr ci)
  (mandel-iter 0.0 0.0 cr ci 40))
(: mandel-iter : Float Float Float Float Integer -> Integer)
(define (mandel-iter zr zi cr ci n)
  (cond [(= n 0) 1]
        [(> (+ (* zr zr) (* zi zi)) 4.0) 0]
        [else (mandel-iter (+ (- (* zr zr) (* zi zi)) cr)
                           (+ (* 2.0 (* zr zi)) ci)
                           cr ci (- n 1))]))
(: scan : Integer Integer Integer Integer -> Integer)
(define (scan x y size acc)
  (cond [(= y size) acc]
        [(= x size) (scan 0 (+ y 1) size acc)]
        [else (scan (+ x 1) y size
                    (+ acc (in-set? (- (/ (* 2.0 (exact->inexact x)) (exact->inexact size)) 1.5)
                                    (- (/ (* 2.0 (exact->inexact y)) (exact->inexact size)) 1.0))))]))
(scan 0 0 56 0)
"#,
        },
        Benchmark {
            name: "fannkuch",
            figure: Figure::Fig7,
            source: r#"
(: vector-reverse-prefix! : (Vectorof Integer) Integer -> Void)
(define (vector-reverse-prefix! v n)
  (rev-loop v 0 (- n 1)))
(: rev-loop : (Vectorof Integer) Integer Integer -> Void)
(define (rev-loop v i j)
  (if (< i j)
      (let ([tmp (vector-ref v i)])
        (vector-set! v i (vector-ref v j))
        (vector-set! v j tmp)
        (rev-loop v (+ i 1) (- j 1)))
      (void)))
(: count-flips : (Vectorof Integer) Integer -> Integer)
(define (count-flips p acc)
  (let ([k (vector-ref p 0)])
    (if (= k 0)
        acc
        (begin
          (vector-reverse-prefix! p (+ k 1))
          (count-flips p (+ acc 1))))))
(: copy-into! : (Vectorof Integer) (Vectorof Integer) Integer -> Void)
(define (copy-into! src dst i)
  (if (= i (vector-length src))
      (void)
      (begin (vector-set! dst i (vector-ref src i)) (copy-into! src dst (+ i 1)))))
(: rotate-prefix! : (Vectorof Integer) Integer -> Void)
(define (rotate-prefix! p n)
  (let ([first (vector-ref p 0)])
    (rot-loop p 0 n)
    (vector-set! p (- n 1) first)))
(: rot-loop : (Vectorof Integer) Integer Integer -> Void)
(define (rot-loop p i n)
  (if (< i (- n 1))
      (begin (vector-set! p i (vector-ref p (+ i 1))) (rot-loop p (+ i 1) n))
      (void)))
(: fannkuch : (Vectorof Integer) (Vectorof Integer) (Vectorof Integer) Integer Integer -> Integer)
(define (fannkuch p tmp counts r best)
  (if (= r 0)
      best
      (let ([b2 (begin
                  (copy-into! p tmp 0)
                  (max best (count-flips tmp 0)))])
        (fannkuch-next p tmp counts 1 b2))))
(: fannkuch-next : (Vectorof Integer) (Vectorof Integer) (Vectorof Integer) Integer Integer -> Integer)
(define (fannkuch-next p tmp counts i best)
  (if (>= i (vector-length p))
      best
      (begin
        (rotate-prefix! p (+ i 1))
        (if (< (vector-ref counts i) i)
            (begin
              (vector-set! counts i (+ (vector-ref counts i) 1))
              (fannkuch p tmp counts 1 best))
            (begin
              (vector-set! counts i 0)
              (fannkuch-next p tmp counts (+ i 1) best))))))
(define n 7)
(define p (list->vector (range 0 n)))
(define tmp (make-vector n 0))
(define counts (make-vector n 0))
(fannkuch p tmp counts 1 0)
"#,
        },
        Benchmark {
            name: "partialsums",
            figure: Figure::Fig7,
            source: r#"
(: series : Float Float Float Float Float Float -> Float)
(define (series k n s1 s2 s3 s4)
  (if (> k n)
      (+ s1 (+ s2 (+ s3 s4)))
      (series (+ k 1.0) n
              (+ s1 (/ 1.0 (* k k)))
              (+ s2 (/ 1.0 (* k (+ k 1.0))))
              (+ s3 (/ (sin k) (* k k)))
              (+ s4 (/ 1.0 (sqrt k))))))
(floor (* 1000.0 (series 1.0 60000.0 0.0 0.0 0.0 0.0)))
"#,
        },
    ]
}
