//! Benchmark program sources, one module per paper figure.

pub mod clbg;
pub mod gabriel;
pub mod large;
pub mod pseudoknot;
