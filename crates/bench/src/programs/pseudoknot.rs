//! Figure 8 workload: `pseudoknot-lite`.
//!
//! The paper's pseudoknot (Hartel et al. 1996) searches nucleic-acid
//! conformations with heavy 3-D floating-point geometry over small
//! structures. The original is ~3000 lines of generated constants; this
//! kernel reproduces its *operation mix* — rigid-body transforms
//! (3×3 matrix × vector), distance checks, and a pruned backtracking
//! search over candidate placements — on synthetic geometry (see
//! DESIGN.md's substitution table).
//!
//! Points are `(List Float Float Float)`, so the typed build exercises
//! both float specialization and tag-check elimination (`first`/`second`/
//! `third` on fixed-length lists become `unsafe-car`/`unsafe-cdr`
//! chains).

use crate::Benchmark;
use crate::Figure;

/// The pseudoknot-lite benchmark.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![Benchmark {
        name: "pseudoknot",
        figure: Figure::Fig8,
        source: r#"
(: p3 : Float Float Float -> (List Float Float Float))
(define (p3 x y z) (list x y z))
(: px : (List Float Float Float) -> Float)
(define (px p) (first p))
(: py : (List Float Float Float) -> Float)
(define (py p) (second p))
(: pz : (List Float Float Float) -> Float)
(define (pz p) (third p))
(: dist2 : (List Float Float Float) (List Float Float Float) -> Float)
(define (dist2 a b)
  (let ([dx (- (px a) (px b))]
        [dy (- (py a) (py b))]
        [dz (- (pz a) (pz b))])
    (+ (* dx dx) (+ (* dy dy) (* dz dz)))))
(: rotate-z : (List Float Float Float) Float -> (List Float Float Float))
(define (rotate-z p theta)
  (let ([c (cos theta)] [s (sin theta)])
    (p3 (- (* c (px p)) (* s (py p)))
        (+ (* s (px p)) (* c (py p)))
        (pz p))))
(: rotate-x : (List Float Float Float) Float -> (List Float Float Float))
(define (rotate-x p theta)
  (let ([c (cos theta)] [s (sin theta)])
    (p3 (px p)
        (- (* c (py p)) (* s (pz p)))
        (+ (* s (py p)) (* c (pz p))))))
(: translate : (List Float Float Float) Float Float Float -> (List Float Float Float))
(define (translate p dx dy dz)
  (p3 (+ (px p) dx) (+ (py p) dy) (+ (pz p) dz)))
(: place : (List Float Float Float) Integer -> (List Float Float Float))
(define (place anchor k)
  (let ([t (* 0.61803398875 (exact->inexact k))])
    (translate (rotate-x (rotate-z anchor t) (* 0.5 t))
               (cos t) (sin t) (* 0.25 t))))
(: clash? : (List Float Float Float) (Listof (List Float Float Float)) -> Boolean)
(define (clash? p placed)
  (if (null? placed)
      #f
      (if (< (dist2 p (car placed)) 0.8)
          #t
          (clash? p (cdr placed)))))
(: energy : (List Float Float Float) (Listof (List Float Float Float)) Float -> Float)
(define (energy p placed acc)
  (if (null? placed)
      acc
      (energy p (cdr placed) (+ acc (/ 1.0 (+ 0.1 (dist2 p (car placed))))))))
(: search : Integer Integer (Listof (List Float Float Float)) (List Float Float Float) Float -> Float)
(define (search depth width placed anchor best)
  (if (= depth 0)
      (min best (energy anchor placed 0.0))
      (search-candidates depth width 0 placed anchor best)))
(: search-candidates : Integer Integer Integer (Listof (List Float Float Float)) (List Float Float Float) Float -> Float)
(define (search-candidates depth width k placed anchor best)
  (if (= k width)
      best
      (let ([cand (place anchor k)])
        (if (clash? cand placed)
            (search-candidates depth width (+ k 1) placed anchor best)
            (search-candidates depth width (+ k 1) placed anchor
                               (search (- depth 1) width (cons cand placed) cand best))))))
(: run : Integer Float -> Float)
(define (run iters acc)
  (if (= iters 0)
      acc
      (run (- iters 1)
           (+ acc (search 4 6 '() (p3 0.0 0.0 0.0) 1000000.0)))))
(floor (* 1000.0 (run 12 0.0)))
"#,
    }]
}
