//! Figure 9 workloads: the paper's "large benchmarks" — a ray tracer, an
//! FFT, and functional data structures (Prashanth & Tobin-Hochstadt
//! 2010). Scaled-down but structurally faithful versions (see DESIGN.md).

use crate::Benchmark;
use crate::Figure;

/// The large-application suite.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "raytrace",
            figure: Figure::Fig9,
            source: r#"
(: vec3 : Float Float Float -> (List Float Float Float))
(define (vec3 x y z) (list x y z))
(: vx : (List Float Float Float) -> Float)
(define (vx v) (first v))
(: vy : (List Float Float Float) -> Float)
(define (vy v) (second v))
(: vz : (List Float Float Float) -> Float)
(define (vz v) (third v))
(: v- : (List Float Float Float) (List Float Float Float) -> (List Float Float Float))
(define (v- a b) (vec3 (- (vx a) (vx b)) (- (vy a) (vy b)) (- (vz a) (vz b))))
(: vdot : (List Float Float Float) (List Float Float Float) -> Float)
(define (vdot a b) (+ (* (vx a) (vx b)) (+ (* (vy a) (vy b)) (* (vz a) (vz b)))))
(: vscale : (List Float Float Float) Float -> (List Float Float Float))
(define (vscale a s) (vec3 (* (vx a) s) (* (vy a) s) (* (vz a) s)))
(: vnorm : (List Float Float Float) -> (List Float Float Float))
(define (vnorm a) (vscale a (/ 1.0 (sqrt (vdot a a)))))

;; sphere i: center (cxs[i], cys[i], czs[i]), radius rs[i]
(define cxs (vector 0.0 1.5 -1.5))
(define cys (vector 0.0 0.5 -0.5))
(define czs (vector 5.0 6.0 4.5))
(define rs  (vector 1.0 0.7 0.6))

(: hit-sphere : (List Float Float Float) (List Float Float Float) Integer -> Float)
(define (hit-sphere origin dir i)
  (let ([oc (v- origin (vec3 (vector-ref cxs i) (vector-ref cys i) (vector-ref czs i)))])
    (let ([a (vdot dir dir)]
          [b (* 2.0 (vdot oc dir))]
          [c (- (vdot oc oc) (* (vector-ref rs i) (vector-ref rs i)))])
      (let ([disc (- (* b b) (* 4.0 (* a c)))])
        (if (< disc 0.0)
            -1.0
            (/ (- 0.0 (+ b (sqrt disc))) (* 2.0 a)))))))
(: nearest-hit : (List Float Float Float) (List Float Float Float) Integer Float -> Float)
(define (nearest-hit origin dir i best)
  (if (= i (vector-length rs))
      best
      (let ([t (hit-sphere origin dir i)])
        (nearest-hit origin dir (+ i 1)
                     (if (and (> t 0.0) (or (< t best) (< best 0.0))) t best)))))
(: shade : (List Float Float Float) (List Float Float Float) -> Float)
(define (shade origin dir)
  (let ([t (nearest-hit origin dir 0 -1.0)])
    (if (< t 0.0)
        0.0
        (let ([hit-z (+ (vz origin) (* t (vz dir)))])
          (max 0.0 (- 1.0 (/ hit-z 10.0)))))))
(: render-px : Integer Integer Integer -> Float)
(define (render-px x y size)
  (let ([dx (- (/ (exact->inexact x) (exact->inexact size)) 0.5)]
        [dy (- (/ (exact->inexact y) (exact->inexact size)) 0.5)])
    (shade (vec3 0.0 0.0 0.0) (vnorm (vec3 dx dy 1.0)))))
(: render : Integer Integer Integer Float -> Float)
(define (render x y size acc)
  (cond [(= y size) acc]
        [(= x size) (render 0 (+ y 1) size acc)]
        [else (render (+ x 1) y size (+ acc (render-px x y size)))]))
(floor (* 1000.0 (render 0 0 40 0.0)))
"#,
        },
        Benchmark {
            name: "fft",
            figure: Figure::Fig9,
            source: r#"
;; iterative radix-2 FFT over split re/im vectors (the "industrial
;; strength FFT" of paper §7.3, scaled down)
(: bit-reverse! : (Vectorof Float) (Vectorof Float) Integer Integer -> Void)
(define (bit-reverse! re im i j)
  (if (>= i (vector-length re))
      (void)
      (begin
        (when (< i j)
          (let ([tr (vector-ref re i)] [ti (vector-ref im i)])
            (vector-set! re i (vector-ref re j))
            (vector-set! im i (vector-ref im j))
            (vector-set! re j tr)
            (vector-set! im j ti)))
        (bit-reverse! re im (+ i 1) (rev-step j (quotient (vector-length re) 2))))))
(: rev-step : Integer Integer -> Integer)
(define (rev-step j m)
  (if (and (>= m 1) (>= j m))
      (rev-step (- j m) (quotient m 2))
      (+ j m)))
(: butterfly : (Vectorof Float) (Vectorof Float) Integer Integer Float Float Integer -> Void)
(define (butterfly re im mmax istep wr wi m)
  (if (> m mmax)
      (void)
      (begin
        (inner-loop re im (- m 1) mmax istep wr wi)
        (butterfly re im mmax istep wr wi (+ m 1)))))
(: inner-loop : (Vectorof Float) (Vectorof Float) Integer Integer Integer Float Float -> Void)
(define (inner-loop re im i mmax istep wr wi)
  (if (>= i (vector-length re))
      (void)
      (let ([j (+ i mmax)])
        (let ([tr (- (* wr (vector-ref re j)) (* wi (vector-ref im j)))]
              [ti (+ (* wr (vector-ref im j)) (* wi (vector-ref re j)))])
          (vector-set! re j (- (vector-ref re i) tr))
          (vector-set! im j (- (vector-ref im i) ti))
          (vector-set! re i (+ (vector-ref re i) tr))
          (vector-set! im i (+ (vector-ref im i) ti))
          (inner-loop re im (+ i istep) mmax istep wr wi)))))
(: stages : (Vectorof Float) (Vectorof Float) Integer -> Void)
(define (stages re im mmax)
  (if (>= mmax (vector-length re))
      (void)
      (begin
        (stage-ms re im mmax (* 2 mmax) 1)
        (stages re im (* 2 mmax)))))
(: stage-ms : (Vectorof Float) (Vectorof Float) Integer Integer Integer -> Void)
(define (stage-ms re im mmax istep m)
  (if (> m mmax)
      (void)
      (let ([theta (/ (* 3.14159265358979 (exact->inexact (- m 1))) (exact->inexact mmax))])
        (inner-loop re im (- m 1) mmax istep (cos theta) (- 0.0 (sin theta)))
        (stage-ms re im mmax istep (+ m 1)))))
(: fill! : (Vectorof Float) Integer -> Void)
(define (fill! v i)
  (if (= i (vector-length v))
      (void)
      (begin
        (vector-set! v i (sin (* 0.1 (exact->inexact i))))
        (fill! v (+ i 1)))))
(: checksum : (Vectorof Float) (Vectorof Float) Integer Float -> Float)
(define (checksum re im i acc)
  (if (= i (vector-length re))
      acc
      (checksum re im (+ i 1)
                (+ acc (sqrt (+ (* (vector-ref re i) (vector-ref re i))
                                (* (vector-ref im i) (vector-ref im i))))))))
(: run-fft : Integer Float -> Float)
(define (run-fft rounds acc)
  (if (= rounds 0)
      acc
      (let ([re (make-vector 512 0.0)] [im (make-vector 512 0.0)])
        (fill! re 0)
        (bit-reverse! re im 0 0)
        (stages re im 1)
        (run-fft (- rounds 1) (+ acc (checksum re im 0 0.0))))))
(floor (run-fft 16 0.0))
"#,
        },
        Benchmark {
            name: "funcds",
            figure: Figure::Fig9,
            source: r#"
;; functional data structures (Prashanth & Tobin-Hochstadt 2010):
;; a banker's queue and bottom-up merge sort over integer lists
(: rotate-queue : (Listof Integer) (Listof Integer) -> (Listof Integer))
(define (rotate-queue front back)
  (if (null? back) front (append front (reverse back))))
(: enqueue-all : Integer (Listof Integer) (Listof Integer) Integer -> Integer)
(define (enqueue-all n front back acc)
  (if (= n 0)
      (drain front back acc)
      (if (> (length back) (length front))
          (enqueue-all (- n 1) (rotate-queue front (cons n back)) '() acc)
          (enqueue-all (- n 1) front (cons n back) acc))))
(: drain : (Listof Integer) (Listof Integer) Integer -> Integer)
(define (drain front back acc)
  (cond [(null? front)
         (if (null? back) acc (drain (reverse back) '() acc))]
        [else (drain (cdr front) back (+ acc (car front)))]))
(: merge2 : (Listof Integer) (Listof Integer) -> (Listof Integer))
(define (merge2 a b)
  (cond [(null? a) b]
        [(null? b) a]
        [(<= (car a) (car b)) (cons (car a) (merge2 (cdr a) b))]
        [else (cons (car b) (merge2 a (cdr b)))]))
(: msort : (Listof Integer) -> (Listof Integer))
(define (msort l)
  (if (or (null? l) (null? (cdr l)))
      l
      (msort-split l '() '())))
(: msort-split : (Listof Integer) (Listof Integer) (Listof Integer) -> (Listof Integer))
(define (msort-split l a b)
  (if (null? l)
      (merge2 (msort a) (msort b))
      (msort-split (cdr l) (cons (car l) b) a)))
(: shuffle : Integer (Listof Integer) -> (Listof Integer))
(define (shuffle n acc)
  (if (= n 0) acc (shuffle (- n 1) (cons (modulo (* n 7919) 1000) acc))))
(: sum-firsts : (Listof Integer) Integer Integer -> Integer)
(define (sum-firsts l k acc)
  (if (or (= k 0) (null? l)) acc (sum-firsts (cdr l) (- k 1) (+ acc (car l)))))
(: run : Integer Integer -> Integer)
(define (run rounds acc)
  (if (= rounds 0)
      acc
      (run (- rounds 1)
           (+ acc
              (enqueue-all 400 '() '() 0)
              (sum-firsts (msort (shuffle 300 '())) 10 0)))))
(run 16 0)
"#,
        },
    ]
}
