//! The `BENCH_7.json` experiment: daemon memory stability and
//! self-healing overhead.
//!
//! Four measurements back EXPERIMENTS.md's "Memory stability &
//! self-healing" entry:
//!
//! 1. **Leak-free soak** — a long stream of inline-source `run`
//!    requests with request-unique identifiers, sampling the interner
//!    gauge and the process RSS along the way. The fitted per-request
//!    slope of the symbol series is the leak gauge: 0.0 under epoch
//!    truncation, ~3.2 under the old process-global interner (BENCH_6).
//! 2. **High-water check** — the gauge's high-water mark stays at the
//!    settled baseline: requests borrow symbols, they don't keep them.
//! 3. **Recycle overhead A/B** — the same request stream with
//!    `recycle_after` off and at 1 (a full world rebuild per request,
//!    the worst case), quantifying what `--recycle-after N` costs.
//! 4. **Retry under flood** — retrying clients against a deliberately
//!    overloaded daemon (1 worker, 1-deep queue, a slow-request flood):
//!    every retrier must land, and their p50/p99 wall times bound what
//!    backoff costs.

use crate::bench6::{stats_gauge, wait_for_worker_baselines};
use lagoon_server::{client, ServeOptions, Server};
use std::time::{Duration, Instant};

/// Least-squares slope of `series` (y per unit x). Zero for fewer than
/// two points or a degenerate x range.
pub fn least_squares_slope(series: &[(u64, u64)]) -> f64 {
    if series.len() < 2 {
        return 0.0;
    }
    let n = series.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (x, y) in series {
        let (x, y) = (*x as f64, *y as f64);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

/// This process's resident set size in kilobytes, from
/// `/proc/self/status` (`None` off Linux).
pub fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The long-soak record: symbol and RSS series under inline-source
/// load, with the fitted leak slope.
#[derive(Clone, Debug)]
pub struct Bench7Soak {
    /// Daemon worker count.
    pub workers: usize,
    /// Inline-source `run` requests sent (all must succeed).
    pub requests: usize,
    /// Interner symbols at the settled baseline.
    pub interner_start: u64,
    /// Interner symbols after the last request.
    pub interner_end: u64,
    /// `(requests, interner symbols)` samples.
    pub series: Vec<(u64, u64)>,
    /// `(requests, VmRSS kB)` samples (empty off Linux).
    pub rss_series: Vec<(u64, u64)>,
    /// The gauge's high-water mark after the soak.
    pub high_water: u64,
    /// Interner growth beyond the baseline after the soak.
    pub growth: u64,
}

impl Bench7Soak {
    /// Fitted interner slope, symbols per request.
    pub fn symbol_slope(&self) -> f64 {
        least_squares_slope(&self.series)
    }

    /// Fitted RSS slope, kB per request.
    pub fn rss_slope_kb(&self) -> f64 {
        least_squares_slope(&self.rss_series)
    }
}

/// Soaks an in-process daemon with `requests` sequential inline-source
/// `run` requests (request-unique identifiers), sampling gauges every
/// `sample_every`.
///
/// # Errors
///
/// Returns daemon start failures, failed requests, and malformed
/// `stats` responses rendered as text.
pub fn bench7_soak(
    requests: usize,
    sample_every: usize,
    workers: usize,
) -> Result<Bench7Soak, String> {
    let server = Server::start(ServeOptions {
        workers,
        ..ServeOptions::default()
    })
    .map_err(|e| format!("start daemon: {e}"))?;
    let addr = server.addr().to_string();
    let sample_every = sample_every.max(1);

    wait_for_worker_baselines(&addr, workers)?;
    let interner_start = stats_gauge(&addr, &["interner", "symbols"])?;
    let mut series = Vec::new();
    let mut rss_series = Vec::new();
    for i in 0..requests {
        let source = format!("#lang lagoon\n(define soak7-v{i} {i})\n(* soak7-v{i} 2)\n");
        let request = client::inline_request("run", &source, vec![]);
        let response = client::request_line(&addr, &request, Some(Duration::from_secs(30)))
            .map_err(|e| format!("request {i}: {e}"))?;
        if !response.contains("\"ok\":true") {
            return Err(format!("request {i} failed: {response}"));
        }
        if (i + 1) % sample_every == 0 {
            let done = (i + 1) as u64;
            series.push((done, stats_gauge(&addr, &["interner", "symbols"])?));
            if let Some(kb) = rss_kb() {
                rss_series.push((done, kb));
            }
        }
    }
    let interner_end = stats_gauge(&addr, &["interner", "symbols"])?;
    let high_water = stats_gauge(&addr, &["interner", "high_water"])?;
    let growth = stats_gauge(&addr, &["interner", "growth"])?;
    server.shutdown();
    server.wait();

    Ok(Bench7Soak {
        workers,
        requests,
        interner_start,
        interner_end,
        series,
        rss_series,
        high_water,
        growth,
    })
}

/// The recycle-overhead A/B: median request latency with worker
/// recycling off versus a rebuild-per-request worst case.
#[derive(Clone, Debug)]
pub struct Bench7Recycle {
    /// Requests timed per arm.
    pub requests: usize,
    /// Median latency, recycling off, ms.
    pub off_ms: f64,
    /// Median latency at `recycle_after = 1`, ms.
    pub every_ms: f64,
    /// Worlds actually recycled in the on arm.
    pub recycles: u64,
}

impl Bench7Recycle {
    /// Rebuild-per-request overhead over the off baseline, in percent.
    pub fn overhead_percent(&self) -> f64 {
        if self.off_ms <= 0.0 {
            return 0.0;
        }
        (self.every_ms / self.off_ms - 1.0) * 100.0
    }
}

fn timed_requests(addr: &str, requests: usize, tag: &str) -> Result<Vec<f64>, String> {
    let mut latencies = Vec::with_capacity(requests);
    for i in 0..requests {
        let source = format!("#lang lagoon\n(define {tag}-{i} {i})\n(+ {tag}-{i} 3)\n");
        let request = client::inline_request("run", &source, vec![]);
        let start = Instant::now();
        let response = client::request_line(addr, &request, Some(Duration::from_secs(30)))
            .map_err(|e| format!("{tag} request {i}: {e}"))?;
        latencies.push(start.elapsed().as_secs_f64() * 1000.0);
        if !response.contains("\"ok\":true") {
            return Err(format!("{tag} request {i} failed: {response}"));
        }
    }
    Ok(latencies)
}

/// Times `requests` sequential requests against a 1-worker daemon with
/// recycling off, then against one rebuilding its world after every
/// request.
///
/// # Errors
///
/// Returns daemon start failures and failed requests rendered as text.
pub fn bench7_recycle(requests: usize) -> Result<Bench7Recycle, String> {
    let mut medians = Vec::new();
    let mut recycles = 0;
    for recycle_after in [0usize, 1] {
        let server = Server::start(ServeOptions {
            workers: 1,
            recycle_after,
            ..ServeOptions::default()
        })
        .map_err(|e| format!("start daemon: {e}"))?;
        let addr = server.addr().to_string();
        wait_for_worker_baselines(&addr, 1)?;
        // warmup request: neither arm should pay first-request costs
        timed_requests(&addr, 1, "warm")?;
        let mut latencies = timed_requests(&addr, requests, "recyc")?;
        medians.push(crate::median(&mut latencies));
        if recycle_after > 0 {
            recycles = stats_gauge(&addr, &["supervision", "recycles"])?;
        }
        server.shutdown();
        server.wait();
    }
    Ok(Bench7Recycle {
        requests,
        off_ms: medians[0],
        every_ms: medians[1],
        recycles,
    })
}

/// The retry-under-flood record: retrying clients against an overloaded
/// daemon.
#[derive(Clone, Debug)]
pub struct Bench7Retry {
    /// Retrying clients (all must succeed).
    pub clients: usize,
    /// Concurrent slow-request flooders.
    pub flood: usize,
    /// Retrying clients whose request eventually succeeded.
    pub succeeded: usize,
    /// Total retries taken across all clients.
    pub retries: u64,
    /// Shed responses the flood observed (evidence of overload).
    pub shed: usize,
    /// Median retrying-client wall time, ms.
    pub p50_ms: f64,
    /// 99th-percentile retrying-client wall time, ms.
    pub p99_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Floods a 1-worker, 1-deep-queue daemon with `flood` concurrent slow
/// requests while `clients` retrying clients send small programs; every
/// retrying client must land.
///
/// # Errors
///
/// Returns daemon start failures and client I/O errors rendered as
/// text.
pub fn bench7_retry(clients: usize, flood: usize) -> Result<Bench7Retry, String> {
    let server = Server::start(ServeOptions {
        workers: 1,
        queue_cap: 1,
        ..ServeOptions::default()
    })
    .map_err(|e| format!("start daemon: {e}"))?;
    let addr = server.addr().to_string();
    wait_for_worker_baselines(&addr, 1)?;

    let slow = client::inline_request(
        "run",
        "#lang lagoon\n(define (spin n) (if (= n 0) 'done (spin (- n 1))))\n(spin 300000)\n",
        vec![],
    );
    let (shed, outcomes) = std::thread::scope(|scope| {
        let floods: Vec<_> = (0..flood)
            .map(|_| {
                let addr = addr.clone();
                let slow = slow.clone();
                scope.spawn(move || {
                    client::request_line(&addr, &slow, Some(Duration::from_secs(30)))
                        .map(|r| client::is_retryable_response(&r))
                        .unwrap_or(false)
                })
            })
            .collect();
        let retriers: Vec<_> = (0..clients)
            .map(|i| {
                let addr = addr.clone();
                let request =
                    client::inline_request("run", &format!("#lang lagoon\n(+ {i} 1000)\n"), vec![]);
                scope.spawn(move || {
                    let policy = client::RetryPolicy {
                        attempts: 40,
                        base: Duration::from_millis(20),
                        max: Duration::from_millis(250),
                        seed: i as u64,
                    };
                    let start = Instant::now();
                    let outcome = client::request_line_retry(
                        &addr,
                        &request,
                        Some(Duration::from_secs(30)),
                        &policy,
                    );
                    let ms = start.elapsed().as_secs_f64() * 1000.0;
                    outcome
                        .map(|(response, retries)| (response.contains("\"ok\":true"), retries, ms))
                })
            })
            .collect();
        let shed = floods
            .into_iter()
            .map(|h| h.join().unwrap_or(false))
            .filter(|shed| *shed)
            .count();
        let outcomes: Vec<_> = retriers
            .into_iter()
            .map(|h| h.join().expect("retry client thread"))
            .collect();
        (shed, outcomes)
    });
    server.shutdown();
    server.wait();

    let mut succeeded = 0;
    let mut retries = 0u64;
    let mut times = Vec::new();
    for outcome in outcomes {
        let (ok, r, ms) = outcome.map_err(|e| format!("retry client io: {e}"))?;
        if ok {
            succeeded += 1;
        }
        retries += u64::from(r);
        times.push(ms);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(Bench7Retry {
        clients,
        flood,
        succeeded,
        retries,
        shed,
        p50_ms: percentile(&times, 0.50),
        p99_ms: percentile(&times, 0.99),
    })
}

/// Serializes the measurements as the `BENCH_7.json` object
/// (hand-rolled; the workspace takes no serialization dependency).
pub fn bench7_json(soak: &Bench7Soak, recycle: &Bench7Recycle, retry: &Bench7Retry) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"soak\":{");
    let _ = write!(
        out,
        "\"workers\":{},\"requests\":{},\"interner_start\":{},\"interner_end\":{},\
         \"symbol_slope_per_request\":{:.6},\"rss_slope_kb_per_request\":{:.6},\
         \"growth\":{},\"high_water\":{},\"series\":[",
        soak.workers,
        soak.requests,
        soak.interner_start,
        soak.interner_end,
        soak.symbol_slope(),
        soak.rss_slope_kb(),
        soak.growth,
        soak.high_water,
    );
    for (i, (n, symbols)) in soak.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{n},{symbols}]");
    }
    out.push_str("],\"rss_kb_series\":[");
    for (i, (n, kb)) in soak.rss_series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{n},{kb}]");
    }
    let _ = write!(
        out,
        "]}},\"recycle\":{{\"requests\":{},\"off_ms\":{:.6},\"every_ms\":{:.6},\
         \"overhead_percent\":{:.3},\"recycles\":{}}},\
         \"retry\":{{\"clients\":{},\"flood\":{},\"succeeded\":{},\"retries\":{},\
         \"shed\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3}}}}}",
        recycle.requests,
        recycle.off_ms,
        recycle.every_ms,
        recycle.overhead_percent(),
        recycle.recycles,
        retry.clients,
        retry.flood,
        retry.succeeded,
        retry.retries,
        retry.shed,
        retry.p50_ms,
        retry.p99_ms,
    );
    out
}

/// A human summary of the three measurements, for the console.
pub fn bench7_report(soak: &Bench7Soak, recycle: &Bench7Recycle, retry: &Bench7Retry) -> String {
    format!(
        "soak: {} requests, slope {:.4} symbols/request (growth {}), rss slope {:.4} kB/request\n\
         recycle: off {:.3} ms, every {:.3} ms ({:+.1}%)\n\
         retry: {}/{} clients landed under flood ({} retries, p50 {:.1} ms, p99 {:.1} ms)",
        soak.requests,
        soak.symbol_slope(),
        soak.growth,
        soak.rss_slope_kb(),
        recycle.off_ms,
        recycle.every_ms,
        recycle.overhead_percent(),
        retry.succeeded,
        retry.clients,
        retry.retries,
        retry.p50_ms,
        retry.p99_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_fits_flat_and_rising_series() {
        assert_eq!(least_squares_slope(&[]), 0.0);
        assert_eq!(least_squares_slope(&[(1, 5)]), 0.0);
        let flat = [(10, 700), (20, 700), (30, 700)];
        assert!(least_squares_slope(&flat).abs() < 1e-9);
        let rising = [(10, 100), (20, 132), (30, 164)];
        assert!((least_squares_slope(&rising) - 3.2).abs() < 1e-9);
    }

    #[test]
    fn soak_slope_is_zero() {
        let soak = bench7_soak(20, 5, 2).unwrap();
        assert_eq!(soak.requests, 20);
        assert_eq!(soak.series.len(), 4);
        assert_eq!(soak.symbol_slope(), 0.0, "{:?}", soak.series);
        assert_eq!(soak.growth, 0);
        assert_eq!(soak.interner_end, soak.interner_start);
        assert!(soak.high_water >= soak.interner_end);
    }

    #[test]
    fn retry_lands_every_client_and_json_parses() {
        let retry = bench7_retry(3, 4).unwrap();
        assert_eq!(
            retry.succeeded, retry.clients,
            "a retrying client lost its request: {retry:?}"
        );
        assert!(retry.p99_ms >= retry.p50_ms);
        let recycle = Bench7Recycle {
            requests: 2,
            off_ms: 1.0,
            every_ms: 1.5,
            recycles: 2,
        };
        let soak = bench7_soak(4, 2, 1).unwrap();
        let json = bench7_json(&soak, &recycle, &retry);
        assert!(lagoon_server::json::parse(&json).is_ok(), "{json}");
        assert!(json.contains("\"symbol_slope_per_request\""));
        assert!((recycle.overhead_percent() - 50.0).abs() < 1e-9);
    }
}
