//! The `BENCH_5.json` experiment: parallel-build scaling and daemon
//! throughput.
//!
//! Two measurements back EXPERIMENTS.md's "Serving & parallel builds"
//! table:
//!
//! 1. **Build scaling** — a 13-module typed require graph (four chains
//!    of three modules feeding one top entry) is built from a cold
//!    `.lagc` store at `--jobs 1/2/4/8`. Besides wall time the sweep
//!    records a digest over every artifact byte, so the records also
//!    prove the parallel schedules write byte-identical stores.
//! 2. **Daemon throughput** — N concurrent `run` requests against an
//!    in-process [`Server`] vs. the same N programs each evaluated in a
//!    cold world (fresh registry, languages re-registered, no shared
//!    store), which is what a cold `lagoon run` process pays.

use lagoon_server::client;
use lagoon_server::{build_from_map, BuildOptions, ServeOptions, Server};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Number of modules in the benchmark graph (four chains of three plus
/// the entry module).
pub const GRAPH_MODULES: usize = 13;

/// The entry module plus its 12 dependencies: four independent typed
/// chains of three modules each, joined by an untyped top module, so a
/// scheduler with 4 workers has a full wavefront to spread.
pub fn bench5_graph() -> (String, BTreeMap<String, String>) {
    use std::fmt::Write;
    let mut sources = BTreeMap::new();
    for chain in ["pa", "pb", "pc", "pd"] {
        for depth in 0..3 {
            let mut body = String::from("#lang typed/lagoon\n");
            if depth < 2 {
                let _ = writeln!(body, "(require {chain}{})", depth + 1);
            }
            // enough chained typed functions per module that expansion +
            // typechecking dominates per-worker registry setup — the
            // scaling measurement is about compile work, not fixed costs
            const FNS: usize = 48;
            for f in 0..FNS {
                let callee = if f == FNS - 1 {
                    if depth < 2 {
                        format!("{chain}{}-f0", depth + 1)
                    } else {
                        "add1".to_string()
                    }
                } else {
                    format!("{chain}{depth}-f{}", f + 1)
                };
                let _ = writeln!(body, "(: {chain}{depth}-f{f} : Integer -> Integer)");
                let _ = writeln!(
                    body,
                    "(define ({chain}{depth}-f{f} n) (if (= n 0) 1 (+ ({callee} (- n 1)) {f})))"
                );
            }
            let _ = writeln!(body, "(provide {chain}{depth}-f0)");
            sources.insert(format!("{chain}{depth}"), body);
        }
    }
    sources.insert(
        "bench5-top".to_string(),
        "#lang lagoon\n(require pa0 pb0 pc0 pd0)\n\
         (+ (pa0-f0 20) (pb0-f0 20) (pc0-f0 20) (pd0-f0 20))\n"
            .to_string(),
    );
    ("bench5-top".to_string(), sources)
}

/// One record of the build-scaling sweep.
#[derive(Clone, Debug)]
pub struct Bench5Build {
    /// Worker count for this record.
    pub jobs: usize,
    /// Best cold-store wall time over the reps, in milliseconds.
    pub best_ms: f64,
    /// Worker busy-share of the best run (1.0 = all workers always busy).
    pub utilization: f64,
    /// Store misses (modules actually compiled) in the best run.
    pub cache_misses: u64,
    /// FNV-1a digest over every artifact byte the build wrote, in
    /// filename order. Equal digests across jobs counts mean the
    /// parallel schedules produced byte-identical stores.
    pub artifacts_digest: u64,
}

fn digest_store(dir: &PathBuf) -> Result<u64, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lagc"))
        .collect();
    files.sort();
    let mut bytes = Vec::new();
    for file in files {
        if let Some(name) = file.file_name() {
            bytes.extend_from_slice(name.to_string_lossy().as_bytes());
        }
        bytes.extend_from_slice(
            &std::fs::read(&file).map_err(|e| format!("read {}: {e}", file.display()))?,
        );
    }
    Ok(lagoon_syntax::wire::fnv1a(&bytes))
}

/// Builds the graph from a cold store at each `jobs` level, `reps` times
/// each, keeping the best wall time.
///
/// # Errors
///
/// Returns the first module failure or store I/O error rendered as text.
pub fn bench5_build_sweep(jobs_list: &[usize], reps: usize) -> Result<Vec<Bench5Build>, String> {
    let (entry, sources) = bench5_graph();
    let mut records = Vec::new();
    for &jobs in jobs_list {
        let mut best: Option<Bench5Build> = None;
        for rep in 0..reps.max(1) {
            let dir = std::env::temp_dir().join(format!(
                "lagoon-bench5-{}-j{jobs}-r{rep}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = BuildOptions {
                jobs,
                cache_dir: Some(dir.clone()),
                ..BuildOptions::default()
            };
            let report = build_from_map(std::slice::from_ref(&entry), sources.clone(), &opts);
            if let Some(failure) = report.failures().first() {
                return Err(format!("{} failed: {:?}", failure.name, failure.status));
            }
            let record = Bench5Build {
                jobs,
                best_ms: report.wall.as_secs_f64() * 1000.0,
                utilization: report.utilization(),
                cache_misses: report.cache_misses as u64,
                artifacts_digest: digest_store(&dir)?,
            };
            let _ = std::fs::remove_dir_all(&dir);
            if best.as_ref().is_none_or(|b| record.best_ms < b.best_ms) {
                best = Some(record);
            }
        }
        records.push(best.ok_or("no reps")?);
    }
    Ok(records)
}

/// The daemon-vs-cold-world throughput record.
#[derive(Clone, Debug)]
pub struct Bench5Serve {
    /// Daemon worker count.
    pub workers: usize,
    /// Total requests sent (all must succeed).
    pub requests: usize,
    /// Wall time for all requests through the daemon, in milliseconds.
    pub daemon_ms: f64,
    /// Wall time evaluating the same programs in per-request cold
    /// worlds, in milliseconds.
    pub cold_ms: f64,
}

impl Bench5Serve {
    /// Throughput ratio: cold wall time over daemon wall time.
    pub fn speedup(&self) -> f64 {
        self.cold_ms / self.daemon_ms
    }
}

const SERVE_PROGRAM: &str = "#lang typed/lagoon\n\
    (: spin : Integer -> Integer)\n\
    (define (spin n) (if (= n 0) 0 (+ (spin (- n 1)) 1)))\n\
    (spin 400)\n";

/// Fires `requests` concurrent `run` requests at an in-process daemon
/// with `workers` workers, then evaluates the same program `requests`
/// times in cold worlds, and returns both wall times.
///
/// # Errors
///
/// Returns daemon start failures and any request that does not come back
/// `"ok": true`.
pub fn bench5_serve(requests: usize, workers: usize) -> Result<Bench5Serve, String> {
    let server = Server::start(ServeOptions {
        workers,
        ..ServeOptions::default()
    })
    .map_err(|e| format!("start daemon: {e}"))?;
    let addr = server.addr().to_string();
    let request = client::inline_request("run", SERVE_PROGRAM, vec![]);

    // one warmup so worker prelude setup is off the clock, matching the
    // steady state a resident daemon runs in
    client::request_line(&addr, &request, Some(Duration::from_secs(30)))
        .map_err(|e| format!("warmup: {e}"))?;

    let start = Instant::now();
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..requests)
            .map(|_| {
                let addr = addr.clone();
                let request = request.clone();
                scope.spawn(move || {
                    let response =
                        client::request_line(&addr, &request, Some(Duration::from_secs(30)))
                            .map_err(|e| e.to_string())?;
                    if response.contains("\"ok\":true") {
                        Ok(())
                    } else {
                        Err(response)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client panic".into()))
                    .err()
            })
            .collect()
    });
    let daemon_ms = start.elapsed().as_secs_f64() * 1000.0;
    server.shutdown();
    server.wait();
    if let Some(first) = errors.first() {
        return Err(format!(
            "{} daemon requests failed; first: {first}",
            errors.len()
        ));
    }

    let start = Instant::now();
    for _ in 0..requests {
        // a cold world per request: fresh registry, languages
        // re-registered, no store — the cost a one-shot process pays
        let reg = lagoon_core::ModuleRegistry::new();
        lagoon_optimizer::register_typed_languages(&reg);
        reg.add_module("bench5-cold", SERVE_PROGRAM);
        reg.run("bench5-cold", lagoon_core::EngineKind::Vm)
            .map_err(|e| format!("cold run: {e}"))?;
    }
    let cold_ms = start.elapsed().as_secs_f64() * 1000.0;

    Ok(Bench5Serve {
        workers,
        requests,
        daemon_ms,
        cold_ms,
    })
}

/// Serializes the two measurements as the `BENCH_5.json` object
/// (hand-rolled; the workspace takes no serialization dependency).
pub fn bench5_json(builds: &[Bench5Build], serve: &Bench5Serve) -> String {
    use std::fmt::Write;
    let byte_identical = builds
        .windows(2)
        .all(|w| w[0].artifacts_digest == w[1].artifacts_digest);
    // wall-clock scaling only makes sense relative to the cores the host
    // actually grants; a single-core container can prove byte-identity
    // but not speedup
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut out = format!("{{\"host_cpus\":{host_cpus},\"build\":[");
    for (i, b) in builds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"jobs\":{},\"best_ms\":{:.6},\"utilization\":{:.4},\
             \"cache_misses\":{},\"artifacts_digest\":\"{:016x}\"}}",
            b.jobs, b.best_ms, b.utilization, b.cache_misses, b.artifacts_digest,
        );
    }
    let _ = write!(
        out,
        "],\"byte_identical\":{byte_identical},\"modules\":{GRAPH_MODULES},\
         \"serve\":{{\"workers\":{},\"requests\":{},\"daemon_ms\":{:.6},\
         \"cold_ms\":{:.6},\"speedup\":{:.4}}}}}",
        serve.workers,
        serve.requests,
        serve.daemon_ms,
        serve.cold_ms,
        serve.speedup(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_13_modules_and_builds() {
        let (entry, sources) = bench5_graph();
        assert_eq!(sources.len(), GRAPH_MODULES);
        let report = build_from_map(&[entry], sources, &BuildOptions::default());
        assert!(report.success(), "failures: {:?}", report.failures());
        assert_eq!(report.modules.len(), GRAPH_MODULES);
    }

    #[test]
    fn sweep_records_identical_artifacts_across_job_counts() {
        let records = bench5_build_sweep(&[1, 4], 1).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].artifacts_digest, records[1].artifacts_digest,
            "jobs 1 and jobs 4 stores differ"
        );
        assert_eq!(records[0].cache_misses, GRAPH_MODULES as u64);
    }

    #[test]
    fn serve_measurement_round_trips() {
        let serve = bench5_serve(8, 2).unwrap();
        assert_eq!(serve.requests, 8);
        assert!(serve.daemon_ms > 0.0 && serve.cold_ms > 0.0);
        let json = bench5_json(&bench5_build_sweep(&[1], 1).unwrap(), &serve);
        assert!(json.contains("\"byte_identical\":true"));
        assert!(json.contains("\"speedup\""));
    }
}
