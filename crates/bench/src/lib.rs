//! # lagoon-bench
//!
//! The benchmark harness reproducing the paper's evaluation (§7.3,
//! figures 6–9). Every benchmark is written once, in typed style; the
//! untyped original is derived by stripping the `(: …)` declarations —
//! exactly the relationship between the paper's benchmark versions ("the
//! typed versions have type annotations … and are otherwise identical").
//!
//! Four configurations stand in for the paper's per-figure compiler bars
//! (see DESIGN.md's substitution table):
//!
//! | configuration | program | engine |
//! |---------------|---------|--------|
//! | `ast-interp`  | untyped | tree-walking interpreter |
//! | `vm`          | untyped | bytecode VM |
//! | `vm+typed`    | typed, no optimizer | bytecode VM |
//! | `vm+opt`      | typed, optimized | bytecode VM |

#![warn(missing_docs)]

pub mod bench10;
pub mod bench5;
pub mod bench6;
pub mod bench7;
pub mod bench8;
pub mod harness;
pub mod programs;

use lagoon_core::{EngineKind, ModuleRegistry};
use lagoon_runtime::{RtError, Value};
use std::time::{Duration, Instant};

/// Which of the paper's figures a benchmark belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Figure {
    /// Gabriel & Larceny micro-benchmarks.
    Fig6,
    /// Computer Language Benchmarks Game.
    Fig7,
    /// pseudoknot.
    Fig8,
    /// Large applications.
    Fig9,
}

impl Figure {
    /// The paper's caption for this figure.
    pub fn title(&self) -> &'static str {
        match self {
            Figure::Fig6 => "Figure 6: Gabriel and Larceny benchmarks (smaller is better)",
            Figure::Fig7 => "Figure 7: Computer Language Benchmark Game (smaller is better)",
            Figure::Fig8 => "Figure 8: pseudoknot (smaller is better)",
            Figure::Fig9 => "Figure 9: large benchmarks (smaller is better)",
        }
    }
}

/// One benchmark program (typed source; untyped derived).
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Short name, as in the paper's figures.
    pub name: &'static str,
    /// The figure this benchmark reproduces.
    pub figure: Figure,
    /// The typed program body (no `#lang` line).
    pub source: &'static str,
}

/// An execution configuration (one "bar" in a figure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Config {
    /// Untyped program on the tree-walking interpreter.
    AstInterp,
    /// Untyped program on the bytecode VM.
    Vm,
    /// Typed program, typechecked but unoptimized, on the VM.
    VmTyped,
    /// Typed program with the type-driven optimizer, on the VM.
    VmOpt,
}

impl Config {
    /// All configurations, slowest first.
    pub fn all() -> [Config; 4] {
        [
            Config::AstInterp,
            Config::Vm,
            Config::VmTyped,
            Config::VmOpt,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Config::AstInterp => "ast-interp",
            Config::Vm => "vm",
            Config::VmTyped => "vm+typed",
            Config::VmOpt => "vm+opt",
        }
    }

    fn engine(&self) -> EngineKind {
        match self {
            Config::AstInterp => EngineKind::Interp,
            _ => EngineKind::Vm,
        }
    }
}

impl Benchmark {
    /// The typed module source (with `#lang`).
    pub fn typed_source(&self) -> String {
        format!("#lang typed/lagoon\n{}", self.source)
    }

    /// The untyped module source: the typed program with its `(: …)`
    /// declarations stripped.
    pub fn untyped_source(&self) -> String {
        format!("#lang lagoon\n{}", strip_type_declarations(self.source))
    }

    /// The module source for a configuration.
    pub fn source_for(&self, config: Config) -> String {
        match config {
            Config::AstInterp | Config::Vm => self.untyped_source(),
            Config::VmTyped => format!("#lang typed/no-opt\n{}", self.source),
            Config::VmOpt => self.typed_source(),
        }
    }
}

/// Strips top-level `(: name Type)` declarations, turning a typed program
/// back into its untyped original.
pub fn strip_type_declarations(source: &str) -> String {
    let forms = lagoon_syntax::read_all(source, "<strip>").expect("benchmark source parses");
    forms
        .iter()
        .filter(|f| {
            f.as_list()
                .and_then(|items| items.first())
                .and_then(lagoon_syntax::Syntax::sym)
                .map(|s| s != lagoon_syntax::Symbol::intern(":"))
                .unwrap_or(true)
        })
        .map(|f| f.to_datum().to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// All benchmarks, in figure order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut out = programs::gabriel::benchmarks();
    out.extend(programs::clbg::benchmarks());
    out.extend(programs::pseudoknot::benchmarks());
    out.extend(programs::large::benchmarks());
    out
}

/// The benchmarks belonging to one figure.
pub fn benchmarks_for(figure: Figure) -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.figure == figure)
        .collect()
}

fn fresh_registry() -> std::rc::Rc<ModuleRegistry> {
    let reg = ModuleRegistry::new();
    lagoon_optimizer::register_typed_languages(&reg);
    reg
}

/// Compiles a benchmark under a configuration, returning a closure that
/// runs it once per call (compile cost is *not* measured, as in the
/// paper; instances are reset between runs so stateful benchmarks rerun
/// from scratch).
///
/// # Errors
///
/// Returns compile-time errors (read/expand/typecheck).
pub fn prepare(
    bench: &Benchmark,
    config: Config,
) -> Result<impl FnMut() -> Result<Value, RtError>, RtError> {
    let reg = fresh_registry();
    let module = format!("{}--{}", bench.name, config.label());
    reg.add_module(&module, &bench.source_for(config));
    reg.compile(lagoon_syntax::Symbol::intern(&module))?;
    let engine = config.engine();
    Ok(move || {
        reg.reset_instances();
        reg.run(&module, engine)
    })
}

/// Runs a benchmark once under a configuration, returning the produced
/// value and the wall-clock duration (excluding compilation).
///
/// # Errors
///
/// Propagates compile-time and runtime errors.
pub fn run_once(bench: &Benchmark, config: Config) -> Result<(Value, Duration), RtError> {
    let mut runner = prepare(bench, config)?;
    let start = Instant::now();
    let v = runner()?;
    Ok((v, start.elapsed()))
}

/// Measured results for one benchmark across all configurations.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// `(config, seconds)` pairs in [`Config::all`] order.
    pub times: Vec<(Config, f64)>,
}

impl Row {
    /// Speedup of `vm+opt` over plain `vm`, as the paper reports it
    /// (e.g. “a 33% speedup on the fft benchmark”).
    pub fn opt_speedup_percent(&self) -> f64 {
        let t = |c: Config| {
            self.times
                .iter()
                .find(|(cc, _)| *cc == c)
                .map(|(_, t)| *t)
                .unwrap_or(f64::NAN)
        };
        (t(Config::Vm) / t(Config::VmOpt) - 1.0) * 100.0
    }
}

/// Runs every benchmark of a figure `reps` times per configuration
/// (keeping the best time) and verifies all configurations agree on the
/// produced value.
///
/// # Errors
///
/// Propagates compile and runtime errors; errors if configurations
/// disagree on a benchmark's result.
pub fn measure_figure(figure: Figure, reps: usize) -> Result<Vec<Row>, RtError> {
    let mut rows = Vec::new();
    for bench in benchmarks_for(figure) {
        let mut times = Vec::new();
        let mut reference: Option<Value> = None;
        for config in Config::all() {
            let mut runner = prepare(&bench, config)?;
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let start = Instant::now();
                let v = runner()?;
                best = best.min(start.elapsed().as_secs_f64());
                match &reference {
                    None => reference = Some(v),
                    Some(r) => {
                        if !r.equal(&v) {
                            return Err(RtError::user(format!(
                                "{}: {} produced {v}, expected {r}",
                                bench.name,
                                config.label()
                            )));
                        }
                    }
                }
            }
            times.push((config, best));
        }
        rows.push(Row {
            name: bench.name,
            times,
        });
    }
    Ok(rows)
}

/// Formats rows as the figure's table: absolute milliseconds plus times
/// normalized to `vm` = 1.00 (the figures normalize to untyped Racket).
pub fn format_figure(figure: Figure, rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{}", figure.title());
    let _ = write!(out, "{:<14}", "benchmark");
    for c in Config::all() {
        let _ = write!(out, "{:>12}", c.label());
    }
    let _ = writeln!(out, "{:>13}", "opt speedup");
    for row in rows {
        let vm_time = row
            .times
            .iter()
            .find(|(c, _)| *c == Config::Vm)
            .map(|(_, t)| *t)
            .unwrap_or(1.0);
        let _ = write!(out, "{:<14}", row.name);
        for (_, t) in &row.times {
            let _ = write!(out, "{:>12.2}", t / vm_time);
        }
        let _ = writeln!(out, "{:>12.0}%", row.opt_speedup_percent());
    }
    let _ = writeln!(
        out,
        "(columns normalized to vm = 1.00; absolute vm times below)"
    );
    for row in rows {
        let vm_ms = row
            .times
            .iter()
            .find(|(c, _)| *c == Config::Vm)
            .map(|(_, t)| t * 1000.0)
            .unwrap_or(f64::NAN);
        let _ = writeln!(out, "  {:<14} vm = {vm_ms:.1} ms", row.name);
    }
    out
}

/// Where a benchmark's speedup comes from, for one configuration: the
/// optimizer decision counts (compile time) and the executed opcode mix
/// (run time, all zero unless the `vm-counters` feature is on).
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Benchmark name.
    pub name: &'static str,
    /// Configuration label (see [`Config::label`]).
    pub config: &'static str,
    /// Optimizer rewrites applied while compiling the benchmark.
    pub rewrites: u64,
    /// Optimizer near-misses (specializations blocked, with reasons).
    pub near_misses: u64,
    /// Executed generic (tag-dispatching) instructions.
    pub generic_ops: u64,
    /// Executed specialized (unsafe-derived) instructions.
    pub specialized_ops: u64,
    /// Executed peephole superinstructions (fused opcodes).
    pub fused_ops: u64,
    /// All executed instructions.
    pub total_ops: u64,
}

/// Compiles and runs a benchmark once with the diagnostics sink (and,
/// when available, the VM's opcode counters) enabled, and distills the
/// collected events into a [`Metrics`] row.
///
/// This is a *separate* instrumented run — the timed reps in
/// [`measure_figure`] stay diagnostics-off.
///
/// # Errors
///
/// Propagates compile-time and runtime errors.
pub fn collect_metrics(bench: &Benchmark, config: Config) -> Result<Metrics, RtError> {
    let collector = lagoon_diag::Collector::install();
    let result = (|| {
        let mut runner = prepare(bench, config)?;
        #[cfg(feature = "vm-counters")]
        {
            lagoon_vm::counters::reset();
            lagoon_vm::counters::set_active(true);
        }
        let run = runner();
        #[cfg(feature = "vm-counters")]
        lagoon_vm::counters::set_active(false);
        run
    })();
    lagoon_diag::uninstall();
    result?;
    #[cfg_attr(not(feature = "vm-counters"), allow(unused_mut))]
    let mut report = collector.report();
    #[cfg(feature = "vm-counters")]
    report.set_opcodes(
        lagoon_vm::counters::snapshot()
            .into_iter()
            .map(|(op, class, fused, count)| lagoon_diag::OpcodeRow {
                op: op.to_string(),
                class: class.name().to_string(),
                fused,
                count,
            })
            .collect(),
    );
    Ok(Metrics {
        name: bench.name,
        config: config.label(),
        rewrites: report.rewrites.len() as u64,
        near_misses: report.near_misses.len() as u64,
        generic_ops: report.generic_ops(),
        specialized_ops: report.specialized_ops(),
        fused_ops: report.fused_ops(),
        total_ops: report.total_ops(),
    })
}

/// Serializes metrics rows as a JSON array (hand-rolled; the workspace
/// takes no serialization dependency).
pub fn metrics_json(rows: &[Metrics]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[");
    for (i, m) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"config\":{},\"rewrites\":{},\"near_misses\":{},\
             \"generic_ops\":{},\"specialized_ops\":{},\"fused_ops\":{},\"total_ops\":{}}}",
            lagoon_diag::json_string(m.name),
            lagoon_diag::json_string(m.config),
            m.rewrites,
            m.near_misses,
            m.generic_ops,
            m.specialized_ops,
            m.fused_ops,
            m.total_ops,
        );
    }
    out.push(']');
    out
}

/// One record of the peephole A/B sweep behind `BENCH_4.json`: a
/// benchmark under one configuration with the superinstruction pass on
/// or off, with the median wall time over the timed reps and the opcode
/// totals from one separate instrumented run (zeros without the
/// `vm-counters` feature, and for `ast-interp`, which executes no
/// bytecode).
#[derive(Clone, Debug)]
pub struct Bench4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Figure label (`"fig6"`…`"fig9"`).
    pub figure: &'static str,
    /// Configuration label (see [`Config::label`]).
    pub config: &'static str,
    /// Whether the peephole pass was enabled for this record.
    pub peephole: bool,
    /// Median wall-clock time over the reps, in milliseconds.
    pub median_ms: f64,
    /// Executed generic (tag-dispatching) instructions.
    pub generic_ops: u64,
    /// Executed specialized (unsafe-derived) instructions.
    pub specialized_ops: u64,
    /// Executed peephole superinstructions.
    pub fused_ops: u64,
    /// All executed instructions.
    pub total_ops: u64,
}

fn figure_label(figure: Figure) -> &'static str {
    match figure {
        Figure::Fig6 => "fig6",
        Figure::Fig7 => "fig7",
        Figure::Fig8 => "fig8",
        Figure::Fig9 => "fig9",
    }
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = times.len();
    if n == 0 {
        f64::NAN
    } else if n % 2 == 1 {
        times[n / 2]
    } else {
        (times[n / 2 - 1] + times[n / 2]) / 2.0
    }
}

/// Runs the peephole A/B sweep over `figures`: every benchmark under
/// every configuration, peephole on and (for the bytecode configs) off,
/// `reps` timed runs each plus one instrumented run for opcode totals.
/// All records of a benchmark must agree on the produced value — this
/// doubles as the correctness gate CI's `bench-smoke` job runs.
///
/// The thread-local peephole setting is restored to *on* before
/// returning.
///
/// # Errors
///
/// Propagates compile and runtime errors; errors if any configuration
/// (with either peephole setting) disagrees on a benchmark's result.
pub fn bench4_sweep(figures: &[Figure], reps: usize) -> Result<Vec<Bench4Row>, RtError> {
    let result = bench4_sweep_inner(figures, reps);
    lagoon_vm::peephole::set_enabled(true);
    result
}

fn bench4_sweep_inner(figures: &[Figure], reps: usize) -> Result<Vec<Bench4Row>, RtError> {
    let mut rows = Vec::new();
    for figure in figures {
        for bench in benchmarks_for(*figure) {
            let mut reference: Option<Value> = None;
            for config in Config::all() {
                // ast-interp never executes bytecode, so the off record
                // would duplicate the on record exactly
                let settings: &[bool] = match config {
                    Config::AstInterp => &[true],
                    _ => &[true, false],
                };
                for &peephole in settings {
                    lagoon_vm::peephole::set_enabled(peephole);
                    let mut runner = prepare(&bench, config)?;
                    let mut times = Vec::with_capacity(reps);
                    for _ in 0..reps {
                        let start = Instant::now();
                        let v = runner()?;
                        times.push(start.elapsed().as_secs_f64() * 1000.0);
                        match &reference {
                            None => reference = Some(v),
                            Some(r) => {
                                if !r.equal(&v) {
                                    return Err(RtError::user(format!(
                                        "{}: {} (peephole {}) produced {v}, expected {r}",
                                        bench.name,
                                        config.label(),
                                        if peephole { "on" } else { "off" },
                                    )));
                                }
                            }
                        }
                    }
                    #[cfg_attr(not(feature = "vm-counters"), allow(unused_mut))]
                    let mut totals = (0u64, 0u64, 0u64, 0u64);
                    #[cfg(feature = "vm-counters")]
                    {
                        lagoon_vm::counters::reset();
                        lagoon_vm::counters::set_active(true);
                        let counted = runner();
                        lagoon_vm::counters::set_active(false);
                        counted?;
                        for (_, class, fused, count) in lagoon_vm::counters::snapshot() {
                            match class {
                                lagoon_vm::bytecode::OpClass::Generic => totals.0 += count,
                                lagoon_vm::bytecode::OpClass::Specialized => totals.1 += count,
                                lagoon_vm::bytecode::OpClass::Control => {}
                            }
                            if fused {
                                totals.2 += count;
                            }
                            totals.3 += count;
                        }
                    }
                    rows.push(Bench4Row {
                        name: bench.name,
                        figure: figure_label(*figure),
                        config: config.label(),
                        peephole,
                        median_ms: median(&mut times),
                        generic_ops: totals.0,
                        specialized_ops: totals.1,
                        fused_ops: totals.2,
                        total_ops: totals.3,
                    });
                }
            }
        }
    }
    Ok(rows)
}

/// Serializes [`Bench4Row`]s as a JSON array (hand-rolled; the
/// workspace takes no serialization dependency).
pub fn bench4_json(rows: &[Bench4Row]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"figure\":{},\"config\":{},\"peephole\":{},\"median_ms\":{:.6},\
             \"generic_ops\":{},\"specialized_ops\":{},\"fused_ops\":{},\"total_ops\":{}}}",
            lagoon_diag::json_string(r.name),
            lagoon_diag::json_string(r.figure),
            lagoon_diag::json_string(r.config),
            r.peephole,
            r.median_ms,
            r.generic_ops,
            r.specialized_ops,
            r.fused_ops,
            r.total_ops,
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_removes_only_declarations() {
        let src = "(: f : Integer -> Integer)\n(define (f x) (+ x 1))\n(f 1)";
        let stripped = strip_type_declarations(src);
        assert!(!stripped.contains("Integer"));
        assert!(stripped.contains("define"));
        assert_eq!(stripped.lines().count(), 2);
    }

    #[test]
    fn every_benchmark_is_registered() {
        let all = all_benchmarks();
        assert_eq!(benchmarks_for(Figure::Fig6).len(), 8);
        assert_eq!(benchmarks_for(Figure::Fig7).len(), 5);
        assert_eq!(benchmarks_for(Figure::Fig8).len(), 1);
        assert_eq!(benchmarks_for(Figure::Fig9).len(), 3);
        assert_eq!(all.len(), 17);
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17, "duplicate benchmark names");
    }

    #[test]
    fn all_benchmarks_agree_across_configs() {
        // correctness gate: every benchmark produces the same value under
        // every VM configuration (compile + one run each)
        for bench in all_benchmarks() {
            let mut reference: Option<Value> = None;
            for config in [Config::Vm, Config::VmTyped, Config::VmOpt] {
                let (v, _) = run_once(&bench, config)
                    .unwrap_or_else(|e| panic!("{} [{}]: {e}", bench.name, config.label()));
                match &reference {
                    None => reference = Some(v),
                    Some(r) => assert!(
                        r.equal(&v),
                        "{} [{}]: got {v}, expected {r}",
                        bench.name,
                        config.label()
                    ),
                }
            }
        }
    }

    #[test]
    fn interp_agrees_on_a_sample() {
        // the tree-walking interpreter uses Rust stack proportional to
        // non-tail recursion depth; debug-build frames are large, so give
        // the check a roomy stack
        std::thread::Builder::new()
            .stack_size(256 * 1024 * 1024)
            .spawn(|| {
                for name in ["tak", "partialsums", "pseudoknot", "funcds"] {
                    let bench = all_benchmarks()
                        .into_iter()
                        .find(|b| b.name == name)
                        .unwrap();
                    let (vi, _) = run_once(&bench, Config::AstInterp).unwrap();
                    let (vv, _) = run_once(&bench, Config::Vm).unwrap();
                    assert!(vi.equal(&vv), "{name}: interp={vi} vm={vv}");
                }
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn bench4_sweep_covers_both_settings_and_agrees() {
        let rows = bench4_sweep(&[Figure::Fig8], 1).unwrap();
        // ast-interp appears once (peephole-on only); the three bytecode
        // configs appear with the pass both on and off
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|r| r.figure == "fig8"));
        assert_eq!(rows.iter().filter(|r| r.config == "ast-interp").count(), 1);
        assert_eq!(rows.iter().filter(|r| !r.peephole).count(), 3);
        #[cfg(feature = "vm-counters")]
        {
            let on = rows
                .iter()
                .find(|r| r.config == "vm" && r.peephole)
                .unwrap();
            let off = rows
                .iter()
                .find(|r| r.config == "vm" && !r.peephole)
                .unwrap();
            assert!(on.fused_ops > 0, "no fusions executed on pseudoknot");
            assert_eq!(off.fused_ops, 0);
            assert!(on.total_ops < off.total_ops);
        }
        // the sweep restores the thread-local default
        assert!(lagoon_vm::peephole::enabled());
        let json = bench4_json(&rows);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"peephole\":false"));
        assert!(json.contains("\"fused_ops\""));
    }

    #[test]
    fn median_is_order_insensitive() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn metrics_attribute_the_speedup() {
        let bench = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "mbrot")
            .unwrap();
        let typed = collect_metrics(&bench, Config::VmTyped).unwrap();
        let opt = collect_metrics(&bench, Config::VmOpt).unwrap();
        assert_eq!(typed.rewrites, 0);
        assert!(opt.rewrites > 0, "optimizer applied nothing on mbrot");
        #[cfg(feature = "vm-counters")]
        {
            assert!(opt.specialized_ops > 0);
            assert!(opt.generic_ops < typed.generic_ops);
        }
        let json = metrics_json(&[typed, opt]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"specialized_ops\""));
    }
}
