//! Per-opcode execution histogram for a named figure benchmark —
//! the quickest way to see where a config actually spends its
//! dispatches when a benchmark over- or under-performs.
//!
//! Usage: `cargo run --release -p lagoon-bench --bin opmix -- <bench> [vm|vm+opt]`

use lagoon_bench::{benchmarks_for, prepare, Config, Figure};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("fannkuch");
    let config = match args.get(2).map(String::as_str) {
        Some("vm+opt") => Config::VmOpt,
        _ => Config::Vm,
    };
    let bench = [Figure::Fig6, Figure::Fig7, Figure::Fig8]
        .into_iter()
        .flat_map(benchmarks_for)
        .find(|b| b.name == name)
        .expect("unknown benchmark");
    let mut runner = prepare(&bench, config).expect("prepare");
    lagoon_vm::counters::reset();
    lagoon_vm::counters::set_active(true);
    runner().expect("run");
    lagoon_vm::counters::set_active(false);
    let snap = lagoon_vm::counters::snapshot();
    let total: u64 = snap.iter().map(|r| r.3).sum();
    println!("{name} {} total {total}", config.label());
    for (op, class, fused, count) in snap.iter().take(25) {
        println!(
            "{op:<16} {:>12}  {:5.1}%  {}{}",
            count,
            *count as f64 / total as f64 * 100.0,
            class.name(),
            if *fused { " fused" } else { "" }
        );
    }
}
