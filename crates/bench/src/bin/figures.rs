//! Regenerates the paper's figures 6-9 as text tables.
//!
//! Usage: `cargo run --release -p lagoon-bench --bin figures [fig6|fig7|fig8|fig9|all] [reps]`

use lagoon_bench::{format_figure, measure_figure, Figure};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let reps: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let figures: Vec<Figure> = match which {
        "fig6" => vec![Figure::Fig6],
        "fig7" => vec![Figure::Fig7],
        "fig8" => vec![Figure::Fig8],
        "fig9" => vec![Figure::Fig9],
        _ => vec![Figure::Fig6, Figure::Fig7, Figure::Fig8, Figure::Fig9],
    };
    for figure in figures {
        match measure_figure(figure, reps) {
            Ok(rows) => println!("{}\n", format_figure(figure, &rows)),
            Err(e) => {
                eprintln!("error measuring {figure:?}: {e}");
                std::process::exit(1);
            }
        }
    }
}
