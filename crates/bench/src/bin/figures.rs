//! Regenerates the paper's figures 6-9 as text tables, plus a
//! machine-readable metrics JSON attributing each speedup to optimizer
//! decisions and the executed opcode mix.
//!
//! Usage:
//! `cargo run --release -p lagoon-bench --bin figures [fig6|fig7|fig8|fig9|all] [reps]`
//!
//! The `bench4` mode instead runs the peephole A/B sweep — every
//! benchmark of figures 6-8 under all four configurations with the
//! superinstruction pass on and off — and writes the flat records to a
//! JSON file (default `BENCH_4.json`):
//! `cargo run --release -p lagoon-bench --bin figures bench4 [reps] [out.json]`
//!
//! The `bench5` mode measures the parallel-build scheduler and the
//! evaluation daemon — cold-store builds of the 13-module typed graph at
//! `--jobs 1/2/4/8` (with artifact digests proving byte-identity) plus
//! daemon throughput against per-request cold worlds — and writes
//! `BENCH_5.json`:
//! `cargo run --release -p lagoon-bench --bin figures bench5 [reps] [out.json]`
//!
//! The `bench6` mode measures the structured tracer — a tracing on/off
//! A/B over the figure 6–8 suite, plus a daemon soak recording the
//! interner gauge across 500 inline-source requests — and writes
//! `BENCH_6.json`:
//! `cargo run --release -p lagoon-bench --bin figures bench6 [reps] [out.json]`
//!
//! The `bench7` mode measures daemon memory stability and self-healing
//! — a long inline-source soak (interner slope and RSS series), a
//! worker-recycling overhead A/B, and retrying clients under a
//! shedding flood — and writes `BENCH_7.json`:
//! `cargo run --release -p lagoon-bench --bin figures bench7 [requests] [out.json]`
//!
//! The `bench8` mode runs the tagged-value-word A/B — figures 6–8 under
//! `vm` and `vm+opt` on the current representation, joined against the
//! recorded pre-change baseline — plus the `--jobs 1`/`--jobs 8` store
//! digest identity re-check, and writes `BENCH_8.json`:
//! `cargo run --release -p lagoon-bench --bin figures bench8 [reps] [out.json]`
//! With `LAGOON_BENCH8_GATE=1` (CI's bench-smoke), the run exits
//! nonzero if the new representation measures slower than the recorded
//! baseline on either configuration or the store digests diverge.
//!
//! The `bench10` mode measures the HTTP gateway's shard scaling —
//! mixed run/expand/check traffic offered open-loop at a constant rate
//! (calibrated to overload one shard) against 1/2/4 shards, recording
//! p50/p99 latency from scheduled arrival, throughput, shed rate,
//! per-shard utilization, and the shared store's digest at each shard
//! count — and writes `BENCH_10.json`:
//! `cargo run --release -p lagoon-bench --bin figures bench10 [requests] [out.json]`

use lagoon_bench::{
    bench4_json, bench4_sweep, benchmarks_for, collect_metrics, format_figure, measure_figure,
    metrics_json, Config, Figure,
};

fn run_bench4(args: &[String]) {
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let path = args.get(3).map(String::as_str).unwrap_or("BENCH_4.json");
    let rows = match bench4_sweep(&[Figure::Fig6, Figure::Fig7, Figure::Fig8], reps) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("error in bench4 sweep: {e}");
            std::process::exit(1);
        }
    };
    match std::fs::write(path, bench4_json(&rows)) {
        Ok(()) => println!("wrote {path} ({} records, {reps} reps)", rows.len()),
        Err(e) => {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn run_bench5(args: &[String]) {
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let path = args.get(3).map(String::as_str).unwrap_or("BENCH_5.json");
    let builds = match lagoon_bench::bench5::bench5_build_sweep(&[1, 2, 4, 8], reps) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("error in bench5 build sweep: {e}");
            std::process::exit(1);
        }
    };
    for b in &builds {
        println!(
            "build --jobs {}: {:8.2} ms  utilization {:4.2}  store digest {:016x}",
            b.jobs, b.best_ms, b.utilization, b.artifacts_digest
        );
    }
    let serve = match lagoon_bench::bench5::bench5_serve(32, 4) {
        Ok(serve) => serve,
        Err(e) => {
            eprintln!("error in bench5 serve measurement: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serve ({} workers, {} requests): daemon {:.2} ms vs cold {:.2} ms ({:.2}x)",
        serve.workers,
        serve.requests,
        serve.daemon_ms,
        serve.cold_ms,
        serve.speedup()
    );
    match std::fs::write(path, lagoon_bench::bench5::bench5_json(&builds, &serve)) {
        Ok(()) => println!("wrote {path} ({} build records, {reps} reps)", builds.len()),
        Err(e) => {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn run_bench6(args: &[String]) {
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let path = args.get(3).map(String::as_str).unwrap_or("BENCH_6.json");
    let ab =
        match lagoon_bench::bench6::bench6_ab(&[Figure::Fig6, Figure::Fig7, Figure::Fig8], reps) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("error in bench6 tracing A/B: {e}");
                std::process::exit(1);
            }
        };
    for r in &ab {
        println!(
            "{:<14} off {:8.2} ms  on {:8.2} ms  overhead {:5.1}%  ({} spans)",
            r.name,
            r.off_ms,
            r.on_ms,
            r.overhead_percent(),
            r.spans
        );
    }
    let soak = match lagoon_bench::bench6::bench6_soak(500, 50, 2) {
        Ok(soak) => soak,
        Err(e) => {
            eprintln!("error in bench6 daemon soak: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "soak ({} requests): interner {} -> {} symbols ({:.1} per request)",
        soak.requests,
        soak.interner_start,
        soak.interner_end,
        soak.growth_per_request()
    );
    match std::fs::write(path, lagoon_bench::bench6::bench6_json(&ab, &soak)) {
        Ok(()) => println!("wrote {path} ({} A/B records, {reps} reps)", ab.len()),
        Err(e) => {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn run_bench7(args: &[String]) {
    let requests: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(500);
    let path = args.get(3).map(String::as_str).unwrap_or("BENCH_7.json");
    let soak = match lagoon_bench::bench7::bench7_soak(requests, (requests / 20).max(1), 2) {
        Ok(soak) => soak,
        Err(e) => {
            eprintln!("error in bench7 soak: {e}");
            std::process::exit(1);
        }
    };
    let recycle = match lagoon_bench::bench7::bench7_recycle(60) {
        Ok(recycle) => recycle,
        Err(e) => {
            eprintln!("error in bench7 recycle A/B: {e}");
            std::process::exit(1);
        }
    };
    let retry = match lagoon_bench::bench7::bench7_retry(8, 8) {
        Ok(retry) => retry,
        Err(e) => {
            eprintln!("error in bench7 retry flood: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{}",
        lagoon_bench::bench7::bench7_report(&soak, &recycle, &retry)
    );
    match std::fs::write(
        path,
        lagoon_bench::bench7::bench7_json(&soak, &recycle, &retry),
    ) {
        Ok(()) => println!("wrote {path} ({requests}-request soak)"),
        Err(e) => {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn run_bench8(args: &[String]) {
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let path = args.get(3).map(String::as_str).unwrap_or("BENCH_8.json");
    let report =
        match lagoon_bench::bench8::bench8_sweep(&[Figure::Fig6, Figure::Fig7, Figure::Fig8], reps)
        {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error in bench8 A/B sweep: {e}");
                std::process::exit(1);
            }
        };
    let (vm, vm_opt) = (report.median_speedup("vm"), report.median_speedup("vm+opt"));
    println!("bench8: median speedup vm {vm:.2}x, vm+opt {vm_opt:.2}x over the boxed baseline");
    for (jobs, digest) in &report.digests {
        println!("  --jobs {jobs}: store digest {digest:016x}");
    }
    if !report.digests_match() {
        eprintln!("store digests diverge between --jobs 1 and --jobs 8");
        std::process::exit(1);
    }
    match std::fs::write(path, lagoon_bench::bench8::bench8_json(&report)) {
        Ok(()) => println!("wrote {path} ({} records, {reps} reps)", report.rows.len()),
        Err(e) => {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if std::env::var("LAGOON_BENCH8_GATE").as_deref() == Ok("1") && (vm < 1.0 || vm_opt < 1.0) {
        eprintln!("bench8 gate: new representation slower than the recorded baseline");
        std::process::exit(1);
    }
}

fn run_bench10(args: &[String]) {
    let requests: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(240);
    let path = args.get(3).map(String::as_str).unwrap_or("BENCH_10.json");
    let opts = lagoon_bench::bench10::Bench10Options {
        requests,
        ..lagoon_bench::bench10::Bench10Options::default()
    };
    let report = match lagoon_bench::bench10::bench10_sweep(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error in bench10 gateway sweep: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "bench10: {} backend, offered {:.1} req/s, {} workers/shard, queue cap {}",
        report.backend, report.offered_rps, report.workers_per_shard, report.queue_cap
    );
    for r in &report.records {
        println!(
            "  {} shard(s): p50 {:7.2} ms  p99 {:8.2} ms  {:6.1} req/s  shed {:5.1}%  store {:016x}",
            r.shards,
            r.p50_ms,
            r.p99_ms,
            r.rps,
            100.0 * r.shed as f64 / r.requests.max(1) as f64,
            r.store_digest
        );
    }
    if !report.digests_match() {
        eprintln!("store digests diverge between shard counts");
        std::process::exit(1);
    }
    match std::fs::write(path, lagoon_bench::bench10::bench10_json(&report)) {
        Ok(()) => println!(
            "wrote {path} ({} records, {requests} requests each)",
            report.records.len()
        ),
        Err(e) => {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    if which == "bench4" {
        return run_bench4(&args);
    }
    if which == "bench5" {
        return run_bench5(&args);
    }
    if which == "bench6" {
        return run_bench6(&args);
    }
    if which == "bench7" {
        return run_bench7(&args);
    }
    if which == "bench8" {
        return run_bench8(&args);
    }
    if which == "bench10" {
        return run_bench10(&args);
    }
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let figures: Vec<Figure> = match which {
        "fig6" => vec![Figure::Fig6],
        "fig7" => vec![Figure::Fig7],
        "fig8" => vec![Figure::Fig8],
        "fig9" => vec![Figure::Fig9],
        _ => vec![Figure::Fig6, Figure::Fig7, Figure::Fig8, Figure::Fig9],
    };
    let mut metrics = Vec::new();
    for figure in &figures {
        match measure_figure(*figure, reps) {
            Ok(rows) => println!("{}\n", format_figure(*figure, &rows)),
            Err(e) => {
                eprintln!("error measuring {figure:?}: {e}");
                std::process::exit(1);
            }
        }
        // a separate instrumented run per benchmark; the timed reps
        // above stay diagnostics-off
        for bench in benchmarks_for(*figure) {
            for config in [Config::Vm, Config::VmTyped, Config::VmOpt] {
                match collect_metrics(&bench, config) {
                    Ok(m) => metrics.push(m),
                    Err(e) => {
                        eprintln!("error collecting metrics for {}: {e}", bench.name);
                        std::process::exit(1);
                    }
                }
            }
        }
    }
    let path = "figures-metrics.json";
    match std::fs::write(path, metrics_json(&metrics)) {
        Ok(()) => println!("wrote {path} ({} rows)", metrics.len()),
        Err(e) => {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
    }
}
