//! Regenerates the paper's figures 6-9 as text tables, plus a
//! machine-readable metrics JSON attributing each speedup to optimizer
//! decisions and the executed opcode mix.
//!
//! Usage: `cargo run --release -p lagoon-bench --bin figures [fig6|fig7|fig8|fig9|all] [reps]`

use lagoon_bench::{
    benchmarks_for, collect_metrics, format_figure, measure_figure, metrics_json, Config, Figure,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let figures: Vec<Figure> = match which {
        "fig6" => vec![Figure::Fig6],
        "fig7" => vec![Figure::Fig7],
        "fig8" => vec![Figure::Fig8],
        "fig9" => vec![Figure::Fig9],
        _ => vec![Figure::Fig6, Figure::Fig7, Figure::Fig8, Figure::Fig9],
    };
    let mut metrics = Vec::new();
    for figure in &figures {
        match measure_figure(*figure, reps) {
            Ok(rows) => println!("{}\n", format_figure(*figure, &rows)),
            Err(e) => {
                eprintln!("error measuring {figure:?}: {e}");
                std::process::exit(1);
            }
        }
        // a separate instrumented run per benchmark; the timed reps
        // above stay diagnostics-off
        for bench in benchmarks_for(*figure) {
            for config in [Config::Vm, Config::VmTyped, Config::VmOpt] {
                match collect_metrics(&bench, config) {
                    Ok(m) => metrics.push(m),
                    Err(e) => {
                        eprintln!("error collecting metrics for {}: {e}", bench.name);
                        std::process::exit(1);
                    }
                }
            }
        }
    }
    let path = "figures-metrics.json";
    match std::fs::write(path, metrics_json(&metrics)) {
        Ok(()) => println!("wrote {path} ({} rows)", metrics.len()),
        Err(e) => {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
    }
}
