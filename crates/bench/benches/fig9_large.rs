//! Bench regenerating figure 9 (large); see `lagoon_bench::harness`.

use lagoon_bench::harness::Group;
use lagoon_bench::{benchmarks_for, prepare, Config, Figure};
use std::time::Duration;

fn main() {
    let mut group = Group::new("fig9_large");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for bench in benchmarks_for(Figure::Fig9) {
        for config in [Config::Vm, Config::VmTyped, Config::VmOpt] {
            let mut runner = prepare(&bench, config).expect("benchmark compiles");
            group.bench_function(format!("{}/{}", bench.name, config.label()), |b| {
                b.iter(|| runner().expect("benchmark runs"));
            });
        }
    }
    group.finish();
}
