//! Ablation bench: attributes the optimizer's speedup to its rewrite
//! families (floats / complexes / fixnum comparisons / pair accesses) by
//! running float- and structure-heavy benchmarks under languages that
//! enable exactly one family.

use lagoon_bench::harness::Group;
use lagoon_bench::{all_benchmarks, Config};
use lagoon_core::ModuleRegistry;
use std::time::Duration;

fn main() {
    let mut group = Group::new("ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let langs = [
        "typed/no-opt",
        "typed/only-floats",
        "typed/only-complexes",
        "typed/only-fixnums",
        "typed/only-pairs",
        "typed/lagoon",
    ];
    for bench_name in ["mbrot", "pseudoknot", "nqueens"] {
        let bench = all_benchmarks()
            .into_iter()
            .find(|b| b.name == bench_name)
            .expect("benchmark exists");
        for lang in langs {
            let reg = ModuleRegistry::new();
            lagoon_optimizer::register_typed_languages(&reg);
            lagoon_optimizer::register_ablation_languages(&reg);
            let module = format!("{}--{}", bench.name, lang.replace('/', "-"));
            reg.add_module(&module, &format!("#lang {lang}\n{}", bench.source));
            reg.compile(lagoon_syntax::Symbol::intern(&module))
                .expect("benchmark compiles");
            group.bench_function(format!("{}/{}", bench.name, lang), |b| {
                b.iter(|| {
                    reg.reset_instances();
                    reg.run(&module, lagoon_core::EngineKind::Vm).expect("runs")
                });
            });
        }
    }
    let _ = Config::all(); // keep the shared API exercised
    group.finish();
}
