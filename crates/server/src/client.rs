//! A minimal client for the evaluation daemon: one JSON line out, one
//! JSON line back, with optional retry-and-jittered-backoff for
//! transient failures. Backs the `lagoon remote` subcommand and the
//! integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::{self, obj, Json};

/// Retry-with-backoff settings for [`request_line_retry`].
///
/// A request is retried when the connection fails outright (refused,
/// reset mid-read — e.g. the daemon is restarting) or when the daemon
/// sheds it with a retryable `resource-exhausted` rejection
/// (`queue-full`, `workers-degraded`, `workers-unavailable`). Errors
/// produced by the *program* — including its own budget exhaustion —
/// are never retried.
///
/// Delays follow truncated binary exponential backoff with full
/// jitter: attempt `k` sleeps a uniform-ish random duration in
/// `[base/2, min(base · 2^k, max)]`, drawn from a seeded splitmix64
/// stream (the workspace builds offline; no rand crate).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// First-retry backoff target.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Jitter seed; vary per client to avoid thundering herds.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(25),
            max: Duration::from_millis(800),
            seed: 0x5EED,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (1-based).
    pub fn delay(&self, attempt: u32, rng: &mut u64) -> Duration {
        let ceil = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max)
            .max(self.base);
        let floor = self.base / 2;
        let span = ceil.saturating_sub(floor).as_millis().max(1) as u64;
        floor + Duration::from_millis(splitmix64(rng) % span)
    }
}

/// Whether a response line is a daemon shedding rejection worth
/// retrying (see [`RetryPolicy`]). Malformed lines are not retryable —
/// they indicate a protocol bug, not a transient condition.
pub fn is_retryable_response(line: &str) -> bool {
    let Ok(parsed) = json::parse(line) else {
        return false;
    };
    let Some(err) = parsed.get("error") else {
        return false;
    };
    err.get("kind").and_then(Json::as_str) == Some("resource-exhausted")
        && err.get("retryable").and_then(Json::as_bool) == Some(true)
}

/// The server's `retry_after_ms` hint on a shedding rejection, if any.
/// Retrying clients prefer this over their own backoff schedule: the
/// daemon knows whether it shed for a draining queue (tens of ms) or a
/// dead worker pool (hundreds).
pub fn retry_after_hint(line: &str) -> Option<Duration> {
    let parsed = json::parse(line).ok()?;
    let ms = parsed.get("error")?.get("retry_after_ms")?.as_u64()?;
    Some(Duration::from_millis(ms))
}

/// The delay before the next retry: the server's hint (plus up to 50%
/// jitter, so a shed burst does not return in lockstep) when the
/// response carries one, the policy's own jittered backoff otherwise.
fn retry_delay(
    policy: &RetryPolicy,
    attempt: u32,
    rng: &mut u64,
    hint: Option<Duration>,
) -> Duration {
    match hint {
        Some(hint) => {
            let jitter_ms = (hint.as_millis() / 2).max(1) as u64;
            (hint + Duration::from_millis(splitmix64(rng) % jitter_ms)).min(policy.max)
        }
        None => policy.delay(attempt, rng),
    }
}

/// [`request_line`] with retry-and-jittered-backoff: I/O failures and
/// retryable daemon rejections are retried up to `policy.attempts`
/// total attempts. Returns the last response (or the last I/O error if
/// every attempt failed to connect), plus the number of retries taken.
///
/// # Errors
///
/// Propagates the final connection or I/O failure once attempts are
/// exhausted.
pub fn request_line_retry(
    addr: &str,
    line: &str,
    timeout: Option<Duration>,
    policy: &RetryPolicy,
) -> std::io::Result<(String, u32)> {
    let mut rng = policy.seed;
    let attempts = policy.attempts.max(1);
    let mut retries = 0;
    loop {
        let outcome = request_line(addr, line, timeout);
        let (retry, hint) = match &outcome {
            Ok(response) => (is_retryable_response(response), retry_after_hint(response)),
            Err(_) => (true, None),
        };
        if !retry || retries + 1 >= attempts {
            return outcome.map(|r| (r, retries));
        }
        retries += 1;
        std::thread::sleep(retry_delay(policy, retries, &mut rng, hint));
    }
}

/// Sends one newline-delimited request line and reads one response
/// line. `timeout` bounds both the connect and the read.
///
/// # Errors
///
/// Propagates connection and I/O failures.
pub fn request_line(addr: &str, line: &str, timeout: Option<Duration>) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    // small request/response lines; Nagle + delayed ACK would add
    // ~40ms per hop otherwise
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}

/// A persistent connection that can pipeline several requests.
pub struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str, timeout: Option<Duration>) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and reads the response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        self.reader.read_line(&mut response)?;
        Ok(response.trim_end().to_string())
    }
}

/// The outcome of [`repeat_request`]: per-request responses plus the
/// connection-level counters that show the reuse actually happened.
#[derive(Debug, Default)]
pub struct RepeatOutcome {
    /// Responses with `"ok": true`.
    pub ok: u64,
    /// Responses that were errors (after retries were exhausted).
    pub errors: u64,
    /// Shed-retries taken across all requests.
    pub retries: u64,
    /// Fresh connections dialed after the first (0 = one connection
    /// served every request).
    pub reconnects: u64,
    /// Wall-clock for the whole batch.
    pub wall: Duration,
    /// The final response line of each request, in order.
    pub responses: Vec<String>,
}

/// Sends `line` `repeat` times over **one** persistent [`Connection`],
/// reconnecting only when the transport fails (daemon restart, reset),
/// and honoring retryable sheds — with the server's `retry_after_ms`
/// hint when present — per `policy`. Backs `lagoon remote --repeat`.
///
/// # Errors
///
/// Returns the final I/O error only if a connection can never be
/// (re-)established within the policy's attempts; shed responses and
/// program errors are recorded in the outcome, not raised.
pub fn repeat_request(
    addr: &str,
    line: &str,
    repeat: u64,
    timeout: Option<Duration>,
    policy: &RetryPolicy,
) -> std::io::Result<RepeatOutcome> {
    let started = std::time::Instant::now();
    let mut rng = policy.seed;
    let attempts = policy.attempts.max(1);
    let mut outcome = RepeatOutcome::default();
    let mut conn: Option<Connection> = None;
    for _ in 0..repeat.max(1) {
        let mut tries = 0u32;
        let response = loop {
            if conn.is_none() {
                match Connection::connect(addr, timeout) {
                    Ok(c) => {
                        if outcome.responses.is_empty() && tries == 0 {
                            // first dial, not a reconnect
                        } else {
                            outcome.reconnects += 1;
                        }
                        conn = Some(c);
                    }
                    Err(e) => {
                        tries += 1;
                        if tries >= attempts {
                            return Err(e);
                        }
                        outcome.retries += 1;
                        std::thread::sleep(policy.delay(tries, &mut rng));
                        continue;
                    }
                }
            }
            let result = conn
                .as_mut()
                .map(|c| c.roundtrip(line))
                .unwrap_or_else(|| Err(std::io::Error::other("no connection")));
            match result {
                // An empty line is EOF: the daemon closed on us.
                Ok(response) if !response.is_empty() => {
                    if is_retryable_response(&response) {
                        tries += 1;
                        if tries >= attempts {
                            break response;
                        }
                        let hint = retry_after_hint(&response);
                        outcome.retries += 1;
                        std::thread::sleep(retry_delay(policy, tries, &mut rng, hint));
                        continue;
                    }
                    break response;
                }
                Ok(_) | Err(_) => {
                    conn = None;
                    tries += 1;
                    if tries >= attempts {
                        return Err(std::io::Error::other(
                            "connection lost and retries exhausted",
                        ));
                    }
                    outcome.retries += 1;
                    std::thread::sleep(policy.delay(tries, &mut rng));
                }
            }
        };
        let ok = json::parse(&response)
            .ok()
            .and_then(|r| r.get("ok").and_then(Json::as_bool))
            == Some(true);
        if ok {
            outcome.ok += 1;
        } else {
            outcome.errors += 1;
        }
        outcome.responses.push(response);
    }
    outcome.wall = started.elapsed();
    Ok(outcome)
}

/// Builds a request object for `op` against an inline source text.
pub fn inline_request(op: &str, source: &str, limits: Vec<(&str, u64)>) -> String {
    let mut fields = vec![
        ("op", Json::Str(op.to_string())),
        ("source", Json::Str(source.to_string())),
    ];
    let limit_obj = obj(limits
        .into_iter()
        .map(|(k, v)| (k, Json::Num(v as f64)))
        .collect());
    if limit_obj != obj(vec![]) {
        fields.push(("limits", limit_obj));
    }
    obj(fields).to_string()
}

/// Builds a request object for `op` against a named module.
pub fn module_request(op: &str, module: &str) -> String {
    obj(vec![
        ("op", Json::Str(op.to_string())),
        ("module", Json::Str(module.to_string())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHED: &str = r#"{"ok":false,"error":{"kind":"resource-exhausted","message":"m",
        "reason":"queue-full","retryable":true,"retry_after_ms":25}}"#;

    #[test]
    fn retry_hint_is_read_from_shed_responses() {
        assert_eq!(retry_after_hint(SHED), Some(Duration::from_millis(25)));
        assert_eq!(retry_after_hint(r#"{"ok":true}"#), None);
        assert_eq!(retry_after_hint("not json"), None);
    }

    #[test]
    fn hinted_delay_stays_near_the_hint_and_below_the_ceiling() {
        let policy = RetryPolicy::default();
        let mut rng = 7;
        for _ in 0..32 {
            let d = retry_delay(&policy, 1, &mut rng, Some(Duration::from_millis(100)));
            assert!(d >= Duration::from_millis(100) && d <= Duration::from_millis(150));
        }
        // A hint above the ceiling is clamped to it.
        let d = retry_delay(&policy, 1, &mut rng, Some(Duration::from_secs(10)));
        assert!(d <= policy.max);
    }
}
