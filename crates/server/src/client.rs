//! A minimal client for the evaluation daemon: one JSON line out, one
//! JSON line back. Backs the `lagoon remote` subcommand and the
//! integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::{obj, Json};

/// Sends one newline-delimited request line and reads one response
/// line. `timeout` bounds both the connect and the read.
///
/// # Errors
///
/// Propagates connection and I/O failures.
pub fn request_line(addr: &str, line: &str, timeout: Option<Duration>) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}

/// A persistent connection that can pipeline several requests.
pub struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str, timeout: Option<Duration>) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and reads the response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        self.reader.read_line(&mut response)?;
        Ok(response.trim_end().to_string())
    }
}

/// Builds a request object for `op` against an inline source text.
pub fn inline_request(op: &str, source: &str, limits: Vec<(&str, u64)>) -> String {
    let mut fields = vec![
        ("op", Json::Str(op.to_string())),
        ("source", Json::Str(source.to_string())),
    ];
    let limit_obj = obj(limits
        .into_iter()
        .map(|(k, v)| (k, Json::Num(v as f64)))
        .collect());
    if limit_obj != obj(vec![]) {
        fields.push(("limits", limit_obj));
    }
    obj(fields).to_string()
}

/// Builds a request object for `op` against a named module.
pub fn module_request(op: &str, module: &str) -> String {
    obj(vec![
        ("op", Json::Str(op.to_string())),
        ("module", Json::Str(module.to_string())),
    ])
    .to_string()
}
