//! A minimal client for the evaluation daemon: one JSON line out, one
//! JSON line back, with optional retry-and-jittered-backoff for
//! transient failures. Backs the `lagoon remote` subcommand and the
//! integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::{self, obj, Json};

/// Retry-with-backoff settings for [`request_line_retry`].
///
/// A request is retried when the connection fails outright (refused,
/// reset mid-read — e.g. the daemon is restarting) or when the daemon
/// sheds it with a retryable `resource-exhausted` rejection
/// (`queue-full`, `workers-degraded`, `workers-unavailable`). Errors
/// produced by the *program* — including its own budget exhaustion —
/// are never retried.
///
/// Delays follow truncated binary exponential backoff with full
/// jitter: attempt `k` sleeps a uniform-ish random duration in
/// `[base/2, min(base · 2^k, max)]`, drawn from a seeded splitmix64
/// stream (the workspace builds offline; no rand crate).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// First-retry backoff target.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Jitter seed; vary per client to avoid thundering herds.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(25),
            max: Duration::from_millis(800),
            seed: 0x5EED,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (1-based).
    pub fn delay(&self, attempt: u32, rng: &mut u64) -> Duration {
        let ceil = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max)
            .max(self.base);
        let floor = self.base / 2;
        let span = ceil.saturating_sub(floor).as_millis().max(1) as u64;
        floor + Duration::from_millis(splitmix64(rng) % span)
    }
}

/// Whether a response line is a daemon shedding rejection worth
/// retrying (see [`RetryPolicy`]). Malformed lines are not retryable —
/// they indicate a protocol bug, not a transient condition.
pub fn is_retryable_response(line: &str) -> bool {
    let Ok(parsed) = json::parse(line) else {
        return false;
    };
    let Some(err) = parsed.get("error") else {
        return false;
    };
    err.get("kind").and_then(Json::as_str) == Some("resource-exhausted")
        && err.get("retryable").and_then(Json::as_bool) == Some(true)
}

/// [`request_line`] with retry-and-jittered-backoff: I/O failures and
/// retryable daemon rejections are retried up to `policy.attempts`
/// total attempts. Returns the last response (or the last I/O error if
/// every attempt failed to connect), plus the number of retries taken.
///
/// # Errors
///
/// Propagates the final connection or I/O failure once attempts are
/// exhausted.
pub fn request_line_retry(
    addr: &str,
    line: &str,
    timeout: Option<Duration>,
    policy: &RetryPolicy,
) -> std::io::Result<(String, u32)> {
    let mut rng = policy.seed;
    let attempts = policy.attempts.max(1);
    let mut retries = 0;
    loop {
        let outcome = request_line(addr, line, timeout);
        let retry = match &outcome {
            Ok(response) => is_retryable_response(response),
            Err(_) => true,
        };
        if !retry || retries + 1 >= attempts {
            return outcome.map(|r| (r, retries));
        }
        retries += 1;
        std::thread::sleep(policy.delay(retries, &mut rng));
    }
}

/// Sends one newline-delimited request line and reads one response
/// line. `timeout` bounds both the connect and the read.
///
/// # Errors
///
/// Propagates connection and I/O failures.
pub fn request_line(addr: &str, line: &str, timeout: Option<Duration>) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}

/// A persistent connection that can pipeline several requests.
pub struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str, timeout: Option<Duration>) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and reads the response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        self.reader.read_line(&mut response)?;
        Ok(response.trim_end().to_string())
    }
}

/// Builds a request object for `op` against an inline source text.
pub fn inline_request(op: &str, source: &str, limits: Vec<(&str, u64)>) -> String {
    let mut fields = vec![
        ("op", Json::Str(op.to_string())),
        ("source", Json::Str(source.to_string())),
    ];
    let limit_obj = obj(limits
        .into_iter()
        .map(|(k, v)| (k, Json::Num(v as f64)))
        .collect());
    if limit_obj != obj(vec![]) {
        fields.push(("limits", limit_obj));
    }
    obj(fields).to_string()
}

/// Builds a request object for `op` against a named module.
pub fn module_request(op: &str, module: &str) -> String {
    obj(vec![
        ("op", Json::Str(op.to_string())),
        ("module", Json::Str(module.to_string())),
    ])
    .to_string()
}
