//! The evaluation daemon.
//!
//! [`Server::start`] binds a TCP listener and serves newline-delimited
//! JSON requests (`{"op":"run"|"expand"|"check"|"stats"|"shutdown", …}`)
//! across a pool of worker threads. Each worker owns a private Lagoon
//! world — registry, languages, compiled-store handle — so requests
//! never share live values; compiled modules are shared only through
//! the serialized `.lagc` store. The request queue is bounded: when it
//! fills, new requests are rejected immediately with a structured
//! `resource-exhausted` error instead of queuing without bound.
//!
//! Each request runs under its own [`Limits`] (merged over the server's
//! defaults) with the diagnostics collector installed, behind the same
//! panic barrier as the embedding API. `{"op":"shutdown"}` — or, on
//! unix, `SIGTERM` — drains the queue and stops the workers gracefully.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lagoon_core::{EngineKind, ModuleRegistry};
use lagoon_diag::{Collector, Histogram, Limits};
use lagoon_runtime::{Kind, RtError};
use lagoon_syntax::Symbol;

use crate::json::{self, obj, Json};

/// Options for [`Server::start`].
#[derive(Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks one).
    pub addr: String,
    /// Worker thread count (clamped to at least 1).
    pub workers: usize,
    /// Bounded request-queue capacity; beyond it requests are rejected.
    pub queue_cap: usize,
    /// Shared `.lagc` store directory for the workers.
    pub cache_dir: Option<PathBuf>,
    /// Directory of `<name>.lag` files resolving named modules.
    pub source_root: Option<PathBuf>,
    /// Default per-request limits (a request may tighten them).
    pub limits: Limits,
    /// Whether workers run the VM peephole pass.
    pub peephole: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            cache_dir: None,
            source_root: None,
            limits: Limits::default(),
            peephole: lagoon_vm::peephole::enabled(),
        }
    }
}

struct Job {
    request: Json,
    reply: mpsc::Sender<String>,
}

struct QueueState {
    jobs: std::collections::VecDeque<Job>,
}

/// Bounded history lengths for the time-series gauges: old samples age
/// out rather than growing without bound in a long-lived daemon.
const DEPTH_SERIES_CAP: usize = 512;
const WORKER_SPANS_CAP: usize = 256;

/// One completed request as a worker-occupancy span (for the `stats`
/// op's `worker_spans` gauge).
struct WorkerSpan {
    worker: usize,
    op: String,
    trace_id: String,
    start_ms: f64,
    dur_ms: f64,
}

/// Aggregated server statistics, updated by workers and the acceptor.
#[derive(Default)]
struct StatsInner {
    enqueued: u64,
    rejected: u64,
    max_depth: u64,
    done: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
    per_op: BTreeMap<String, Histogram>,
    worker_busy: Vec<Duration>,
    /// Highest interner symbol count sampled at a request completion.
    interner_high_water: u64,
    /// Queue depth over time: `(ms since start, depth)`, sampled at
    /// every enqueue and completion, last [`DEPTH_SERIES_CAP`] points.
    depth_series: std::collections::VecDeque<(u64, u64)>,
    /// Recent completed requests as worker busy spans.
    worker_spans: std::collections::VecDeque<WorkerSpan>,
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    shutdown: AtomicBool,
    stats: Mutex<StatsInner>,
    opts: ServeOptions,
    started: Instant,
    /// Interner symbol count when the server started, the baseline for
    /// the `stats` op's memory-growth gauge.
    interner_start: usize,
}

impl Shared {
    /// Enqueues a job; `Err` when the queue is full or draining.
    fn enqueue(&self, job: Job) -> Result<(), &'static str> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        // Check shutdown under the queue lock — the same lock under
        // which workers observe (empty queue + shutdown) and exit — so
        // a job can never be enqueued after the last worker has left.
        if self.shutdown.load(Ordering::SeqCst) {
            return Err("server is shutting down");
        }
        if q.jobs.len() >= self.opts.queue_cap {
            let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.rejected += 1;
            return Err("request queue full");
        }
        q.jobs.push_back(job);
        let depth = q.jobs.len();
        drop(q);
        let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.enqueued += 1;
        stats.max_depth = stats.max_depth.max(depth as u64);
        stats.record_depth(self.started.elapsed().as_millis() as u64, depth as u64);
        drop(stats);
        self.cv.notify_one();
        Ok(())
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn stats_json(&self) -> Json {
        let depth = self
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len();
        let s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let hit_share = if s.cache_hits + s.cache_misses > 0 {
            s.cache_hits as f64 / (s.cache_hits + s.cache_misses) as f64
        } else {
            0.0
        };
        let wall = self.started.elapsed().as_secs_f64();
        let mut busy_ms = Vec::new();
        let mut busy_total = 0.0;
        for b in &s.worker_busy {
            busy_ms.push(Json::Num(b.as_secs_f64() * 1e3));
            busy_total += b.as_secs_f64();
        }
        // Divide by the spawned pool size, not worker_busy.len():
        // workers that have not served a request yet are still idle
        // capacity and must count toward the denominator.
        let pool = self.opts.workers.max(1);
        let utilization = if wall > 0.0 {
            busy_total / (wall * pool as f64)
        } else {
            0.0
        };
        let mut ops = BTreeMap::new();
        for (op, h) in &s.per_op {
            // Histogram::to_json emits a JSON object; round-trip it
            // through the parser to embed it structurally.
            let parsed = json::parse(&h.to_json()).unwrap_or(Json::Null);
            ops.insert(op.clone(), parsed);
        }
        let depth_series: Vec<Json> = s
            .depth_series
            .iter()
            .map(|(ms, d)| Json::Arr(vec![Json::Num(*ms as f64), Json::Num(*d as f64)]))
            .collect();
        let worker_spans: Vec<Json> = s
            .worker_spans
            .iter()
            .map(|w| {
                obj(vec![
                    ("worker", Json::Num(w.worker as f64)),
                    ("op", Json::Str(w.op.clone())),
                    ("trace_id", Json::Str(w.trace_id.clone())),
                    ("start_ms", Json::Num(w.start_ms)),
                    ("ms", Json::Num(w.dur_ms)),
                ])
            })
            .collect();
        let interned = lagoon_syntax::interned_count() as u64;
        let (store_bytes, store_artifacts) = store_gauges(self.opts.cache_dir.as_ref());
        obj(vec![
            ("uptime_ms", Json::Num(wall * 1e3)),
            ("workers", Json::Num(self.opts.workers as f64)),
            (
                "queue",
                obj(vec![
                    ("depth", Json::Num(depth as f64)),
                    ("max_depth", Json::Num(s.max_depth as f64)),
                    ("capacity", Json::Num(self.opts.queue_cap as f64)),
                    ("enqueued", Json::Num(s.enqueued as f64)),
                    ("rejected", Json::Num(s.rejected as f64)),
                    ("depth_series", Json::Arr(depth_series)),
                ]),
            ),
            (
                // The interner is append-only (ROADMAP: documented
                // growth under inline-source load), so the live symbol
                // count doubles as a memory gauge; `growth` is the
                // symbols added since this server started.
                "interner",
                obj(vec![
                    ("symbols", Json::Num(interned as f64)),
                    ("at_start", Json::Num(self.interner_start as f64)),
                    (
                        "growth",
                        Json::Num(interned.saturating_sub(self.interner_start as u64) as f64),
                    ),
                    (
                        "high_water",
                        Json::Num(s.interner_high_water.max(interned) as f64),
                    ),
                ]),
            ),
            (
                "store",
                obj(vec![
                    ("bytes", Json::Num(store_bytes as f64)),
                    ("artifacts", Json::Num(store_artifacts as f64)),
                ]),
            ),
            (
                "requests",
                obj(vec![
                    ("done", Json::Num(s.done as f64)),
                    ("errors", Json::Num(s.errors as f64)),
                ]),
            ),
            (
                "cache",
                obj(vec![
                    ("hits", Json::Num(s.cache_hits as f64)),
                    ("misses", Json::Num(s.cache_misses as f64)),
                    ("hit_share", Json::Num(hit_share)),
                ]),
            ),
            ("utilization", Json::Num(utilization)),
            ("worker_busy_ms", Json::Arr(busy_ms)),
            ("worker_spans", Json::Arr(worker_spans)),
            ("ops", Json::Obj(ops)),
        ])
    }
}

/// Total size and count of `.lagc` artifacts in the store directory
/// (zeroes when there is no store or it cannot be read).
fn store_gauges(dir: Option<&PathBuf>) -> (u64, u64) {
    let Some(dir) = dir else { return (0, 0) };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, 0);
    };
    let (mut bytes, mut artifacts) = (0u64, 0u64);
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("lagc") {
            continue;
        }
        if let Ok(meta) = entry.metadata() {
            bytes += meta.len();
            artifacts += 1;
        }
    }
    (bytes, artifacts)
}

impl StatsInner {
    fn record_op(&mut self, op: &str, latency: Duration, worker: usize, err: bool) {
        self.done += 1;
        if err {
            self.errors += 1;
        }
        self.per_op
            .entry(op.to_string())
            .or_default()
            .record(latency);
        if self.worker_busy.len() <= worker {
            self.worker_busy.resize(worker + 1, Duration::ZERO);
        }
        self.worker_busy[worker] += latency;
    }

    fn record_depth(&mut self, at_ms: u64, depth: u64) {
        if self.depth_series.len() == DEPTH_SERIES_CAP {
            self.depth_series.pop_front();
        }
        self.depth_series.push_back((at_ms, depth));
    }

    fn record_span(&mut self, span: WorkerSpan) {
        if self.worker_spans.len() == WORKER_SPANS_CAP {
            self.worker_spans.pop_front();
        }
        self.worker_spans.push_back(span);
    }
}

/// A running daemon; dropping it does **not** stop it — call
/// [`Server::shutdown`] and [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor and worker pool.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = opts.workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: std::collections::VecDeque::new(),
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(StatsInner::default()),
            opts,
            started: Instant::now(),
            interner_start: lagoon_syntax::interned_count(),
        });

        let mut worker_handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(std::thread::spawn(move || worker_main(index, &shared)));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_main(listener, &shared))
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: stop accepting, finish queued work.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the acceptor and all workers have drained and
    /// exited (call [`Server::shutdown`] first, or rely on a client's
    /// `{"op":"shutdown"}` / SIGTERM).
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// The server's current statistics as a JSON object.
    pub fn stats_json(&self) -> String {
        self.shared.stats_json().to_string()
    }

    /// Like [`Server::wait`], then returns the final statistics.
    pub fn wait_with_stats(mut self) -> String {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.stats_json().to_string()
    }
}

// ---------------------------------------------------------------------------
// SIGTERM (unix): flag checked by the acceptor loop.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sig {
    use std::os::raw::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: c_int) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    /// Installs the handler for SIGTERM (15). std already links libc,
    /// so no new dependency is involved.
    pub fn install() {
        unsafe {
            signal(15, on_term);
        }
    }

    pub fn triggered() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

/// Installs the SIGTERM → graceful-drain hook (no-op off unix).
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    sig::install();
}

fn sigterm_triggered() -> bool {
    #[cfg(unix)]
    {
        sig::triggered()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Acceptor and connections
// ---------------------------------------------------------------------------

fn acceptor_main(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if sigterm_triggered() {
            shared.begin_shutdown();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || connection_main(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn error_json(kind: &str, message: &str) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str(kind.to_string())),
                ("message", Json::Str(message.to_string())),
            ]),
        ),
    ])
}

fn connection_main(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(peer) = stream.try_clone() else { return };
    let mut writer = peer;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = match json::parse(&line) {
            Err(e) => error_json("protocol", &format!("bad request: {e}")).to_string(),
            Ok(request) => match request.get("op").and_then(Json::as_str) {
                Some("shutdown") => {
                    shared.begin_shutdown();
                    obj(vec![
                        ("ok", Json::Bool(true)),
                        ("draining", Json::Bool(true)),
                    ])
                    .to_string()
                }
                Some("stats") => {
                    let mut o = shared.stats_json();
                    if let Json::Obj(map) = &mut o {
                        map.insert("ok".to_string(), Json::Bool(true));
                    }
                    o.to_string()
                }
                Some("run" | "expand" | "check") => {
                    let (tx, rx) = mpsc::channel();
                    match shared.enqueue(Job { request, reply: tx }) {
                        Err(why) => error_json("resource-exhausted", why).to_string(),
                        Ok(()) => rx.recv().unwrap_or_else(|_| {
                            error_json("internal", "worker dropped the request").to_string()
                        }),
                    }
                }
                Some(other) => error_json("protocol", &format!("unknown op '{other}'")).to_string(),
                None => error_json("protocol", "missing \"op\"").to_string(),
            },
        };
        if writer.write_all(response.as_bytes()).is_err() {
            return;
        }
        if writer.write_all(b"\n").is_err() || writer.flush().is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn kind_slug(kind: &Kind) -> &'static str {
    match kind {
        Kind::Type => "type",
        Kind::Arity => "arity",
        Kind::Unbound => "unbound",
        Kind::Overflow => "overflow",
        Kind::DivideByZero => "divide-by-zero",
        Kind::Range => "range",
        Kind::Contract { .. } => "contract",
        Kind::User => "user",
        Kind::ResourceExhausted { .. } => "resource-exhausted",
        Kind::Internal => "internal",
    }
}

fn rt_error_json(e: &RtError) -> Json {
    let mut fields = vec![
        ("kind", Json::Str(kind_slug(&e.kind).to_string())),
        ("message", Json::Str(e.message.clone())),
    ];
    match &e.kind {
        Kind::ResourceExhausted { budget } => {
            fields.push(("budget", Json::Str((*budget).to_string())));
        }
        Kind::Contract { blame } => {
            fields.push(("blame", Json::Str(blame.as_str())));
        }
        _ => {}
    }
    obj(vec![("ok", Json::Bool(false)), ("error", obj(fields))])
}

/// Merges a request's `"limits"` object over the server defaults.
///
/// Requests can only *tighten* the operator-configured budgets: each
/// field is clamped to the server default, so an untrusted client
/// cannot lift resource caps on the daemon.
pub fn merge_limits(base: Limits, spec: Option<&Json>) -> Limits {
    let mut limits = base;
    let Some(spec) = spec else { return limits };
    if let Some(n) = spec.get("max_expansion_steps").and_then(Json::as_u64) {
        limits.max_expansion_steps = base.max_expansion_steps.min(n);
    }
    if let Some(n) = spec.get("max_expansion_depth").and_then(Json::as_u64) {
        limits.max_expansion_depth = base.max_expansion_depth.min(n);
    }
    if let Some(n) = spec.get("max_phase1_steps").and_then(Json::as_u64) {
        limits.max_phase1_steps = base.max_phase1_steps.min(n);
    }
    if let Some(n) = spec.get("max_vm_steps").and_then(Json::as_u64) {
        limits.max_vm_steps = base.max_vm_steps.min(n);
    }
    if let Some(n) = spec.get("max_stack_depth").and_then(Json::as_u64) {
        limits.max_stack_depth = base.max_stack_depth.min(n);
    }
    if let Some(ms) = spec.get("timeout_ms").and_then(Json::as_u64) {
        let requested = Duration::from_millis(ms);
        limits.timeout = Some(match base.timeout {
            Some(default) => default.min(requested),
            None => requested,
        });
    }
    limits
}

/// One worker's world and request loop. The registry persists across
/// requests — compiled modules stay warm — but instances are reset per
/// request and inline sources get unique un-cacheable names, so no
/// run-time state crosses requests.
fn worker_main(index: usize, shared: &Arc<Shared>) {
    lagoon_vm::peephole::set_enabled(shared.opts.peephole);
    let registry = ModuleRegistry::new();
    lagoon_optimizer::register_typed_languages(&registry);
    registry.set_store_dir(shared.opts.cache_dir.clone());
    if let Some(root) = shared.opts.source_root.clone() {
        registry.set_loader(move |name: Symbol| {
            name.with_str(|s| {
                if s.contains('/') || s.contains('\\') || s.contains("..") {
                    return None;
                }
                std::fs::read_to_string(root.join(format!("{s}.lag"))).ok()
            })
        });
    }
    static REQ_ID: AtomicU64 = AtomicU64::new(0);
    static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(q, Duration::from_millis(200))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let Some(job) = job else { return };

        let start = Instant::now();
        let start_ms = start.duration_since(shared.started).as_secs_f64() * 1e3;
        let op = job
            .request
            .get("op")
            .and_then(Json::as_str)
            .unwrap_or("run")
            .to_string();
        let trace_id = request_trace_id(&job.request, &TRACE_SEQ);
        let response = handle_request(&registry, &job.request, &op, shared, &REQ_ID);
        let latency = start.elapsed();
        let is_err = response.get("ok").and_then(Json::as_bool) != Some(true);
        let depth = {
            let q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.jobs.len() as u64
        };
        {
            let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.record_op(&op, latency, index, is_err);
            stats.record_depth(shared.started.elapsed().as_millis() as u64, depth);
            stats.record_span(WorkerSpan {
                worker: index,
                op: op.clone(),
                trace_id: trace_id.clone(),
                start_ms,
                dur_ms: latency.as_secs_f64() * 1e3,
            });
            stats.interner_high_water = stats
                .interner_high_water
                .max(lagoon_syntax::interned_count() as u64);
        }
        let mut response = response;
        if let Json::Obj(map) = &mut response {
            map.insert("micros".to_string(), Json::Num(latency.as_micros() as f64));
            map.insert("trace_id".to_string(), Json::Str(trace_id));
        }
        let _ = job.reply.send(response.to_string());
    }
}

/// The request's correlation id: a client-supplied `"trace_id"` string
/// (bounded, so a hostile client cannot bloat the span history) or a
/// generated `lag-N`. Echoed on the response and recorded on the
/// request's worker span, so clients can line up their own telemetry
/// with the daemon's.
fn request_trace_id(request: &Json, seq: &AtomicU64) -> String {
    match request.get("trace_id").and_then(Json::as_str) {
        Some(id) if !id.is_empty() => id.chars().take(64).collect(),
        _ => format!("lag-{}", seq.fetch_add(1, Ordering::Relaxed)),
    }
}

fn handle_request(
    registry: &std::rc::Rc<ModuleRegistry>,
    request: &Json,
    op: &str,
    shared: &Arc<Shared>,
    req_id: &AtomicU64,
) -> Json {
    // Resolve the target module: inline source gets a unique name that
    // `cacheable_name` rejects (it contains '/'), so request bodies
    // never enter the shared store and never collide across requests.
    //
    // Known growth: each inline request interns its `req/{id}` symbol
    // (plus gensyms minted during compilation) into the process-global
    // interner, which never frees entries — `remove_module` below clears
    // the registry maps but not the interner. A long-lived daemon under
    // sustained inline-source load therefore grows slowly; deployments
    // that care should prefer named modules or recycle the process
    // periodically until the interner grows a per-request arena.
    let inline = request.get("source").and_then(Json::as_str);
    let named = request.get("module").and_then(Json::as_str);
    let name = match (inline, named) {
        (Some(src), _) => {
            let id = req_id.fetch_add(1, Ordering::Relaxed);
            let name = format!("req/{id}");
            registry.add_module(&name, src);
            name
        }
        (None, Some(m)) => {
            if m.contains("..") || m.contains('\\') {
                return error_json("protocol", "invalid module name");
            }
            m.to_string()
        }
        (None, None) => return error_json("protocol", "need \"module\" or \"source\""),
    };
    let engine = match request.get("engine").and_then(Json::as_str) {
        Some("interp") => EngineKind::Interp,
        _ => EngineKind::Vm,
    };
    let limits = merge_limits(shared.opts.limits, request.get("limits"));
    let want_diag = request.get("diag").and_then(Json::as_bool) == Some(true);

    lagoon_diag::limits::install(limits);
    let collector = Collector::install();
    // Fresh instances per request: compiled code stays warm, run-time
    // module state does not leak between requests.
    registry.reset_instances();
    let result: Result<Json, RtError> = {
        lagoon_diag::limits::refill();
        let guarded = catch_unwind(AssertUnwindSafe(|| match op {
            "run" => {
                let (result, output) =
                    lagoon_runtime::io::capture_output(|| registry.run(&name, engine));
                result.map(|value| {
                    obj(vec![
                        ("ok", Json::Bool(true)),
                        ("value", Json::Str(value.to_string())),
                        ("output", Json::Str(output)),
                    ])
                })
            }
            "expand" => registry.expanded_body(&name).map(|forms| {
                let rendered: Vec<Json> = forms
                    .iter()
                    .map(|f| Json::Str(f.to_datum().to_string()))
                    .collect();
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("forms", Json::Arr(rendered)),
                ])
            }),
            "check" => registry
                .compile(Symbol::intern(&name))
                .map(|_| obj(vec![("ok", Json::Bool(true))])),
            _ => Err(RtError::new(Kind::Internal, "unreachable op".to_string())),
        }));
        match guarded {
            Ok(r) => r,
            Err(_) => Err(RtError::new(
                Kind::Internal,
                "internal error: request panicked".to_string(),
            )),
        }
    };
    lagoon_diag::uninstall();
    // Restore the server-default limits for whatever runs next.
    lagoon_diag::limits::install(shared.opts.limits);
    if inline.is_some() {
        registry.remove_module(&name);
    }

    let report = collector.report();
    {
        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.cache_hits += report.cache_hits() as u64;
        stats.cache_misses += report.cache_misses() as u64;
    }

    let mut response = match result {
        Ok(v) => v,
        Err(e) => rt_error_json(&e),
    };
    if let Json::Obj(map) = &mut response {
        // Per-phase span summary (pipeline buckets, ms). Present on
        // errors too: a failed request still shows how far it got.
        let mut phases = BTreeMap::new();
        for (name, nanos) in report.timing_buckets() {
            phases.insert(name.to_string(), Json::Num(nanos as f64 / 1e6));
        }
        map.insert("phases".to_string(), Json::Obj(phases));
        if want_diag {
            let parsed = json::parse(&report.to_json()).unwrap_or(Json::Null);
            map.insert("report".to_string(), parsed);
        }
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_limits_only_tightens() {
        let base = Limits {
            max_expansion_steps: 1_000,
            max_expansion_depth: 50,
            max_phase1_steps: 10_000,
            max_vm_steps: 100_000,
            max_stack_depth: 256,
            timeout: Some(Duration::from_millis(500)),
        };
        // Tightening requests take effect.
        let spec = json::parse(r#"{"max_vm_steps":10,"timeout_ms":100}"#).unwrap();
        let merged = merge_limits(base, Some(&spec));
        assert_eq!(merged.max_vm_steps, 10);
        assert_eq!(merged.timeout, Some(Duration::from_millis(100)));
        // Attempts to exceed the server defaults are clamped to them.
        let spec = json::parse(
            r#"{"max_expansion_steps":18446744073709551615,"max_expansion_depth":9999,
                "max_phase1_steps":18446744073709551615,"max_vm_steps":18446744073709551615,
                "max_stack_depth":9999,"timeout_ms":3600000}"#,
        )
        .unwrap();
        let merged = merge_limits(base, Some(&spec));
        assert_eq!(merged, base);
        // With no default timeout, a request may introduce one (that
        // only tightens from "unlimited").
        let open = Limits {
            timeout: None,
            ..base
        };
        let spec = json::parse(r#"{"timeout_ms":100}"#).unwrap();
        assert_eq!(
            merge_limits(open, Some(&spec)).timeout,
            Some(Duration::from_millis(100))
        );
    }
}
