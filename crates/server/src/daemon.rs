//! The evaluation daemon.
//!
//! [`Server::start`] binds a TCP listener and serves newline-delimited
//! JSON requests (`{"op":"run"|"expand"|"check"|"stats"|"shutdown", …}`)
//! across a pool of worker threads. Each worker owns a private Lagoon
//! world — registry, languages, compiled-store handle — so requests
//! never share live values; compiled modules are shared only through
//! the serialized `.lagc` store. The request queue is bounded: when it
//! fills, new requests are rejected immediately with a structured
//! `resource-exhausted` error instead of queuing without bound.
//!
//! Each request runs under its own [`Limits`] (merged over the server's
//! defaults) with the diagnostics collector installed, behind the same
//! panic barrier as the embedding API. `{"op":"shutdown"}` — or, on
//! unix, `SIGTERM` — drains the queue and stops the workers gracefully.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lagoon_core::{EngineKind, ModuleRegistry};
use lagoon_diag::{Collector, Histogram, Limits};
use lagoon_runtime::{Kind, RtError};
use lagoon_syntax::Symbol;

use crate::json::{self, obj, Json};

/// Options for [`Server::start`].
#[derive(Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks one).
    pub addr: String,
    /// Worker thread count (clamped to at least 1).
    pub workers: usize,
    /// Bounded request-queue capacity; beyond it requests are rejected.
    pub queue_cap: usize,
    /// Shared `.lagc` store directory for the workers.
    pub cache_dir: Option<PathBuf>,
    /// Directory of `<name>.lag` files resolving named modules.
    pub source_root: Option<PathBuf>,
    /// Default per-request limits (a request may tighten them).
    pub limits: Limits,
    /// Whether workers run the VM peephole pass.
    pub peephole: bool,
    /// Rebuild a worker's world (registry + symbol epoch) after this
    /// many requests; `0` disables. Defense-in-depth against residual
    /// per-world growth (e.g. a stream of distinct named modules).
    pub recycle_after: usize,
    /// Enables the `test-panic`/`test-kill` ops that deliberately crash
    /// a worker — for the self-healing tests and CI probes only.
    pub test_ops: bool,
    /// Longest accepted request line in bytes (clamped to at least
    /// 1024). A longer NDJSON line is answered with a structured
    /// `resource-exhausted` / `request-too-large` error instead of
    /// being buffered without bound; the gateway enforces the same cap
    /// as its HTTP `Content-Length` limit.
    pub max_request_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            cache_dir: None,
            source_root: None,
            limits: Limits::default(),
            peephole: lagoon_vm::peephole::enabled(),
            recycle_after: 0,
            test_ops: false,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
        }
    }
}

/// Default cap on a single NDJSON request line (1 MiB).
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 1 << 20;

struct Job {
    request: Json,
    reply: mpsc::Sender<String>,
}

struct QueueState {
    jobs: std::collections::VecDeque<Job>,
}

/// Bounded history lengths for the time-series gauges: old samples age
/// out rather than growing without bound in a long-lived daemon.
const DEPTH_SERIES_CAP: usize = 512;
const WORKER_SPANS_CAP: usize = 256;

/// Most jobs a worker claims in one wake; keeps a single worker from
/// hoarding a burst while its peers idle.
const WAKE_BATCH_CAP: usize = 8;

/// One completed request as a worker-occupancy span (for the `stats`
/// op's `worker_spans` gauge).
struct WorkerSpan {
    worker: usize,
    op: String,
    trace_id: String,
    start_ms: f64,
    dur_ms: f64,
}

/// Aggregated server statistics, updated by workers and the acceptor.
#[derive(Default)]
struct StatsInner {
    enqueued: u64,
    rejected: u64,
    max_depth: u64,
    done: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
    per_op: BTreeMap<String, Histogram>,
    worker_busy: Vec<Duration>,
    /// Highest total symbol count (arena + all worker epochs) sampled
    /// at a request completion.
    interner_high_water: u64,
    /// Per-worker epoch gauge: `(base, current)` live epoch-symbol
    /// counts — `base` right after the world bootstrap, `current` after
    /// the latest request's reclamation. `current == base` means the
    /// worker is leak-free.
    worker_epoch: Vec<(u64, u64)>,
    /// Workers whose threads died (escaped panic) and were respawned.
    worker_deaths: u64,
    respawns: u64,
    /// Worlds rebuilt by `--recycle-after`.
    recycles: u64,
    /// Requests that panicked but were contained by a panic barrier.
    panics: u64,
    /// Queue depth over time: `(ms since start, depth)`, sampled at
    /// every enqueue and completion, last [`DEPTH_SERIES_CAP`] points.
    depth_series: std::collections::VecDeque<(u64, u64)>,
    /// Recent completed requests as worker busy spans.
    worker_spans: std::collections::VecDeque<WorkerSpan>,
    /// Worker wakeups that claimed at least one job, and the jobs they
    /// claimed: `batched_jobs / batch_wakes` is the mean batch size.
    batch_wakes: u64,
    batched_jobs: u64,
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    shutdown: AtomicBool,
    stats: Mutex<StatsInner>,
    opts: ServeOptions,
    started: Instant,
    /// Arena symbol count at the post-warmup seal, the shared-world
    /// part of the `stats` op's memory-growth baseline.
    arena_at_seal: usize,
    /// Workers currently inside their serve loop (drops on death or
    /// drain); the supervisor respawns the difference.
    live_workers: std::sync::atomic::AtomicUsize,
    /// Worker threads by pool slot; the supervisor replaces finished
    /// handles, [`Server::wait`] joins whatever is left.
    pool: Mutex<Vec<Option<JoinHandle<()>>>>,
}

impl Shared {
    /// Enqueues a job; `Err((reason, message))` when the queue is full
    /// or draining. The reason distinguishes ordinary backpressure
    /// ("queue-full") from a degraded pool ("workers-degraded" /
    /// "workers-unavailable") so operators and retrying clients can
    /// tell overload apart from workers dying.
    fn enqueue(&self, job: Job) -> Result<(), (&'static str, String)> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        // Check shutdown under the queue lock — the same lock under
        // which workers observe (empty queue + shutdown) and exit — so
        // a job can never be enqueued after the last worker has left.
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(("shutting-down", "server is shutting down".to_string()));
        }
        if q.jobs.len() >= self.opts.queue_cap {
            let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.rejected += 1;
            let live = self.live_workers.load(Ordering::SeqCst);
            let pool = self.opts.workers.max(1);
            let (reason, message) = if live == 0 {
                (
                    "workers-unavailable",
                    format!("request queue full and no live workers (respawning {pool})"),
                )
            } else if live < pool {
                (
                    "workers-degraded",
                    format!("request queue full with {live}/{pool} workers live"),
                )
            } else {
                ("queue-full", "request queue full".to_string())
            };
            return Err((reason, message));
        }
        q.jobs.push_back(job);
        let depth = q.jobs.len();
        drop(q);
        let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.enqueued += 1;
        stats.max_depth = stats.max_depth.max(depth as u64);
        stats.record_depth(self.started.elapsed().as_millis() as u64, depth as u64);
        drop(stats);
        self.cv.notify_one();
        Ok(())
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn stats_json(&self) -> Json {
        let depth = self
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len();
        let s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let hit_share = if s.cache_hits + s.cache_misses > 0 {
            s.cache_hits as f64 / (s.cache_hits + s.cache_misses) as f64
        } else {
            0.0
        };
        let wall = self.started.elapsed().as_secs_f64();
        let mut busy_ms = Vec::new();
        let mut busy_total = 0.0;
        for b in &s.worker_busy {
            busy_ms.push(Json::Num(b.as_secs_f64() * 1e3));
            busy_total += b.as_secs_f64();
        }
        // Divide by the spawned pool size, not worker_busy.len():
        // workers that have not served a request yet are still idle
        // capacity and must count toward the denominator.
        let pool = self.opts.workers.max(1);
        let utilization = if wall > 0.0 {
            busy_total / (wall * pool as f64)
        } else {
            0.0
        };
        let mut ops = BTreeMap::new();
        for (op, h) in &s.per_op {
            // Histogram::to_json emits a JSON object; round-trip it
            // through the parser to embed it structurally.
            let parsed = json::parse(&h.to_json()).unwrap_or(Json::Null);
            ops.insert(op.clone(), parsed);
        }
        let depth_series: Vec<Json> = s
            .depth_series
            .iter()
            .map(|(ms, d)| Json::Arr(vec![Json::Num(*ms as f64), Json::Num(*d as f64)]))
            .collect();
        let worker_spans: Vec<Json> = s
            .worker_spans
            .iter()
            .map(|w| {
                obj(vec![
                    ("worker", Json::Num(w.worker as f64)),
                    ("op", Json::Str(w.op.clone())),
                    ("trace_id", Json::Str(w.trace_id.clone())),
                    ("start_ms", Json::Num(w.start_ms)),
                    ("ms", Json::Num(w.dur_ms)),
                ])
            })
            .collect();
        // Per-world symbol gauges: the shared arena (frozen at the
        // seal) plus each worker's live epoch table, sampled at request
        // completions (after reclamation). `growth` over the baseline
        // (arena at seal + per-worker bootstrap bases) is the leak
        // gauge — zero for a leak-free daemon, whatever the load.
        let arena = lagoon_syntax::arena_len() as u64;
        let epoch_total: u64 = s.worker_epoch.iter().map(|(_, len)| *len).sum();
        let base_total: u64 = s.worker_epoch.iter().map(|(base, _)| *base).sum();
        let interned = arena + epoch_total;
        let baseline = self.arena_at_seal as u64 + base_total;
        let worker_epochs: Vec<Json> = s
            .worker_epoch
            .iter()
            .map(|(_, len)| Json::Num(*len as f64))
            .collect();
        let live = self.live_workers.load(Ordering::SeqCst);
        let (store_bytes, store_artifacts) = store_gauges(self.opts.cache_dir.as_ref());
        obj(vec![
            ("uptime_ms", Json::Num(wall * 1e3)),
            ("workers", Json::Num(self.opts.workers as f64)),
            (
                "supervision",
                obj(vec![
                    ("live", Json::Num(live as f64)),
                    ("deaths", Json::Num(s.worker_deaths as f64)),
                    ("respawns", Json::Num(s.respawns as f64)),
                    ("recycles", Json::Num(s.recycles as f64)),
                    ("panics", Json::Num(s.panics as f64)),
                    ("recycle_after", Json::Num(self.opts.recycle_after as f64)),
                ]),
            ),
            (
                "queue",
                obj(vec![
                    ("depth", Json::Num(depth as f64)),
                    ("max_depth", Json::Num(s.max_depth as f64)),
                    ("capacity", Json::Num(self.opts.queue_cap as f64)),
                    ("enqueued", Json::Num(s.enqueued as f64)),
                    ("rejected", Json::Num(s.rejected as f64)),
                    ("batch_wakes", Json::Num(s.batch_wakes as f64)),
                    ("batched_jobs", Json::Num(s.batched_jobs as f64)),
                    ("depth_series", Json::Arr(depth_series)),
                ]),
            ),
            (
                // Per-world symbol tables (arena + worker epochs):
                // `growth` is the symbols retained beyond the sealed
                // arena and the workers' bootstrap worlds — held at 0
                // by per-request epoch truncation (the old process-
                // global interner grew ~3.2 symbols/request, BENCH_6).
                "interner",
                obj(vec![
                    ("symbols", Json::Num(interned as f64)),
                    ("arena", Json::Num(arena as f64)),
                    ("worker_epochs", Json::Arr(worker_epochs)),
                    ("at_start", Json::Num(baseline as f64)),
                    (
                        "growth",
                        Json::Num(interned.saturating_sub(baseline) as f64),
                    ),
                    (
                        "high_water",
                        Json::Num(s.interner_high_water.max(interned) as f64),
                    ),
                ]),
            ),
            (
                "store",
                obj(vec![
                    ("bytes", Json::Num(store_bytes as f64)),
                    ("artifacts", Json::Num(store_artifacts as f64)),
                ]),
            ),
            (
                "requests",
                obj(vec![
                    ("done", Json::Num(s.done as f64)),
                    ("errors", Json::Num(s.errors as f64)),
                ]),
            ),
            (
                "cache",
                obj(vec![
                    ("hits", Json::Num(s.cache_hits as f64)),
                    ("misses", Json::Num(s.cache_misses as f64)),
                    ("hit_share", Json::Num(hit_share)),
                ]),
            ),
            ("utilization", Json::Num(utilization)),
            ("worker_busy_ms", Json::Arr(busy_ms)),
            ("worker_spans", Json::Arr(worker_spans)),
            ("ops", Json::Obj(ops)),
        ])
    }
}

/// Total size and count of `.lagc` artifacts in the store directory
/// (zeroes when there is no store or it cannot be read).
fn store_gauges(dir: Option<&PathBuf>) -> (u64, u64) {
    let Some(dir) = dir else { return (0, 0) };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, 0);
    };
    let (mut bytes, mut artifacts) = (0u64, 0u64);
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("lagc") {
            continue;
        }
        if let Ok(meta) = entry.metadata() {
            bytes += meta.len();
            artifacts += 1;
        }
    }
    (bytes, artifacts)
}

impl StatsInner {
    fn record_op(&mut self, op: &str, latency: Duration, worker: usize, err: bool) {
        self.done += 1;
        if err {
            self.errors += 1;
        }
        self.per_op
            .entry(op.to_string())
            .or_default()
            .record(latency);
        if self.worker_busy.len() <= worker {
            self.worker_busy.resize(worker + 1, Duration::ZERO);
        }
        self.worker_busy[worker] += latency;
    }

    fn record_depth(&mut self, at_ms: u64, depth: u64) {
        if self.depth_series.len() == DEPTH_SERIES_CAP {
            self.depth_series.pop_front();
        }
        self.depth_series.push_back((at_ms, depth));
    }

    fn record_span(&mut self, span: WorkerSpan) {
        if self.worker_spans.len() == WORKER_SPANS_CAP {
            self.worker_spans.pop_front();
        }
        self.worker_spans.push_back(span);
    }
}

/// A running daemon; dropping it does **not** stop it — call
/// [`Server::shutdown`] and [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, warms and seals the shared symbol arena, and
    /// spawns the acceptor, the worker pool, and the supervisor.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = opts.workers.max(1);
        // Warm the shared arena with the prelude/core world, then seal
        // it: a throwaway registry bootstrap interns every prelude,
        // core-form, primitive, and typed-language name into the arena
        // (lock-free, `&'static` reads forever after). Post-seal, each
        // worker's bootstrap re-interns those names as arena hits and
        // keeps only its own gensyms in its thread-local epoch table —
        // which per-request truncation can actually free. Idempotent
        // across multiple servers in one process.
        {
            let warm = ModuleRegistry::new();
            lagoon_optimizer::register_typed_languages(&warm);
        }
        lagoon_syntax::seal_arena();
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: std::collections::VecDeque::new(),
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(StatsInner::default()),
            opts,
            started: Instant::now(),
            arena_at_seal: lagoon_syntax::arena_len(),
            live_workers: std::sync::atomic::AtomicUsize::new(0),
            pool: Mutex::new(Vec::new()),
        });

        {
            let mut pool = shared.pool.lock().unwrap_or_else(|e| e.into_inner());
            for index in 0..workers {
                let shared = Arc::clone(&shared);
                pool.push(Some(std::thread::spawn(move || {
                    worker_main(index, &shared)
                })));
            }
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_main(listener, &shared))
        };
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_main(&shared))
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: stop accepting, finish queued work.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the acceptor, supervisor, and all workers have
    /// drained and exited (call [`Server::shutdown`] first, or rely on
    /// a client's `{"op":"shutdown"}` / SIGTERM).
    pub fn wait(mut self) {
        self.join_all();
    }

    /// The server's current statistics as a JSON object.
    pub fn stats_json(&self) -> String {
        self.shared.stats_json().to_string()
    }

    /// Like [`Server::wait`], then returns the final statistics.
    pub fn wait_with_stats(mut self) -> String {
        self.join_all();
        self.shared.stats_json().to_string()
    }

    fn join_all(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The supervisor exits only after shutdown, and never respawns
        // once the flag is up — so the pool it leaves behind is final.
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut pool = self.shared.pool.lock().unwrap_or_else(|e| e.into_inner());
            pool.drain(..).flatten().collect()
        };
        for w in handles {
            let _ = w.join();
        }
    }
}

/// Detects dead workers (threads that exited without a shutdown — an
/// escaped panic) and respawns them in the same pool slot, so a
/// panicking request can degrade but never wedge the daemon. Queued
/// requests are untouched by a death: they stay in the shared queue
/// until a surviving or respawned worker pops them.
fn supervisor_main(shared: &Arc<Shared>) {
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        {
            let mut pool = shared.pool.lock().unwrap_or_else(|e| e.into_inner());
            for (index, slot) in pool.iter_mut().enumerate() {
                let finished = slot.as_ref().is_some_and(JoinHandle::is_finished);
                if !finished {
                    continue;
                }
                if let Some(handle) = slot.take() {
                    let died = handle.join().is_err();
                    if !died || draining {
                        continue;
                    }
                    {
                        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                        stats.worker_deaths += 1;
                        stats.respawns += 1;
                    }
                    let shared = Arc::clone(shared);
                    *slot = Some(std::thread::spawn(move || worker_main(index, &shared)));
                }
            }
        }
        if draining {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

// ---------------------------------------------------------------------------
// SIGTERM (unix): flag checked by the acceptor loop.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sig {
    use std::os::raw::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: c_int) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    /// Installs the handler for SIGTERM (15). std already links libc,
    /// so no new dependency is involved.
    pub fn install() {
        unsafe {
            signal(15, on_term);
        }
    }

    pub fn triggered() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

/// Installs the SIGTERM → graceful-drain hook (no-op off unix).
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    sig::install();
}

/// Whether SIGTERM has been delivered since
/// [`install_sigterm_handler`] ran (always false off unix). The
/// gateway's acceptor polls this the same way the daemon's does.
pub fn sigterm_triggered() -> bool {
    #[cfg(unix)]
    {
        sig::triggered()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Acceptor and connections
// ---------------------------------------------------------------------------

fn acceptor_main(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if sigterm_triggered() {
            shared.begin_shutdown();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || connection_main(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn error_json(kind: &str, message: &str) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            obj(vec![
                ("kind", Json::Str(kind.to_string())),
                ("message", Json::Str(message.to_string())),
            ]),
        ),
    ])
}

/// An admission rejection: `resource-exhausted` with a shedding
/// `reason` ("queue-full" | "workers-degraded" | "workers-unavailable"
/// | "shutting-down" | "request-too-large") and a `retryable` flag.
/// Clients with a retry policy back off and retry exactly these — a
/// program that exhausted its *own* budget carries a `budget` field
/// instead and is never retried. Retryable sheds also carry a
/// `retry_after_ms` hint sized to how long the condition usually
/// lasts: a full queue drains in tens of milliseconds, a degraded pool
/// needs a respawn, an empty pool needs several.
fn reject_json(reason: &str, message: &str) -> Json {
    let retryable = matches!(
        reason,
        "queue-full" | "workers-degraded" | "workers-unavailable"
    );
    let retry_after_ms = match reason {
        "queue-full" => Some(25.0),
        "workers-degraded" => Some(50.0),
        "workers-unavailable" => Some(100.0),
        _ => None,
    };
    let mut fields = vec![
        ("kind", Json::Str("resource-exhausted".to_string())),
        ("message", Json::Str(message.to_string())),
        ("reason", Json::Str(reason.to_string())),
        ("retryable", Json::Bool(retryable)),
    ];
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms", Json::Num(ms)));
    }
    obj(vec![("ok", Json::Bool(false)), ("error", obj(fields))])
}

/// One bounded-read outcome: a complete line, an over-cap line (fully
/// drained off the stream, so the connection stays framed), or EOF.
enum BoundedLine {
    Line(String),
    TooLong,
    Eof,
}

/// Reads one `\n`-terminated line, buffering at most `cap` bytes. An
/// over-long line is consumed to its newline with bounded memory — the
/// connection can keep serving after the structured rejection.
fn read_bounded_line(reader: &mut impl BufRead, cap: usize) -> std::io::Result<BoundedLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut over = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if over {
                BoundedLine::TooLong
            } else if buf.is_empty() {
                BoundedLine::Eof
            } else {
                BoundedLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|b| *b == b'\n') {
            if !over {
                buf.extend_from_slice(&chunk[..pos]);
            }
            reader.consume(pos + 1);
            return Ok(if over || buf.len() > cap {
                BoundedLine::TooLong
            } else {
                BoundedLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let n = chunk.len();
        if !over {
            if buf.len() + n > cap {
                over = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        reader.consume(n);
    }
}

fn connection_main(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(peer) = stream.try_clone() else { return };
    let mut writer = peer;
    let mut reader = BufReader::new(stream);
    let cap = shared.opts.max_request_bytes.max(1024);
    loop {
        let line = match read_bounded_line(&mut reader, cap) {
            Err(_) | Ok(BoundedLine::Eof) => return,
            Ok(BoundedLine::TooLong) => {
                let response = reject_json(
                    "request-too-large",
                    &format!("request line exceeds {cap} bytes"),
                )
                .to_string();
                if writer.write_all(response.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
                continue;
            }
            Ok(BoundedLine::Line(line)) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match json::parse(&line) {
            Err(e) => error_json("protocol", &format!("bad request: {e}")).to_string(),
            Ok(request) => match request.get("op").and_then(Json::as_str) {
                Some("shutdown") => {
                    shared.begin_shutdown();
                    obj(vec![
                        ("ok", Json::Bool(true)),
                        ("draining", Json::Bool(true)),
                    ])
                    .to_string()
                }
                Some("stats") => {
                    let mut o = shared.stats_json();
                    if let Json::Obj(map) = &mut o {
                        map.insert("ok".to_string(), Json::Bool(true));
                    }
                    o.to_string()
                }
                Some(op)
                    if matches!(op, "run" | "expand" | "check")
                        || (shared.opts.test_ops && matches!(op, "test-panic" | "test-kill")) =>
                {
                    let (tx, rx) = mpsc::channel();
                    match shared.enqueue(Job { request, reply: tx }) {
                        Err((reason, why)) => reject_json(reason, &why).to_string(),
                        // A worker that dies mid-request drops the
                        // reply sender; the client still gets a
                        // structured error, never a hung connection.
                        Ok(()) => rx.recv().unwrap_or_else(|_| {
                            error_json("internal", "worker dropped the request").to_string()
                        }),
                    }
                }
                Some(other) => error_json("protocol", &format!("unknown op '{other}'")).to_string(),
                None => error_json("protocol", "missing \"op\"").to_string(),
            },
        };
        if writer.write_all(response.as_bytes()).is_err() {
            return;
        }
        if writer.write_all(b"\n").is_err() || writer.flush().is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn kind_slug(kind: &Kind) -> &'static str {
    match kind {
        Kind::Type => "type",
        Kind::Arity => "arity",
        Kind::Unbound => "unbound",
        Kind::Overflow => "overflow",
        Kind::DivideByZero => "divide-by-zero",
        Kind::Range => "range",
        Kind::Contract { .. } => "contract",
        Kind::User => "user",
        Kind::ResourceExhausted { .. } => "resource-exhausted",
        Kind::Internal => "internal",
    }
}

fn rt_error_json(e: &RtError) -> Json {
    let mut fields = vec![
        ("kind", Json::Str(kind_slug(&e.kind).to_string())),
        ("message", Json::Str(e.message.clone())),
    ];
    match &e.kind {
        Kind::ResourceExhausted { budget } => {
            fields.push(("budget", Json::Str((*budget).to_string())));
        }
        Kind::Contract { blame } => {
            fields.push(("blame", Json::Str(blame.as_str())));
        }
        _ => {}
    }
    obj(vec![("ok", Json::Bool(false)), ("error", obj(fields))])
}

/// Merges a request's `"limits"` object over the server defaults.
///
/// Requests can only *tighten* the operator-configured budgets: each
/// field is clamped to the server default, so an untrusted client
/// cannot lift resource caps on the daemon.
pub fn merge_limits(base: Limits, spec: Option<&Json>) -> Limits {
    let mut limits = base;
    let Some(spec) = spec else { return limits };
    if let Some(n) = spec.get("max_expansion_steps").and_then(Json::as_u64) {
        limits.max_expansion_steps = base.max_expansion_steps.min(n);
    }
    if let Some(n) = spec.get("max_expansion_depth").and_then(Json::as_u64) {
        limits.max_expansion_depth = base.max_expansion_depth.min(n);
    }
    if let Some(n) = spec.get("max_phase1_steps").and_then(Json::as_u64) {
        limits.max_phase1_steps = base.max_phase1_steps.min(n);
    }
    if let Some(n) = spec.get("max_vm_steps").and_then(Json::as_u64) {
        limits.max_vm_steps = base.max_vm_steps.min(n);
    }
    if let Some(n) = spec.get("max_stack_depth").and_then(Json::as_u64) {
        limits.max_stack_depth = base.max_stack_depth.min(n);
    }
    if let Some(ms) = spec.get("timeout_ms").and_then(Json::as_u64) {
        let requested = Duration::from_millis(ms);
        limits.timeout = Some(match base.timeout {
            Some(default) => default.min(requested),
            None => requested,
        });
    }
    limits
}

/// Builds a worker's private world: registry, languages, store handle,
/// source loader. Post-seal, the bootstrap's interned names resolve to
/// the shared arena; only its gensyms live in this thread's epoch table.
fn build_world(shared: &Arc<Shared>) -> std::rc::Rc<ModuleRegistry> {
    let registry = ModuleRegistry::new();
    lagoon_optimizer::register_typed_languages(&registry);
    registry.set_store_dir(shared.opts.cache_dir.clone());
    if let Some(root) = shared.opts.source_root.clone() {
        registry.set_loader(move |name: Symbol| {
            name.with_str(|s| {
                if s.contains('/') || s.contains('\\') || s.contains("..") {
                    return None;
                }
                std::fs::read_to_string(root.join(format!("{s}.lag"))).ok()
            })
        });
    }
    registry
}

/// Publishes this worker's epoch gauge (and the bootstrap base when
/// `set_base`), and folds the total into the interner high-water mark.
fn report_epoch_gauge(shared: &Arc<Shared>, index: usize, set_base: bool) {
    let len = lagoon_syntax::epoch_len() as u64;
    let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
    if stats.worker_epoch.len() <= index {
        stats.worker_epoch.resize(index + 1, (0, 0));
    }
    if set_base {
        stats.worker_epoch[index].0 = len;
    }
    stats.worker_epoch[index].1 = len;
    let total =
        lagoon_syntax::arena_len() as u64 + stats.worker_epoch.iter().map(|(_, l)| *l).sum::<u64>();
    stats.interner_high_water = stats.interner_high_water.max(total);
}

/// Accounts a worker in `live_workers` for the scope of its serve loop,
/// surviving panics (the supervisor reads the count for shedding
/// decisions while it respawns).
struct LiveWorkerGuard<'a>(&'a Arc<Shared>);

impl Drop for LiveWorkerGuard<'_> {
    fn drop(&mut self) {
        self.0.live_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One worker's world and request loop. The registry persists across
/// requests — compiled modules stay warm — but instances are reset per
/// request, inline sources get unique un-cacheable names, and when a
/// request leaves the persistent footprint unchanged the worker
/// truncates its symbol epoch and sweeps its binding table back to the
/// pre-request state: no run-time state *or memory* crosses requests.
///
/// Self-healing layers, outermost first: a thread death (escaped
/// panic — in production a bug, in tests `test-kill`) drops the reply
/// sender (the connection maps that to a structured `internal` error)
/// and the supervisor respawns the slot; the per-request `catch_unwind`
/// below converts panics that escape `handle_request`'s own barrier
/// into structured errors and rebuilds the world (a panic mid-compile
/// can leave registry guards dirty); `--recycle-after N` rebuilds the
/// world on a schedule as defense-in-depth.
fn worker_main(index: usize, shared: &Arc<Shared>) {
    lagoon_vm::peephole::set_enabled(shared.opts.peephole);
    shared.live_workers.fetch_add(1, Ordering::SeqCst);
    let _live = LiveWorkerGuard(shared);
    let mut registry = build_world(shared);
    report_epoch_gauge(shared, index, true);
    let mut served_since_build: usize = 0;
    static REQ_ID: AtomicU64 = AtomicU64::new(0);
    static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

    loop {
        // Batch per wake: grab a fair share of the queue (depth divided
        // by live workers, capped) under one lock acquisition, instead
        // of one lock round-trip per job. Under a burst this turns N
        // wakeups into roughly N/batch lock acquisitions; under light
        // load the batch is one job and behavior is unchanged.
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !q.jobs.is_empty() {
                    let live = shared.live_workers.load(Ordering::SeqCst).max(1);
                    let depth = q.jobs.len();
                    let take = depth.div_ceil(live).clamp(1, WAKE_BATCH_CAP);
                    let batch: Vec<Job> = q.jobs.drain(..take.min(depth)).collect();
                    break Some(batch);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(q, Duration::from_millis(200))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let Some(batch) = batch else { return };
        {
            let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.batch_wakes += 1;
            stats.batched_jobs += batch.len() as u64;
        }
        for job in batch {
            let start = Instant::now();
            let start_ms = start.duration_since(shared.started).as_secs_f64() * 1e3;
            let op = job
                .request
                .get("op")
                .and_then(Json::as_str)
                .unwrap_or("run")
                .to_string();
            if op == "test-kill" && shared.opts.test_ops {
                // Simulates a crashed worker: die outside every barrier,
                // dropping `job.reply` (client sees a structured error) and
                // leaving the thread to the supervisor.
                panic!("test-kill: deliberate worker death");
            }
            let trace_id = request_trace_id(&job.request, &TRACE_SEQ);

            // Reclamation checkpoint: if the request leaves the persistent
            // registry footprint unchanged, everything it interned and
            // bound is garbage afterwards.
            let footprint = registry.persistent_footprint();
            let scope_watermark = lagoon_syntax::Scope::watermark();
            let epoch = lagoon_syntax::epoch_mark();

            let outcome = catch_unwind(AssertUnwindSafe(|| {
                handle_request(&registry, &job.request, &op, shared, &REQ_ID)
            }));
            let (response, panicked) = match outcome {
                Ok((response, panicked)) => (response, panicked),
                Err(_) => (
                    error_json("internal", "internal error: request panicked"),
                    true,
                ),
            };

            if panicked {
                // The inner barrier (or the one above) contained a panic,
                // but mid-flight registry state (cycle guards, partial
                // compiles) may be dirty: rebuild the whole world.
                {
                    let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                    stats.panics += 1;
                }
                drop(registry);
                lagoon_syntax::epoch_reset();
                registry = build_world(shared);
                served_since_build = 0;
                report_epoch_gauge(shared, index, true);
            } else if registry.persistent_footprint() == footprint {
                // Truncate first so the binding-table sweep sees the
                // request's symbols as dead.
                registry.reset_instances();
                lagoon_syntax::epoch_truncate(epoch);
                registry.sweep_ephemeral(scope_watermark);
                report_epoch_gauge(shared, index, false);
            } else {
                // The request warmed a named module; its world is now part
                // of the persistent working set. Growth converges to the
                // named-module set; `--recycle-after` bounds the rest.
                report_epoch_gauge(shared, index, false);
            }

            served_since_build += 1;
            if shared.opts.recycle_after > 0 && served_since_build >= shared.opts.recycle_after {
                drop(registry);
                lagoon_syntax::epoch_reset();
                registry = build_world(shared);
                served_since_build = 0;
                {
                    let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                    stats.recycles += 1;
                }
                report_epoch_gauge(shared, index, true);
            }

            let latency = start.elapsed();
            let is_err = response.get("ok").and_then(Json::as_bool) != Some(true);
            let depth = {
                let q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                q.jobs.len() as u64
            };
            {
                let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                stats.record_op(&op, latency, index, is_err);
                stats.record_depth(shared.started.elapsed().as_millis() as u64, depth);
                stats.record_span(WorkerSpan {
                    worker: index,
                    op: op.clone(),
                    trace_id: trace_id.clone(),
                    start_ms,
                    dur_ms: latency.as_secs_f64() * 1e3,
                });
            }
            let mut response = response;
            if let Json::Obj(map) = &mut response {
                map.insert("micros".to_string(), Json::Num(latency.as_micros() as f64));
                map.insert("trace_id".to_string(), Json::Str(trace_id));
            }
            let _ = job.reply.send(response.to_string());
        }
    }
}

/// The request's correlation id: a client-supplied `"trace_id"` string
/// (bounded, so a hostile client cannot bloat the span history) or a
/// generated `lag-N`. Echoed on the response and recorded on the
/// request's worker span, so clients can line up their own telemetry
/// with the daemon's.
fn request_trace_id(request: &Json, seq: &AtomicU64) -> String {
    match request.get("trace_id").and_then(Json::as_str) {
        Some(id) if !id.is_empty() => id.chars().take(64).collect(),
        _ => format!("lag-{}", seq.fetch_add(1, Ordering::Relaxed)),
    }
}

/// Serves one request against the worker's world. Returns the response
/// plus whether the request panicked (contained by the barrier below) —
/// the worker rebuilds its world in that case, because a panic can
/// leave registry guards (cycle sets, partial compiles) dirty.
fn handle_request(
    registry: &std::rc::Rc<ModuleRegistry>,
    request: &Json,
    op: &str,
    shared: &Arc<Shared>,
    req_id: &AtomicU64,
) -> (Json, bool) {
    // Resolve the target module: inline source gets a unique name that
    // `cacheable_name` rejects (it contains '/'), so request bodies
    // never enter the shared store and never collide across requests.
    // The `req/{id}` symbol and everything the request interns land in
    // this worker's epoch table, which the worker truncates after the
    // request — the old process-global interner leak (~3.2 symbols per
    // inline request, BENCH_6) is gone.
    let inline = request.get("source").and_then(Json::as_str);
    let named = request.get("module").and_then(Json::as_str);
    let name = match (inline, named) {
        (Some(src), _) => {
            let id = req_id.fetch_add(1, Ordering::Relaxed);
            let name = format!("req/{id}");
            registry.add_module(&name, src);
            name
        }
        (None, Some(m)) => {
            if m.contains("..") || m.contains('\\') {
                return (error_json("protocol", "invalid module name"), false);
            }
            m.to_string()
        }
        (None, None) if op == "test-panic" && shared.opts.test_ops => {
            // Deliberate panic *inside* the request barrier: the client
            // must get a structured `internal` error and the worker
            // must survive (its world is rebuilt).
            String::new()
        }
        (None, None) => {
            return (
                error_json("protocol", "need \"module\" or \"source\""),
                false,
            )
        }
    };
    let engine = match request.get("engine").and_then(Json::as_str) {
        Some("interp") => EngineKind::Interp,
        _ => EngineKind::Vm,
    };
    let limits = merge_limits(shared.opts.limits, request.get("limits"));
    let want_diag = request.get("diag").and_then(Json::as_bool) == Some(true);

    lagoon_diag::limits::install(limits);
    let collector = Collector::install();
    // Fresh instances per request: compiled code stays warm, run-time
    // module state does not leak between requests.
    registry.reset_instances();
    let mut panicked = false;
    let result: Result<Json, RtError> = {
        lagoon_diag::limits::refill();
        let guarded = catch_unwind(AssertUnwindSafe(|| match op {
            "test-panic" if shared.opts.test_ops => {
                panic!("test-panic: deliberate request panic")
            }
            "run" => {
                let (result, output) =
                    lagoon_runtime::io::capture_output(|| registry.run(&name, engine));
                result.map(|value| {
                    obj(vec![
                        ("ok", Json::Bool(true)),
                        ("value", Json::Str(value.to_string())),
                        ("output", Json::Str(output)),
                    ])
                })
            }
            "expand" => registry.expanded_body(&name).map(|forms| {
                let rendered: Vec<Json> = forms
                    .iter()
                    .map(|f| Json::Str(f.to_datum().to_string()))
                    .collect();
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("forms", Json::Arr(rendered)),
                ])
            }),
            "check" => registry
                .compile(Symbol::intern(&name))
                .map(|_| obj(vec![("ok", Json::Bool(true))])),
            _ => Err(RtError::new(Kind::Internal, "unreachable op".to_string())),
        }));
        match guarded {
            Ok(r) => r,
            Err(_) => {
                panicked = true;
                Err(RtError::new(
                    Kind::Internal,
                    "internal error: request panicked".to_string(),
                ))
            }
        }
    };
    lagoon_diag::uninstall();
    // Restore the server-default limits for whatever runs next.
    lagoon_diag::limits::install(shared.opts.limits);
    if inline.is_some() {
        registry.remove_module(&name);
    }

    let report = collector.report();
    {
        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.cache_hits += report.cache_hits() as u64;
        stats.cache_misses += report.cache_misses() as u64;
    }

    let mut response = match result {
        Ok(v) => v,
        Err(e) => rt_error_json(&e),
    };
    if let Json::Obj(map) = &mut response {
        // Per-phase span summary (pipeline buckets, ms). Present on
        // errors too: a failed request still shows how far it got.
        let mut phases = BTreeMap::new();
        for (name, nanos) in report.timing_buckets() {
            phases.insert(name.to_string(), Json::Num(nanos as f64 / 1e6));
        }
        map.insert("phases".to_string(), Json::Obj(phases));
        if want_diag {
            let parsed = json::parse(&report.to_json()).unwrap_or(Json::Null);
            map.insert("report".to_string(), parsed);
        }
    }
    (response, panicked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_line_read_caps_and_resyncs() {
        let data = format!("ok\n{}\nafter\n", "x".repeat(64));
        let mut r = std::io::Cursor::new(data.into_bytes());
        assert!(matches!(
            read_bounded_line(&mut r, 16).unwrap(),
            BoundedLine::Line(l) if l == "ok"
        ));
        // The over-long line is consumed (bounded memory), and the
        // stream stays framed: the next line parses normally.
        assert!(matches!(
            read_bounded_line(&mut r, 16).unwrap(),
            BoundedLine::TooLong
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 16).unwrap(),
            BoundedLine::Line(l) if l == "after"
        ));
        assert!(matches!(
            read_bounded_line(&mut r, 16).unwrap(),
            BoundedLine::Eof
        ));
    }

    #[test]
    fn reject_json_carries_retry_hints() {
        let err = |reason: &str| reject_json(reason, "m");
        for (reason, ms) in [
            ("queue-full", 25),
            ("workers-degraded", 50),
            ("workers-unavailable", 100),
        ] {
            let r = err(reason);
            let e = r.get("error").expect("error");
            assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(true));
            assert_eq!(e.get("retry_after_ms").and_then(Json::as_u64), Some(ms));
        }
        for reason in ["shutting-down", "request-too-large"] {
            let r = err(reason);
            let e = r.get("error").expect("error");
            assert_eq!(e.get("retryable").and_then(Json::as_bool), Some(false));
            assert!(e.get("retry_after_ms").is_none());
        }
    }

    #[test]
    fn merge_limits_only_tightens() {
        let base = Limits {
            max_expansion_steps: 1_000,
            max_expansion_depth: 50,
            max_phase1_steps: 10_000,
            max_vm_steps: 100_000,
            max_stack_depth: 256,
            timeout: Some(Duration::from_millis(500)),
        };
        // Tightening requests take effect.
        let spec = json::parse(r#"{"max_vm_steps":10,"timeout_ms":100}"#).unwrap();
        let merged = merge_limits(base, Some(&spec));
        assert_eq!(merged.max_vm_steps, 10);
        assert_eq!(merged.timeout, Some(Duration::from_millis(100)));
        // Attempts to exceed the server defaults are clamped to them.
        let spec = json::parse(
            r#"{"max_expansion_steps":18446744073709551615,"max_expansion_depth":9999,
                "max_phase1_steps":18446744073709551615,"max_vm_steps":18446744073709551615,
                "max_stack_depth":9999,"timeout_ms":3600000}"#,
        )
        .unwrap();
        let merged = merge_limits(base, Some(&spec));
        assert_eq!(merged, base);
        // With no default timeout, a request may introduce one (that
        // only tightens from "unlimited").
        let open = Limits {
            timeout: None,
            ..base
        };
        let spec = json::parse(r#"{"timeout_ms":100}"#).unwrap();
        assert_eq!(
            merge_limits(open, Some(&spec)).timeout,
            Some(Duration::from_millis(100))
        );
    }
}
