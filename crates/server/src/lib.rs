//! # lagoon-server
//!
//! The serving layer of Lagoon: parallel module-graph builds and a
//! multi-worker evaluation daemon.
//!
//! Lagoon's values are `Rc`-based and single-threaded by design, so
//! neither subsystem shares live objects across threads. Instead, every
//! worker owns a full world (registry + languages), and workers
//! cooperate through the *serialized* layer: the content-addressed
//! `.lagc` store, whose artifacts are byte-identical no matter which
//! worker produced them (deterministic gensym freshening makes compiled
//! output a pure function of module content).
//!
//! - [`build`] schedules a statically-scanned dependency graph as a
//!   wavefront over N compile workers (`lagoon build --jobs N`).
//! - [`daemon`] serves `run`/`expand`/`check` requests over
//!   newline-delimited JSON on TCP with a bounded queue, per-request
//!   resource limits, and graceful drain (`lagoon serve`).
//! - [`client`] is the matching one-line-out, one-line-back client
//!   (`lagoon remote`).
//! - [`json`] is the std-only JSON used on the wire (the workspace
//!   builds offline; no external crates).

#![warn(missing_docs)]
// panic-free core: unwrap/expect in non-test code must be justified
// with an explicit #[allow] (CI promotes these to errors)
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod build;
pub mod client;
pub mod daemon;
pub mod json;

pub use build::{build, build_from_map, dir_source, BuildOptions, BuildReport, ModuleStatus};
pub use daemon::{install_sigterm_handler, ServeOptions, Server};
