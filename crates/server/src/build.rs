//! The parallel build scheduler.
//!
//! [`build`] compiles a module graph across `jobs` worker threads. The
//! entry modules' sources are scanned for top-level `(require …)` forms
//! to recover the static dependency graph, which is then scheduled as a
//! wavefront: a module becomes ready the moment its last dependency
//! finishes. Each worker owns a private [`ModuleRegistry`] — Lagoon
//! values are `Rc`-based and never cross threads — so workers exchange
//! finished modules only through the *serialized* `.lagc` artifacts in
//! the shared content-addressed store. Because gensym freshening is
//! deterministic per module content (see `lagoon_syntax::fresh_scope`),
//! every worker that compiles a given module writes byte-identical
//! artifacts, and `--jobs N` output is byte-identical to `--jobs 1`.
//!
//! A process-wide single-flight map backs the schedule up: requires the
//! static scan could not see (macros can synthesize `require` forms
//! during expansion) are claimed in the map by the first worker to need
//! them, and other workers briefly block and then load the artifact
//! from the store instead of re-compiling.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, ThreadId};
use std::time::{Duration, Instant};

use lagoon_core::ModuleRegistry;
use lagoon_diag::{Collector, Limits, Report};
use lagoon_syntax::{read_module, Symbol};

/// A source-text oracle: maps a module name to its `#lang` source.
/// Shared by the scanner and every worker's lazy loader.
pub type SourceFn = Arc<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// Returns a [`SourceFn`] resolving `<name>.lag` files under `root`.
/// Names containing path separators or `..` are refused.
pub fn dir_source(root: PathBuf) -> SourceFn {
    Arc::new(move |name: &str| {
        if name.contains('/') || name.contains('\\') || name.contains("..") {
            return None;
        }
        std::fs::read_to_string(root.join(format!("{name}.lag"))).ok()
    })
}

/// Options for [`build`].
pub struct BuildOptions {
    /// Worker thread count (clamped to at least 1).
    pub jobs: usize,
    /// The shared `.lagc` store directory. `None` still builds in
    /// parallel, but workers cannot exchange compiled modules, so every
    /// worker recompiles the dependencies it needs.
    pub cache_dir: Option<PathBuf>,
    /// Resource limits installed on every worker thread.
    pub limits: Limits,
    /// Whether workers run the VM's peephole pass (thread-local state,
    /// so it must be forwarded explicitly).
    pub peephole: bool,
    /// Whether each worker records a structured trace of its phase
    /// spans. Traces come back on [`BuildReport::traces`], one track
    /// per worker (see `lagoon_diag::trace`).
    pub trace: bool,
}

impl Default for BuildOptions {
    fn default() -> BuildOptions {
        BuildOptions {
            jobs: 1,
            cache_dir: None,
            limits: Limits::default(),
            peephole: lagoon_vm::peephole::enabled(),
            trace: false,
        }
    }
}

/// What happened to one module during a build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModuleStatus {
    /// Compiled (or loaded from the store) successfully.
    Built,
    /// Compilation failed; the message is the structured error rendered.
    Failed(String),
    /// Not attempted because a dependency failed.
    Skipped(String),
}

/// Per-module outcome row in a [`BuildReport`].
#[derive(Clone, Debug)]
pub struct ModuleOutcome {
    /// Module name.
    pub name: String,
    /// Outcome.
    pub status: ModuleStatus,
    /// Wall time spent compiling this module (zero for skipped rows).
    pub duration: Duration,
    /// Index of the worker that built it (`None` for skipped rows).
    pub worker: Option<usize>,
}

/// Per-worker utilization row.
#[derive(Clone, Debug)]
pub struct WorkerRow {
    /// Time spent compiling modules (excludes idle waits).
    pub busy: Duration,
    /// Time spent constructing the worker's registry and languages.
    pub setup: Duration,
    /// Modules this worker finished.
    pub modules: usize,
}

/// The result of a parallel build.
#[derive(Debug)]
pub struct BuildReport {
    /// Worker count actually used.
    pub jobs: usize,
    /// End-to-end wall time, including graph scan and worker setup.
    pub wall: Duration,
    /// Outcome per module, in completion order.
    pub modules: Vec<ModuleOutcome>,
    /// Per-worker utilization.
    pub workers: Vec<WorkerRow>,
    /// Times a worker blocked on another worker's in-flight compile of
    /// the same module instead of starting a duplicate one.
    pub single_flight_waits: u64,
    /// Compiled-store hits across all workers.
    pub cache_hits: usize,
    /// Compiled-store misses across all workers.
    pub cache_misses: usize,
    /// The merged diagnostics report from every worker.
    pub diag: Report,
    /// Per-worker phase traces (`(worker index, trace)`), recorded only
    /// when [`BuildOptions::trace`] was set.
    pub traces: Vec<(usize, lagoon_diag::trace::Trace)>,
}

impl BuildReport {
    /// True when every module built.
    pub fn success(&self) -> bool {
        self.modules.iter().all(|m| m.status == ModuleStatus::Built)
    }

    /// Modules that failed or were skipped.
    pub fn failures(&self) -> Vec<&ModuleOutcome> {
        self.modules
            .iter()
            .filter(|m| m.status != ModuleStatus::Built)
            .collect()
    }

    /// Worker utilization: mean busy share of wall time across workers.
    pub fn utilization(&self) -> f64 {
        if self.workers.is_empty() || self.wall.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.workers.iter().map(|w| w.busy.as_secs_f64()).sum();
        busy / (self.wall.as_secs_f64() * self.workers.len() as f64)
    }

    /// The report as a JSON object (machine-readable `--stats` output).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"jobs\":{},\"wall_ms\":{:.3},\"utilization\":{:.4},\"single_flight_waits\":{},\"cache_hits\":{},\"cache_misses\":{}",
            self.jobs,
            self.wall.as_secs_f64() * 1e3,
            self.utilization(),
            self.single_flight_waits,
            self.cache_hits,
            self.cache_misses,
        );
        out.push_str(",\"modules\":[");
        for (i, m) in self.modules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (status, detail) = match &m.status {
                ModuleStatus::Built => ("built", String::new()),
                ModuleStatus::Failed(e) => ("failed", e.clone()),
                ModuleStatus::Skipped(d) => ("skipped", d.clone()),
            };
            let _ = write!(
                out,
                "{{\"name\":{},\"status\":\"{status}\",\"detail\":{},\"ms\":{:.3},\"worker\":{}}}",
                lagoon_diag::json_string(&m.name),
                lagoon_diag::json_string(&detail),
                m.duration.as_secs_f64() * 1e3,
                m.worker.map_or(-1i64, |w| w as i64),
            );
        }
        out.push_str("],\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"busy_ms\":{:.3},\"setup_ms\":{:.3},\"modules\":{}}}",
                w.busy.as_secs_f64() * 1e3,
                w.setup.as_secs_f64() * 1e3,
                w.modules,
            );
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------------
// Single-flight map
// ---------------------------------------------------------------------------

/// How long a worker waits on another worker's in-flight compile before
/// giving up and compiling locally. A duplicate compile is benign —
/// deterministic freshening makes both produce identical bytes and the
/// store write is atomic — so the timeout only bounds pathological
/// cross-worker waits (e.g. a macro-generated require cycle).
const FLIGHT_WAIT_CAP: Duration = Duration::from_secs(10);

enum FlightState {
    Building(ThreadId),
    Done,
}

/// What a [`SingleFlight::claim`] call found.
enum Claim {
    /// We claimed it: we are the builder and must call `finish`.
    Ours,
    /// Someone (possibly us, earlier) already built it, or we already
    /// hold the claim on this thread.
    Settled,
}

struct SingleFlight {
    state: Mutex<HashMap<String, FlightState>>,
    cv: Condvar,
    waits: AtomicU64,
}

impl SingleFlight {
    fn new() -> SingleFlight {
        SingleFlight {
            state: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            waits: AtomicU64::new(0),
        }
    }

    fn claim(&self, name: &str) -> Claim {
        let me = thread::current().id();
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + FLIGHT_WAIT_CAP;
        loop {
            match guard.get(name) {
                None => {
                    guard.insert(name.to_string(), FlightState::Building(me));
                    return Claim::Ours;
                }
                Some(FlightState::Done) => return Claim::Settled,
                Some(FlightState::Building(owner)) if *owner == me => return Claim::Settled,
                Some(FlightState::Building(_)) => {
                    self.waits.fetch_add(1, Ordering::Relaxed);
                    let now = Instant::now();
                    if now >= deadline {
                        // Give up waiting: compile locally (benign
                        // duplicate; see FLIGHT_WAIT_CAP).
                        return Claim::Settled;
                    }
                    let (g, _) = self
                        .cv
                        .wait_timeout(guard, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    guard = g;
                }
            }
        }
    }

    fn finish(&self, name: &str) {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        guard.insert(name.to_string(), FlightState::Done);
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Graph scan
// ---------------------------------------------------------------------------

/// Forward edges per module, plus modules that failed to scan (with why).
type ScanResult = (HashMap<String, Vec<String>>, Vec<(String, String)>);

/// The static dependency graph: for each module, the `(require …)`
/// names its top level mentions. Requires synthesized by macros are
/// invisible here; the single-flight map covers those at build time.
fn scan_graph(entries: &[String], source_of: &SourceFn) -> ScanResult {
    let mut deps: HashMap<String, Vec<String>> = HashMap::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut queue: VecDeque<String> = entries.iter().cloned().collect();
    let mut seen: HashSet<String> = HashSet::new();
    while let Some(name) = queue.pop_front() {
        if !seen.insert(name.clone()) {
            continue;
        }
        let Some(source) = source_of(&name) else {
            failures.push((name, "module not found".to_string()));
            continue;
        };
        match read_module(&source, &name) {
            Ok(module) => {
                let mut found = Vec::new();
                for form in &module.body {
                    let Some(items) = form.as_list() else {
                        continue;
                    };
                    let is_require = items
                        .first()
                        .and_then(|h| h.sym())
                        .is_some_and(|s| s.with_str(|s| s == "require"));
                    if !is_require {
                        continue;
                    }
                    for spec in &items[1..] {
                        if let Some(sym) = spec.sym() {
                            let dep = sym.as_str();
                            if !found.contains(&dep) {
                                queue.push_back(dep.clone());
                                found.push(dep);
                            }
                        }
                    }
                }
                deps.insert(name, found);
            }
            Err(e) => failures.push((name, format!("read error: {e:?}"))),
        }
    }
    (deps, failures)
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

struct SchedState {
    ready: VecDeque<String>,
    /// Unfinished dependency count per not-yet-ready module.
    waiting: HashMap<String, usize>,
    /// Reverse edges: module → modules that require it.
    dependents: HashMap<String, Vec<String>>,
    /// Modules poisoned by a failed dependency (name → failed dep).
    poisoned: HashMap<String, String>,
    /// Modules not yet finished (built, failed, or skipped).
    remaining: usize,
    /// Jobs currently being compiled by a worker.
    in_flight: usize,
    outcomes: Vec<ModuleOutcome>,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    /// Blocks until a module is ready or the build is over. Detects
    /// stalls (a dependency cycle leaves modules waiting forever with
    /// nothing in flight) and fails the stragglers rather than hanging.
    fn next_job(&self) -> Option<String> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = s.ready.pop_front() {
                s.in_flight += 1;
                return Some(job);
            }
            if s.remaining == 0 {
                return None;
            }
            if s.in_flight == 0 {
                // Nothing ready, nothing running, modules left: the
                // static graph has a require cycle.
                let stuck: Vec<String> = s.waiting.keys().cloned().collect();
                for name in stuck {
                    s.waiting.remove(&name);
                    s.remaining -= 1;
                    s.outcomes.push(ModuleOutcome {
                        name,
                        status: ModuleStatus::Failed("require cycle".to_string()),
                        duration: Duration::ZERO,
                        worker: None,
                    });
                }
                self.cv.notify_all();
                return None;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records a finished job and releases any modules it unblocks.
    fn complete(&self, outcome: ModuleOutcome) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.in_flight -= 1;
        s.remaining -= 1;
        let name = outcome.name.clone();
        let failed = !matches!(outcome.status, ModuleStatus::Built);
        s.outcomes.push(outcome);
        // Propagate to dependents; cascade skips through failed chains.
        let mut frontier = vec![(name, failed)];
        while let Some((done, done_failed)) = frontier.pop() {
            let Some(deps) = s.dependents.get(&done).cloned() else {
                continue;
            };
            for dependent in deps {
                if done_failed {
                    s.poisoned.entry(dependent.clone()).or_insert(done.clone());
                }
                let Some(left) = s.waiting.get_mut(&dependent) else {
                    continue;
                };
                *left -= 1;
                if *left > 0 {
                    continue;
                }
                s.waiting.remove(&dependent);
                if let Some(bad_dep) = s.poisoned.get(&dependent).cloned() {
                    s.remaining -= 1;
                    s.outcomes.push(ModuleOutcome {
                        name: dependent.clone(),
                        status: ModuleStatus::Skipped(format!("dependency {bad_dep} failed")),
                        duration: Duration::ZERO,
                        worker: None,
                    });
                    frontier.push((dependent, true));
                } else {
                    s.ready.push_back(dependent);
                }
            }
        }
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

struct WorkerResult {
    index: usize,
    row: WorkerRow,
    report: Report,
    trace: Option<lagoon_diag::trace::Trace>,
}

fn rt_error_text(e: &lagoon_runtime::RtError) -> String {
    format!("{}: {}", e.kind, e.message)
}

fn worker_loop(
    index: usize,
    sched: &Scheduler,
    flight: &Arc<SingleFlight>,
    source_of: &SourceFn,
    opts: &BuildOptions,
) -> WorkerResult {
    lagoon_vm::peephole::set_enabled(opts.peephole);
    lagoon_diag::limits::install(opts.limits);
    let collector = Collector::install();
    if opts.trace {
        lagoon_diag::trace::install(lagoon_diag::trace::DEFAULT_CAPACITY);
    }

    let setup_start = Instant::now();
    let registry = ModuleRegistry::new();
    lagoon_optimizer::register_typed_languages(&registry);
    registry.set_store_dir(opts.cache_dir.clone());
    // Names this worker claimed in the single-flight map from inside the
    // loader (statically invisible requires); released after the
    // enclosing top-level compile returns.
    let claimed = std::rc::Rc::new(std::cell::RefCell::new(Vec::<String>::new()));
    {
        let source_of = Arc::clone(source_of);
        let claimed = std::rc::Rc::clone(&claimed);
        let flight = Arc::clone(flight);
        registry.set_loader(move |name: Symbol| {
            let name = name.as_str();
            if let Claim::Ours = flight.claim(&name) {
                claimed.borrow_mut().push(name.clone());
            }
            source_of(&name)
        });
    }
    let setup = setup_start.elapsed();

    let mut row = WorkerRow {
        busy: Duration::ZERO,
        setup,
        modules: 0,
    };
    while let Some(job) = sched.next_job() {
        let start = Instant::now();
        lagoon_diag::limits::refill();
        let claim = flight.claim(&job);
        let result = catch_unwind(AssertUnwindSafe(|| registry.compile(Symbol::intern(&job))));
        if let Claim::Ours = claim {
            flight.finish(&job);
        }
        for name in claimed.borrow_mut().drain(..) {
            flight.finish(&name);
        }
        let duration = start.elapsed();
        row.busy += duration;
        row.modules += 1;
        let status = match result {
            Ok(Ok(_)) => ModuleStatus::Built,
            Ok(Err(e)) => ModuleStatus::Failed(rt_error_text(&e)),
            Err(_) => ModuleStatus::Failed("internal error: compile panicked".to_string()),
        };
        sched.complete(ModuleOutcome {
            name: job,
            status,
            duration,
            worker: Some(index),
        });
    }
    lagoon_diag::uninstall();
    let trace = if opts.trace {
        lagoon_diag::trace::uninstall()
    } else {
        None
    };
    WorkerResult {
        index,
        row,
        report: collector.report(),
        trace,
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Builds `entries` (and everything they require) across
/// `opts.jobs` worker threads, compiling into the shared `.lagc` store.
pub fn build(entries: &[String], source_of: SourceFn, opts: &BuildOptions) -> BuildReport {
    let start = Instant::now();
    let jobs = opts.jobs.max(1);

    let (deps, scan_failures) = scan_graph(entries, &source_of);

    // Wavefront setup: count unfinished deps, record reverse edges.
    let mut waiting: HashMap<String, usize> = HashMap::new();
    let mut dependents: HashMap<String, Vec<String>> = HashMap::new();
    let mut ready: VecDeque<String> = VecDeque::new();
    let known: HashSet<&String> = deps.keys().collect();
    for (name, ds) in &deps {
        // Deps that failed to scan don't gate scheduling (the compile
        // will surface the real error); deps outside the scanned set
        // (shouldn't happen) are ignored likewise.
        let gating: Vec<&String> = ds.iter().filter(|d| known.contains(d)).collect();
        if gating.is_empty() {
            ready.push_back(name.clone());
        } else {
            waiting.insert(name.clone(), gating.len());
            for d in gating {
                dependents.entry(d.clone()).or_default().push(name.clone());
            }
        }
    }
    let mut outcomes: Vec<ModuleOutcome> = scan_failures
        .into_iter()
        .map(|(name, why)| ModuleOutcome {
            name,
            status: ModuleStatus::Failed(why),
            duration: Duration::ZERO,
            worker: None,
        })
        .collect();

    let remaining = deps.len();
    let sched = Scheduler {
        state: Mutex::new(SchedState {
            ready,
            waiting,
            dependents,
            poisoned: HashMap::new(),
            remaining,
            in_flight: 0,
            outcomes: Vec::new(),
        }),
        cv: Condvar::new(),
    };
    let flight = Arc::new(SingleFlight::new());

    let mut worker_results: Vec<WorkerResult> = Vec::with_capacity(jobs);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                let sched = &sched;
                let flight = &flight;
                let source_of = &source_of;
                scope.spawn(move || worker_loop(i, sched, flight, source_of, opts))
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(r) => worker_results.push(r),
                Err(_) => worker_results.push(WorkerResult {
                    index: worker_results.len(),
                    row: WorkerRow {
                        busy: Duration::ZERO,
                        setup: Duration::ZERO,
                        modules: 0,
                    },
                    report: Report::default(),
                    trace: None,
                }),
            }
        }
    });

    let state = sched.state.into_inner().unwrap_or_else(|e| e.into_inner());
    outcomes.extend(state.outcomes);

    let mut diag = Report::default();
    let mut workers = Vec::with_capacity(worker_results.len());
    let mut traces = Vec::new();
    for r in worker_results {
        workers.push(r.row);
        diag.merge(r.report);
        if let Some(t) = r.trace {
            traces.push((r.index, t));
        }
    }
    traces.sort_by_key(|(i, _)| *i);
    // Count store traffic from the merged cache events, but only for
    // modules in this build's graph: worker registries also hit the
    // store for the prelude and language modules.
    let graph: HashSet<String> = outcomes.iter().map(|o| o.name.clone()).collect();
    let in_graph = |m: &str| graph.contains(m);
    let cache_hits = diag
        .caches
        .iter()
        .filter(|c| c.status == "hit" && in_graph(&c.module))
        .count();
    let cache_misses = diag
        .caches
        .iter()
        .filter(|c| c.status == "miss" && in_graph(&c.module))
        .count();

    // Stable order for reporting: completion order is nondeterministic
    // across workers, so sort by name for byte-stable JSON.
    outcomes.sort_by(|a, b| a.name.cmp(&b.name));

    BuildReport {
        jobs,
        wall: start.elapsed(),
        modules: outcomes,
        workers,
        single_flight_waits: flight.waits.load(Ordering::Relaxed),
        cache_hits,
        cache_misses,
        diag,
        traces,
    }
}

/// Builds from an in-memory map of module sources (tests, benches).
pub fn build_from_map(
    entries: &[String],
    sources: BTreeMap<String, String>,
    opts: &BuildOptions,
) -> BuildReport {
    let sources = Arc::new(sources);
    build(
        entries,
        Arc::new(move |name: &str| sources.get(name).cloned()),
        opts,
    )
}
