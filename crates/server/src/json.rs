//! A minimal JSON value, parser, and writer.
//!
//! The daemon speaks newline-delimited JSON over TCP and the workspace
//! builds offline with no external crates, so this module hand-rolls the
//! small subset the wire protocol needs: objects, arrays, strings with
//! `\uXXXX` escapes, numbers, booleans, and `null`. Serialization reuses
//! [`lagoon_diag::json_string`] so string escaping matches the rest of
//! the tooling's JSON output.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; the protocol's integers are
    /// well within the 53-bit exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (`BTreeMap`) so output is stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Looks up a key on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64`, if this is a
    /// non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.is_finite() => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => f.write_str(&lagoon_diag::json_string(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", lagoon_diag::json_string(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Builds an object from key/value pairs (a convenience for responses).
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parses one JSON document, requiring it to span the whole input
/// (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

/// Parser nesting ceiling: the protocol never nests more than a few
/// levels, and the cap keeps hostile input from recursing the host
/// stack away.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: expect \uXXXX low half
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad unicode escape".to_string());
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(ch.ok_or("bad unicode escape")?);
                        }
                        _ => return Err(format!("bad escape '\\{}'", esc as char)),
                    }
                }
                Some(_) => {
                    // consume one full UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated unicode escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad unicode escape".to_string())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| "bad unicode escape".to_string())?;
        self.pos = end;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip() {
        let src = r#"{"op":"run","module":"main","limits":{"max_vm_steps":1000},"ok":true,"xs":[1,2.5,null,"a\nb"]}"#;
        let v = parse(src).expect("parse");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("run"));
        assert_eq!(
            v.get("limits")
                .and_then(|l| l.get("max_vm_steps"))
                .and_then(Json::as_u64),
            Some(1000)
        );
        let printed = v.to_string();
        assert_eq!(parse(&printed).expect("reparse"), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("{}extra").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "depth cap");
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).expect("parse");
        assert_eq!(v.as_str(), Some("é😀"));
        let v = parse(r#""\uD83D\uDE00""#).expect("surrogate pair");
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_bad_surrogates() {
        // High surrogate followed by a non-low-surrogate escape.
        assert!(parse(r#""\uD800A""#).is_err());
        // High surrogate followed by another high surrogate.
        assert!(parse(r#""\uD800\uD800""#).is_err());
        // Lone surrogates (either half) are not scalar values.
        assert!(parse(r#""\uDC00""#).is_err());
    }
}
