//! End-to-end tests for the typed sister language: the paper's §3–§6
//! examples, run through the full read→expand→typecheck→compile→run
//! pipeline on both engines.

use lagoon_core::{EngineKind, ModuleRegistry};
use lagoon_runtime::{Kind, Value};
use std::rc::Rc;

fn registry() -> Rc<ModuleRegistry> {
    let reg = ModuleRegistry::new();
    lagoon_typed::register(&reg, "typed/lagoon", None);
    reg
}

fn run_typed(src: &str) -> Result<Value, lagoon_runtime::RtError> {
    let reg = registry();
    reg.add_module("main", src);
    let vm = reg.run("main", EngineKind::Vm)?;
    let interp = reg.run("main", EngineKind::Interp)?;
    assert!(
        vm.equal(&interp) || (vm.is_procedure() && interp.is_procedure()),
        "engines disagree: vm={vm} interp={interp}"
    );
    Ok(vm)
}

// ----- §4.1: the simple-type example -----

#[test]
fn simple_typed_module() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: x : Integer 1)
         (define: y : Integer 2)
         (define: (f [z : Integer]) : Integer (* x (+ y z)))
         (f 3)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(5));
}

#[test]
fn wrong_type_is_a_compile_error() {
    // paper: (define w : Integer 3.7) → typecheck: wrong type in: 3.7
    let err = run_typed("#lang typed/lagoon\n(define: w : Integer 3.7)\n").unwrap_err();
    assert!(err.message.contains("typecheck"), "got: {err}");
    assert!(err.message.contains("wrong type"), "got: {err}");
}

#[test]
fn application_type_errors() {
    let err = run_typed(
        "#lang typed/lagoon
         (define: (f [x : Integer]) : Integer x)
         (f \"hello\")",
    )
    .unwrap_err();
    assert!(err.message.contains("typecheck"), "got: {err}");
}

#[test]
fn arity_type_errors() {
    let err = run_typed(
        "#lang typed/lagoon
         (define: (f [x : Integer]) : Integer x)
         (f 1 2)",
    )
    .unwrap_err();
    assert!(
        err.message.contains("wrong number of arguments"),
        "got: {err}"
    );
}

// ----- §3.2: colon declarations and context sensitivity -----

#[test]
fn colon_declaration_form() {
    let v = run_typed(
        "#lang typed/lagoon
         (: f (Number -> Number))
         (define (f z) (sqrt (* 2 z)))
         (f 8)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(4));
}

#[test]
fn colon_infix_declaration() {
    let v = run_typed(
        "#lang typed/lagoon
         (: add-5 : Integer -> Integer)
         (define (add-5 x) (+ x 5))
         (add-5 7)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(12));
}

#[test]
fn checked_body_respects_declaration() {
    let err = run_typed(
        "#lang typed/lagoon
         (: f (Integer -> Integer))
         (define (f x) 3.7)
         (f 1)",
    )
    .unwrap_err();
    assert!(err.message.contains("typecheck"), "got: {err}");
}

// ----- recursion, loops, let: -----

#[test]
fn recursive_functions() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: (fact [n : Integer]) : Integer
           (if (= n 0) 1 (* n (fact (- n 1)))))
         (fact 12)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(479001600));
}

#[test]
fn typed_named_let() {
    // paper §3.2's count function, adapted
    let v = run_typed(
        "#lang typed/lagoon
         (define: (count [f : Float-Complex]) : Integer
           (let: loop : Integer ([f : Float-Complex f])
             (if (< (magnitude f) 0.001)
                 0
                 (add1 (loop (/ f 2.0+2.0i))))))
         (count 8.0+8.0i)",
    )
    .unwrap();
    assert!(v.as_int().is_some_and(|n| n > 0));
}

#[test]
fn typed_let_bindings() {
    let v = run_typed(
        "#lang typed/lagoon
         (let: ([x : Integer 2] [y : Integer 3]) (+ x y))",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(5));
}

#[test]
fn lambda_colon_values() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: app2 : (-> (-> Integer Integer) Integer Integer)
           (lambda: ([f : (-> Integer Integer)] [x : Integer]) (f x)))
         (app2 (lambda: ([n : Integer]) (* n n)) 7)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(49));
}

// ----- lists, higher-order, paper §3.2 tag-check example -----

#[test]
fn list_types() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: p : (List Number Number Number) (list 1 2 3))
         (first p)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(1));
}

#[test]
fn polymorphic_prelude() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: l : (Listof Integer) (list 1 2 3))
         (foldl + 0 (map (lambda: ([x : Integer]) (* x x)) l))",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(14));
}

#[test]
fn macros_still_work_in_typed_code() {
    // paper §3.2: typed programmers reuse untyped syntactic libraries —
    // the checker sees only their expansion
    let v = run_typed(
        "#lang typed/lagoon
         (define-syntax twice (syntax-rules () [(_ e) (+ e e)]))
         (define: x : Integer 21)
         (twice x)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(42));
}

#[test]
fn cond_expands_and_checks() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: (sign [n : Integer]) : Integer
           (cond [(< n 0) -1]
                 [(= n 0) 0]
                 [else 1]))
         (sign -5)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(-1));
}

// ----- ann and cast -----

#[test]
fn ann_is_static() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: x : Number (ann 3 Number))
         x",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(3));
    let err = run_typed("#lang typed/lagoon\n(ann 3.7 Integer)\n").unwrap_err();
    assert!(err.message.contains("typecheck"), "got: {err}");
}

#[test]
fn cast_checks_at_runtime() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: x : Any 42)
         (+ (cast x Integer) 1)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(43));
    let err = run_typed(
        "#lang typed/lagoon
         (define: x : Any \"not a number\")
         (cast x Integer)",
    )
    .unwrap_err();
    assert!(matches!(err.kind, Kind::Contract { .. }), "got: {err}");
}

// ----- §5: modular typed programs -----

#[test]
fn types_flow_across_typed_modules() {
    let reg = registry();
    reg.add_module(
        "server",
        "#lang typed/lagoon
         (: add-5 : Integer -> Integer)
         (define (add-5 x) (+ x 5))
         (provide add-5)",
    );
    reg.add_module(
        "client",
        "#lang typed/lagoon
         (require server)
         (add-5 7)",
    );
    let v = reg.run("client", EngineKind::Vm).unwrap();
    assert_eq!(v.as_int(), Some(12));
}

#[test]
fn type_errors_across_modules() {
    let reg = registry();
    reg.add_module(
        "server",
        "#lang typed/lagoon
         (: add-5 : Integer -> Integer)
         (define (add-5 x) (+ x 5))
         (provide add-5)",
    );
    reg.add_module(
        "client",
        "#lang typed/lagoon
         (require server)
         (add-5 \"seven\")",
    );
    let err = reg.run("client", EngineKind::Vm).unwrap_err();
    assert!(err.message.contains("typecheck"), "got: {err}");
}

// ----- §6.1: imports from untyped modules -----

#[test]
fn require_typed_wraps_imports() {
    let reg = registry();
    reg.add_module(
        "file/md5",
        "#lang lagoon
         ;; an FNV-1a-style hash standing in for the md5 library (DESIGN.md)
         (define (md5 bytes)
           (foldl (lambda (b acc) (modulo (* (+ acc b) 16777619) 4294967296))
                  2166136261 bytes))
         (provide md5)",
    );
    reg.add_module(
        "main",
        "#lang typed/lagoon
         (require/typed file/md5 [md5 ((Listof Integer) -> Integer)])
         (md5 (string->bytes \"hello\"))",
    );
    let v = reg.run("main", EngineKind::Vm).unwrap();
    assert!(v.as_int().is_some_and(|n| n > 0));
}

#[test]
fn require_typed_misuse_is_static() {
    let reg = registry();
    reg.add_module("lib", "#lang lagoon\n(define (f x) x)\n(provide f)");
    reg.add_module(
        "main",
        "#lang typed/lagoon
         (require/typed lib [f (Integer -> Integer)])
         (f \"bad\")",
    );
    let err = reg.run("main", EngineKind::Vm).unwrap_err();
    assert!(err.message.contains("typecheck"), "got: {err}");
}

#[test]
fn require_typed_catches_lying_libraries() {
    // paper §6.1: "if the library fails to return a byte string value, a
    // dynamic contract error is produced"
    let reg = registry();
    reg.add_module(
        "liar",
        "#lang lagoon\n(define (f x) \"not an integer\")\n(provide f)",
    );
    reg.add_module(
        "main",
        "#lang typed/lagoon
         (require/typed liar [f (Integer -> Integer)])
         (f 1)",
    );
    let err = reg.run("main", EngineKind::Vm).unwrap_err();
    match err.kind {
        Kind::Contract { blame } => assert_eq!(blame.as_str(), "liar"),
        _ => panic!("expected contract violation blaming the library, got: {err}"),
    }
}

// ----- §6.2: exports to untyped modules -----

#[test]
fn untyped_clients_use_typed_exports_safely() {
    let reg = registry();
    reg.add_module(
        "server",
        "#lang typed/lagoon
         (: add-5 : Integer -> Integer)
         (define (add-5 x) (+ x 5))
         (provide add-5)",
    );
    reg.add_module(
        "client",
        "#lang lagoon
         (require server)
         (add-5 12)",
    );
    let v = reg.run("client", EngineKind::Vm).unwrap();
    assert_eq!(v.as_int(), Some(17));
}

#[test]
fn untyped_misuse_raises_contract_error() {
    // paper §6: (add-5 "bad") from untyped code must be caught dynamically
    let reg = registry();
    reg.add_module(
        "server",
        "#lang typed/lagoon
         (: add-5 : Integer -> Integer)
         (define (add-5 x) (+ x 5))
         (provide add-5)",
    );
    reg.add_module(
        "client",
        "#lang lagoon
         (require server)
         (add-5 \"bad\")",
    );
    let err = reg.run("client", EngineKind::Vm).unwrap_err();
    assert!(
        matches!(err.kind, Kind::Contract { .. }),
        "expected a contract violation, got: {err}"
    );
}

#[test]
fn typed_to_typed_links_without_contracts() {
    // the §6.2 flag mechanism: a typed client gets the raw binding, so a
    // use that *would* violate a (non-checked-at-runtime) deeper contract
    // still runs at full speed; observable here by checking a typed
    // client can call across 2 typed modules with no contract frames
    let reg = registry();
    reg.add_module(
        "a",
        "#lang typed/lagoon
         (: inc : Integer -> Integer)
         (define (inc x) (+ x 1))
         (provide inc)",
    );
    reg.add_module(
        "b",
        "#lang typed/lagoon
         (require a)
         (: inc2 : Integer -> Integer)
         (define (inc2 x) (inc (inc x)))
         (provide inc2)",
    );
    reg.add_module(
        "c",
        "#lang typed/lagoon
         (require b)
         (inc2 40)",
    );
    let v = reg.run("c", EngineKind::Vm).unwrap();
    assert_eq!(v.as_int(), Some(42));
}

#[test]
fn mixed_typed_untyped_chain() {
    // typed → untyped → typed chain with contracts at each boundary
    let reg = registry();
    reg.add_module(
        "typed-base",
        "#lang typed/lagoon
         (: square : Integer -> Integer)
         (define (square x) (* x x))
         (provide square)",
    );
    reg.add_module(
        "untyped-mid",
        "#lang lagoon
         (require typed-base)
         (define (sum-squares lst) (foldl (lambda (x acc) (+ acc (square x))) 0 lst))
         (provide sum-squares)",
    );
    reg.add_module(
        "typed-top",
        "#lang typed/lagoon
         (require/typed untyped-mid [sum-squares ((Listof Integer) -> Integer)])
         (sum-squares (list 1 2 3))",
    );
    let v = reg.run("typed-top", EngineKind::Vm).unwrap();
    assert_eq!(v.as_int(), Some(14));
}

// ----- misc semantics -----

#[test]
fn float_arithmetic_types() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: (norm [x : Float] [y : Float]) : Float
           (sqrt (+ (* x x) (* y y))))
         (norm 3.0 4.0)",
    )
    .unwrap();
    assert!(v.as_float().is_some_and(|x| x == 5.0));
}

#[test]
fn mixed_int_float_promotes() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: x : Float (* 2 3.5))
         x",
    )
    .unwrap();
    assert!(v.as_float().is_some_and(|x| x == 7.0));
}

#[test]
fn set_requires_declared_type() {
    let err = run_typed(
        "#lang typed/lagoon
         (define: x : Integer 1)
         (set! x \"nope\")",
    )
    .unwrap_err();
    assert!(err.message.contains("typecheck"), "got: {err}");
}

#[test]
fn untyped_operator_is_an_error() {
    let err = run_typed(
        "#lang typed/lagoon
         (define (f x) x)
         (f 1)",
    )
    .unwrap_err();
    // unannotated parameter in typed code
    assert!(err.message.contains("typecheck"), "got: {err}");
}

#[test]
fn string_operations_typecheck() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: (greet [name : String]) : String
           (string-append \"hello, \" name))
         (greet \"world\")",
    )
    .unwrap();
    assert_eq!(v.to_string(), "hello, world");
}

#[test]
fn vectors_typecheck() {
    let v = run_typed(
        "#lang typed/lagoon
         (define: v : (Vectorof Integer) (make-vector 3 7))
         (vector-set! v 1 9)
         (+ (vector-ref v 0) (vector-ref v 1))",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(16));
}

// ----- define-type aliases -----

#[test]
fn define_type_aliases() {
    let v = run_typed(
        "#lang typed/lagoon
         (define-type Point (List Float Float Float))
         (: px : Point -> Float)
         (define (px p) (first p))
         (px (list 1.5 2.0 3.0))",
    )
    .unwrap();
    assert!(v.as_float().is_some_and(|x| x == 1.5));
}

#[test]
fn aliases_nest_and_cross_modules() {
    let reg = registry();
    reg.add_module(
        "geometry",
        "#lang typed/lagoon
         (define-type Scalar Float)
         (define-type Point (List Scalar Scalar))
         (: mk : Scalar Scalar -> Point)
         (define (mk x y) (list x y))
         (provide mk)",
    );
    reg.add_module(
        "use",
        "#lang typed/lagoon
         (require geometry)
         (: flip : Point -> Point)
         (define (flip p) (list (second p) (first p)))
         (first (flip (mk 1.0 2.0)))",
    );
    let v = reg.run("use", EngineKind::Vm).unwrap();
    assert!(v.as_float().is_some_and(|x| x == 2.0));
}

#[test]
fn unknown_alias_errors() {
    let err = run_typed(
        "#lang typed/lagoon
         (: f : Nonexistent -> Integer)
         (define (f x) 1)
         (f 1)",
    )
    .unwrap_err();
    assert!(err.message.contains("unknown type"), "got: {err}");
}

#[test]
fn cyclic_alias_errors() {
    let err = run_typed(
        "#lang typed/lagoon
         (define-type A B)
         (define-type B A)
         (: f : A -> A)
         (define (f x) x)
         (f 1)",
    )
    .unwrap_err();
    assert!(
        err.message.contains("cyclic") || err.message.contains("unknown"),
        "got: {err}"
    );
}

// ----- type-system edges -----

#[test]
fn vectorof_is_invariant() {
    // (Vectorof Integer) must NOT be usable as (Vectorof Number):
    // vectors are mutable, so covariance would be unsound
    let err = run_typed(
        "#lang typed/lagoon
         (: f : (Vectorof Number) -> Void)
         (define (f v) (vector-set! v 0 1.5))
         (define: v : (Vectorof Integer) (vector 1 2))
         (f v)",
    )
    .unwrap_err();
    assert!(err.message.contains("typecheck"), "got: {err}");
}

#[test]
fn union_types_accept_all_branches() {
    let v = run_typed(
        "#lang typed/lagoon
         (: pick : Boolean -> (U Integer String))
         (define (pick b) (if b 1 \"one\"))
         (list (pick #t) (pick #f))",
    )
    .unwrap();
    assert_eq!(v.to_string(), "(1 one)");
}

#[test]
fn if_branches_join() {
    // unlike the paper's minimal checker (branches must agree), ours
    // joins: Integer ∨ Float = Number
    let v = run_typed(
        "#lang typed/lagoon
         (: f : Boolean -> Number)
         (define (f b) (if b 1 2.5))
         (f #t)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(1));
}

#[test]
fn function_subtyping_at_use() {
    // a function returning Integer can be passed where (-> Integer Number)
    // is expected (covariant range)
    let v = run_typed(
        "#lang typed/lagoon
         (: use : (-> Integer Number) -> Number)
         (define (use f) (f 1))
         (: g : Integer -> Integer)
         (define (g x) (* x 10))
         (use g)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(10));
}

#[test]
fn fixed_lists_decay_to_listof() {
    let v = run_typed(
        "#lang typed/lagoon
         (: sum-list : (Listof Integer) -> Integer)
         (define (sum-list l) (if (null? l) 0 (+ (car l) (sum-list (cdr l)))))
         (sum-list (list 1 2 3))",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(6));
}

#[test]
fn set_of_captured_typed_variable() {
    let v = run_typed(
        "#lang typed/lagoon
         (: make-acc : -> (-> Integer Integer))
         (define (make-acc)
           (let: ([total : Integer 0])
             (lambda: ([n : Integer]) : Integer
               (begin (set! total (+ total n)) total))))
         (define: acc : (-> Integer Integer) (make-acc))
         (acc 1) (acc 10) (acc 100)",
    )
    .unwrap();
    assert_eq!(v.as_int(), Some(111));
}

#[test]
fn string_and_char_types() {
    let v = run_typed(
        "#lang typed/lagoon
         (: initials : (Listof String) -> String)
         (define (initials names)
           (foldl (lambda: ([n : String] [acc : String])
                    (string-append acc (substring n 0 1)))
                  \"\" names))
         (initials (list \"ada\" \"grace\" \"barbara\"))",
    )
    .unwrap();
    assert_eq!(v.to_string(), "agb");
}

#[test]
fn error_mentions_the_offending_expression() {
    let err = run_typed(
        "#lang typed/lagoon
         (define: n : Integer (+ 1 \"two\"))",
    )
    .unwrap_err();
    assert!(err.message.contains("expected a number"), "got: {err}");
}
