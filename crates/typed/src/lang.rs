//! The typed sister language, implemented as a library (paper §§3–6).
//!
//! Everything here plugs into the host through `lagoon-core`'s public
//! extension API: native transformers, syntax properties, `local-expand`
//! (via [`Expander::expand_module_forms`]), and the compile-time
//! declaration table. No host internals are modified — the paper's thesis.
//!
//! The language provides:
//!
//! * `define:`, `:`, `lambda:`/`λ:`, `let:` — annotation forms that store
//!   types out-of-band as syntax properties on binders (§3.1);
//! * a `#%module-begin` that expands the whole module to core forms,
//!   typechecks it (§4), optionally optimizes it (§7), persists export
//!   types (§5), and installs contract-protected export indirections
//!   driven by the `typed-context?` flag (§6.2);
//! * `require/typed` for importing untyped code behind contracts (§6.1);
//! * `ann` (static ascription) and `cast` (checked coercion).

use crate::check::{
    prop_annotation, prop_ascribe, prop_ignore, prop_return, type_error, typecheck_module, Tcx,
};
use crate::types::Type;
use lagoon_core::build::{self, id, id_sym, lst, quote_datum, quote_sym};
use lagoon_core::{
    native, native_with_recipe, syntax_error, Binding, Expanded, Expander, Language,
    ModuleRegistry, NativeMacro,
};
use lagoon_runtime::value::{Arity, Native};
use lagoon_runtime::{apply_contract, Contract, RtError, Value};
use lagoon_syntax::{Datum, ScopeSet, Symbol, SynData, Syntax};
use std::collections::HashMap;
use std::rc::Rc;

fn space_flag() -> Symbol {
    Symbol::intern("typed")
}
fn key_context() -> Symbol {
    Symbol::intern("context?")
}

/// True while compiling a module in the typed language — the paper §6.2
/// `typed-context?` flag, living in the per-compilation store.
pub fn in_typed_context(exp: &Expander) -> bool {
    matches!(
        exp.meta_get(space_flag(), key_context()),
        Some(Datum::Bool(true))
    )
}

/// The optimizer hook: rewrites one type-annotated core form.
pub type OptimizeFn = dyn Fn(&Tcx, &Syntax) -> Result<Syntax, RtError>;

// ---------------------------------------------------------------------
// annotation forms (§3.1)
// ---------------------------------------------------------------------

/// Parses `[x : T]`, returning the identifier annotated with `T`.
fn parse_param(stx: &Syntax) -> Result<Syntax, RtError> {
    let parts = stx
        .to_list()
        .filter(|p| p.len() == 3 && p[0].is_identifier() && p[1].sym() == Some(Symbol::intern(":")))
        .ok_or_else(|| syntax_error("expected [identifier : Type]", stx))?;
    Ok(parts[0]
        .clone()
        .with_property(prop_annotation(), parts[2].clone().into()))
}

/// `(define: x : T rhs)` and `(define: (f [x : T] …) : R body …)`.
fn define_colon() -> Rc<NativeMacro> {
    native("define:", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("define:: bad syntax", &stx))?;
        if items.len() >= 5 && items[1].is_identifier() {
            // (define: name : T rhs)
            if items[2].sym() != Some(Symbol::intern(":")) || items.len() != 5 {
                return Err(syntax_error("define:: expected (define: x : T rhs)", &stx));
            }
            let name = items[1]
                .clone()
                .with_property(prop_annotation(), items[3].clone().into());
            return Ok(Expanded::Surface(lst(vec![
                id("define-values"),
                lst(vec![name]),
                items[4].clone(),
            ])));
        }
        // function form
        let header = items
            .get(1)
            .and_then(Syntax::as_list)
            .filter(|h| !h.is_empty() && h[0].is_identifier())
            .ok_or_else(|| syntax_error("define:: malformed header", &stx))?;
        if items.len() < 5 || items[2].sym() != Some(Symbol::intern(":")) {
            return Err(syntax_error(
                "define:: expected (define: (f [x : T] ...) : R body ...)",
                &stx,
            ));
        }
        let fname = header[0].clone();
        let params = header[1..]
            .iter()
            .map(parse_param)
            .collect::<Result<Vec<_>, _>>()?;
        let param_types: Vec<Syntax> = header[1..]
            .iter()
            .map(|p| p.as_list().unwrap()[2].clone())
            .collect();
        let ret = items[3].clone();
        let body = items[4..].to_vec();
        // fn type: (-> T … R)
        let mut fun_ty = vec![id("->")];
        fun_ty.extend(param_types);
        fun_ty.push(ret.clone());
        let fname = fname.with_property(prop_annotation(), lst(fun_ty).into());
        let lam = lst(vec![id("lambda"), lst(params)]).with_property(prop_return(), ret.into());
        let mut lam_items = lam.to_list().unwrap();
        lam_items.extend(body);
        let lam = lam.with_data(SynData::List(lam_items));
        Ok(Expanded::Surface(lst(vec![
            id("define-values"),
            lst(vec![fname]),
            lam,
        ])))
    })
}

/// `(: name T)` / `(: name : T …)` — forward type declarations.
fn colon_decl() -> Rc<NativeMacro> {
    native(":", |exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() >= 3 && p[1].is_identifier())
            .ok_or_else(|| syntax_error(":: expected (: name Type)", &stx))?;
        let name = items[1].sym().unwrap();
        let ty_stx = if items[2].sym() == Some(Symbol::intern(":")) {
            // infix form: (: f : A ... -> R)
            if items.len() == 4 {
                items[3].clone()
            } else {
                lst(items[3..].to_vec())
            }
        } else if items.len() == 3 {
            items[2].clone()
        } else {
            lst(items[2..].to_vec())
        };
        let tcx = Tcx::new(exp);
        let ty = tcx.parse_type(&ty_stx)?;
        tcx.add_pending(name, &ty);
        Ok(Expanded::Core(build::app(id("void"), vec![])))
    })
}

/// `(lambda: ([x : T] …) body …)` and `(lambda: ([x : T] …) : R body …)`.
fn lambda_colon(name: &'static str) -> Rc<NativeMacro> {
    native(name, move |_exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() >= 3)
            .ok_or_else(|| syntax_error("lambda:: bad syntax", &stx))?;
        let params = items[1]
            .as_list()
            .ok_or_else(|| syntax_error("lambda:: expected parameter list", &items[1]))?
            .iter()
            .map(parse_param)
            .collect::<Result<Vec<_>, _>>()?;
        let (ret, body_start) = if items[2].sym() == Some(Symbol::intern(":")) {
            if items.len() < 5 {
                return Err(syntax_error("lambda:: missing body", &stx));
            }
            (Some(items[3].clone()), 4)
        } else {
            (None, 2)
        };
        let mut lam = vec![id("lambda"), lst(params)];
        lam.extend(items[body_start..].iter().cloned());
        let mut out = lst(lam);
        if let Some(r) = ret {
            out = out.with_property(prop_return(), r.into());
        }
        Ok(Expanded::Surface(out))
    })
}

/// `(let: ([x : T e] …) body …)` and named
/// `(let: loop : R ([x : T e] …) body …)` (paper §3.1's `let:`).
fn let_colon() -> Rc<NativeMacro> {
    native("let:", |_exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() >= 3)
            .ok_or_else(|| syntax_error("let:: bad syntax", &stx))?;
        let parse_clause = |clause: &Syntax| -> Result<(Syntax, Syntax, Syntax), RtError> {
            let parts = clause
                .to_list()
                .filter(|p| {
                    p.len() == 4 && p[0].is_identifier() && p[1].sym() == Some(Symbol::intern(":"))
                })
                .ok_or_else(|| syntax_error("let:: expected [x : T rhs]", clause))?;
            Ok((parts[0].clone(), parts[2].clone(), parts[3].clone()))
        };
        if items[1].is_identifier() {
            // named: (let: loop : R ([x : T e] …) body …)
            if items.len() < 6 || items[2].sym() != Some(Symbol::intern(":")) {
                return Err(syntax_error(
                    "let:: expected (let: name : R ([x : T e] ...) body ...)",
                    &stx,
                ));
            }
            let loop_name = items[1].clone();
            let ret = items[3].clone();
            let clauses = items[4]
                .to_list()
                .ok_or_else(|| syntax_error("let:: malformed bindings", &items[4]))?
                .iter()
                .map(parse_clause)
                .collect::<Result<Vec<_>, _>>()?;
            let mut fun_ty = vec![id("->")];
            fun_ty.extend(clauses.iter().map(|(_, t, _)| t.clone()));
            fun_ty.push(ret.clone());
            let loop_ann = loop_name.with_property(prop_annotation(), lst(fun_ty).into());
            let params: Vec<Syntax> = clauses
                .iter()
                .map(|(x, t, _)| x.clone().with_property(prop_annotation(), t.clone().into()))
                .collect();
            let mut lam = vec![id("lambda"), lst(params)];
            lam.extend(items[5..].iter().cloned());
            let lam = lst(lam).with_property(prop_return(), ret.into());
            let mut call = vec![items[1].clone()];
            call.extend(clauses.iter().map(|(_, _, e)| e.clone()));
            return Ok(Expanded::Surface(lst(vec![
                id("letrec-values"),
                lst(vec![lst(vec![lst(vec![loop_ann]), lam])]),
                lst(call),
            ])));
        }
        // plain: ((lambda (annotated-params) body …) rhs …)
        let clauses = items[1]
            .to_list()
            .ok_or_else(|| syntax_error("let:: malformed bindings", &items[1]))?
            .iter()
            .map(parse_clause)
            .collect::<Result<Vec<_>, _>>()?;
        let params: Vec<Syntax> = clauses
            .iter()
            .map(|(x, t, _)| x.clone().with_property(prop_annotation(), t.clone().into()))
            .collect();
        let mut lam = vec![id("lambda"), lst(params)];
        lam.extend(items[2..].iter().cloned());
        let mut call = vec![lst(lam)];
        call.extend(clauses.iter().map(|(_, _, e)| e.clone()));
        Ok(Expanded::Surface(lst(call)))
    })
}

/// `(define-type Name T)` — a type alias, persisted across compilations.
fn define_type() -> Rc<NativeMacro> {
    native("define-type", |exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() == 3 && p[1].is_identifier())
            .ok_or_else(|| syntax_error("define-type: expected (define-type Name T)", &stx))?;
        let name = items[1].sym().unwrap();
        let tcx = Tcx::new(exp);
        tcx.add_alias(name, &items[2]);
        // validate eagerly so bad aliases fail at their definition
        tcx.parse_type(&items[1])?;
        Ok(Expanded::Core(build::app(id("void"), vec![])))
    })
}

/// `(ann e T)` — static ascription, no runtime effect.
fn ann_macro() -> Rc<NativeMacro> {
    native("ann", |exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() == 3)
            .ok_or_else(|| syntax_error("ann: expected (ann e T)", &stx))?;
        Tcx::new(exp).parse_type(&items[2])?; // validate eagerly
        let core = exp.expand_expr(&items[1])?;
        Ok(Expanded::Core(
            core.with_property(prop_ascribe(), items[2].clone().into()),
        ))
    })
}

/// `(cast e T)` — checked coercion: static type `T`, runtime check.
fn cast_macro() -> Rc<NativeMacro> {
    native("cast", |exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() == 3)
            .ok_or_else(|| syntax_error("cast: expected (cast e T)", &stx))?;
        let ty = Tcx::new(exp).parse_type(&items[2])?;
        let core = exp.expand_expr(&items[1])?;
        Ok(Expanded::Core(build::app(
            id("typed-cast"),
            vec![quote_datum(ty.to_datum()), core],
        )))
    })
}

/// `(foreign-ref name)` — a core-level reference to an already-unique
/// runtime name (used by generated interop code).
fn foreign_ref() -> Rc<NativeMacro> {
    native("foreign-ref", |_exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() == 2 && p[1].is_identifier())
            .ok_or_else(|| syntax_error("foreign-ref: bad syntax", &stx))?;
        Ok(Expanded::Core(items[1].clone()))
    })
}

// ---------------------------------------------------------------------
// require/typed (§6.1, paper figure 4)
// ---------------------------------------------------------------------

fn require_typed() -> Rc<NativeMacro> {
    native("require/typed", |exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() >= 3 && p[1].is_identifier())
            .ok_or_else(|| {
                syntax_error(
                    "require/typed: expected (require/typed mod [id Type] ...)",
                    &stx,
                )
            })?;
        let dep = items[1].sym().unwrap();
        let registry = exp
            .registry
            .upgrade()
            .ok_or_else(|| RtError::user("module registry is gone"))?;
        let compiled = registry.compile(dep).map_err(|e| e.with_span(stx.span()))?;
        {
            let mut requires = exp.requires.borrow_mut();
            if !requires.contains(&dep) {
                requires.push(dep);
            }
        }
        let mut defines = vec![id("begin")];
        for clause in &items[2..] {
            let parts = clause
                .to_list()
                .filter(|p| p.len() == 2 && p[0].is_identifier())
                .ok_or_else(|| syntax_error("require/typed: expected [id Type]", clause))?;
            let name = parts[0].clone();
            let ty = Tcx::new(exp).parse_type(&parts[1])?;
            // stage 1: locate the untyped export's runtime name
            let rt = compiled
                .exports
                .iter()
                .find_map(|(ext, b)| match b {
                    Binding::Variable(rt) if *ext == name.sym().unwrap() => Some(*rt),
                    _ => None,
                })
                .ok_or_else(|| {
                    syntax_error(
                        format!("require/typed: {dep} does not export {}", name),
                        clause,
                    )
                })?;
            // stage 2+3: define id as a contract wrapper around the
            // unsafe import; the type annotation rides on the binder and
            // the whole definition is trusted (begin-ignored)
            let binder = name.with_property(prop_annotation(), parts[1].clone().into());
            let rhs = build::app(
                id("typed-wrap-import"),
                vec![
                    quote_datum(ty.to_datum()),
                    lst(vec![id("foreign-ref"), id_sym(rt)]),
                    quote_sym(dep),
                    quote_sym(exp.module_name),
                ],
            );
            defines.push(
                lst(vec![id("define-values"), lst(vec![binder]), rhs])
                    .with_property(prop_ignore(), Datum::Bool(true).into()),
            );
        }
        Ok(Expanded::Surface(lst(defines)))
    })
}

// ---------------------------------------------------------------------
// the whole-module driver (§4 figure 2, §5, §6.2, §7)
// ---------------------------------------------------------------------

fn typed_module_begin(optimize: Option<Rc<OptimizeFn>>) -> Rc<NativeMacro> {
    native("#%module-begin", move |exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("#%module-begin: bad syntax", &stx))?;
        // §6.2: flag the compilation as typed *before* expanding the body,
        // so imported export-indirections choose the uncontracted variant
        exp.meta_put(space_flag(), key_context(), Datum::Bool(true));

        // figure 2: fully expand the module body to core forms
        let forms = exp.expand_module_forms(items[1..].to_vec())?;

        // figures 2–3: typecheck each form in a shared context
        let tcx = Tcx::new(exp);
        let mut checked = {
            let _t = lagoon_diag::time(lagoon_diag::Phase::Typecheck, exp.module_name);
            typecheck_module(&tcx, &forms)?
        };

        // §7: type-driven optimization over validated, annotated syntax
        if let Some(opt) = &optimize {
            let _t = lagoon_diag::time(lagoon_diag::Phase::Optimize, exp.module_name);
            checked = checked
                .iter()
                .map(|f| opt(&tcx, f))
                .collect::<Result<Vec<_>, _>>()?;
        }

        // §5 + §6.2: rewrite provides — persist types, add defensive
        // (contracted) variants, and export flag-dispatching indirections
        let provides: Vec<_> = exp.provides.borrow_mut().drain(..).collect();
        let mut extra_forms = Vec::new();
        for item in provides {
            let binding = exp
                .resolve(&item.internal)?
                .ok_or_else(|| syntax_error("provide: unbound identifier", &item.internal))?;
            let rt = match binding {
                Binding::Variable(rt) => rt,
                other => {
                    // macros etc. are not re-exported from typed modules
                    // (paper §6.3's restriction)
                    let _ = other;
                    return Err(syntax_error(
                        "typed modules may only provide value bindings",
                        &item.internal,
                    ));
                }
            };
            let ty = tcx
                .lookup(rt)
                .ok_or_else(|| type_error("provided identifier has no type", &item.internal))?;
            // §5: persist the export's type for later compilations
            tcx.add_type_persistent(rt, &ty);
            // stage 1 (§6.2): the defensive, contract-protected variant
            let defensive = Symbol::fresh(&format!("defensive-{}", item.external));
            extra_forms.push(lst(vec![
                id("define-values"),
                lst(vec![id_sym(defensive)]),
                build::app(
                    id("typed-wrap"),
                    vec![
                        quote_datum(ty.to_datum()),
                        id_sym(rt),
                        quote_sym(exp.module_name),
                    ],
                ),
            ]));
            // stage 2: the indirection that picks raw vs defensive based
            // on the importing compilation's typed-context? flag
            let indirection = export_indirection(item.external, rt, defensive);
            let mut extra = exp.extra_exports.borrow_mut();
            extra.push((item.external, Binding::Native(indirection)));
            // hidden raw exports so instances can link either variant
            extra.push((rt, Binding::Variable(rt)));
            extra.push((defensive, Binding::Variable(defensive)));
            // a stable alias for embedders (untyped clients from Rust)
            extra.push((
                Symbol::intern(&format!("{}#contracted", item.external)),
                Binding::Variable(defensive),
            ));
        }

        let mut out = vec![id("#%plain-module-begin")];
        out.extend(checked);
        out.extend(extra_forms);
        Ok(Expanded::Core(lst(out)))
    })
}

/// Recipe tag under which [`export_indirection`] transformers persist in
/// the compiled-module store (see `lagoon_core::store`).
const TYPED_EXPORT_RECIPE: &str = "typed-export-indirection";

/// Builds the per-export indirection transformer (paper §6.2's
/// `export-n`): in a typed compilation it expands to the raw variable; in
/// an untyped compilation, to the contract-protected one.
///
/// The transformer is pure in its three symbols, so it persists to the
/// compiled store as `(external raw defensive)` under
/// [`TYPED_EXPORT_RECIPE`] and rehydrates on load.
fn export_indirection(external: Symbol, raw: Symbol, defensive: Symbol) -> Rc<NativeMacro> {
    let recipe = Datum::list(vec![
        Datum::Symbol(external),
        Datum::Symbol(raw),
        Datum::Symbol(defensive),
    ]);
    external.with_str(|name| {
        native_with_recipe(name, TYPED_EXPORT_RECIPE, recipe, move |exp, stx, _| {
            let chosen = if in_typed_context(exp) {
                raw
            } else {
                defensive
            };
            if stx.is_identifier() {
                return Ok(Expanded::Core(Syntax::ident(chosen, stx.span())));
            }
            // application position: (id arg …)
            let items = stx
                .to_list()
                .ok_or_else(|| syntax_error("bad use of typed export", &stx))?;
            let mut out = vec![id("#%plain-app"), Syntax::ident(chosen, items[0].span())];
            for arg in &items[1..] {
                out.push(exp.expand_expr(arg)?);
            }
            Ok(Expanded::Core(stx.with_data(SynData::List(out))))
        })
    })
}

// ---------------------------------------------------------------------
// runtime support natives
// ---------------------------------------------------------------------

fn value_to_type(v: &Value) -> Result<Type, RtError> {
    let d = v
        .to_datum()
        .ok_or_else(|| RtError::type_error("expected a serialized type"))?;
    Type::from_datum(&d)
}

fn runtime_values() -> HashMap<Symbol, Value> {
    let mut out = HashMap::new();
    // (typed-wrap 'ty v 'typed-module): protect a typed export (§6.2)
    out.insert(
        Symbol::intern("typed-wrap"),
        Native::value("typed-wrap", Arity::exactly(3), |args| {
            let ty = value_to_type(&args[0])?;
            let module = args[2]
                .as_symbol()
                .unwrap_or_else(|| Symbol::intern("typed-module"));
            apply_contract(
                args[1].clone(),
                &ty.to_contract(),
                module,
                Symbol::intern("untyped-client"),
            )
        }),
    );
    // (typed-wrap-import 'ty v 'library 'client): protect an untyped
    // import (§6.1 stage 3)
    out.insert(
        Symbol::intern("typed-wrap-import"),
        Native::value("typed-wrap-import", Arity::exactly(4), |args| {
            let ty = value_to_type(&args[0])?;
            let library = args[2]
                .as_symbol()
                .unwrap_or_else(|| Symbol::intern("library"));
            let client = args[3]
                .as_symbol()
                .unwrap_or_else(|| Symbol::intern("typed-module"));
            apply_contract(args[1].clone(), &ty.to_contract(), library, client)
        }),
    );
    // (typed-cast 'ty v): first-order check now, wrap functions
    out.insert(
        Symbol::intern("typed-cast"),
        Native::value("typed-cast", Arity::exactly(2), |args| {
            let ty = value_to_type(&args[0])?;
            let c = ty.to_contract();
            match c {
                Contract::Function(_, _) => apply_contract(
                    args[1].clone(),
                    &c,
                    Symbol::intern("cast"),
                    Symbol::intern("cast"),
                ),
                flat => {
                    if flat.check_first_order(&args[1]) {
                        Ok(args[1].clone())
                    } else {
                        Err(RtError::contract(
                            Symbol::intern("cast"),
                            format!("cast to {ty} failed for {}", args[1].write_string()),
                        ))
                    }
                }
            }
        }),
    );
    out
}

/// Registers the typed sister language with `registry` under `name`,
/// optionally with a type-driven optimizer pass (§7).
pub fn register(registry: &Rc<ModuleRegistry>, name: &str, optimize: Option<Rc<OptimizeFn>>) {
    // typed exports loaded from the compiled store rebuild their
    // indirection transformers from the persisted symbol triple
    registry.register_rehydrator(TYPED_EXPORT_RECIPE, |datum| {
        let items = match datum {
            Datum::List(items) if items.len() == 3 => items,
            _ => return None,
        };
        let external = items[0].as_symbol()?;
        let raw = items[1].as_symbol()?;
        let defensive = items[2].as_symbol()?;
        Some(export_indirection(external, raw, defensive))
    });
    // foreign-ref is an ambient helper for generated interop code
    registry.table.bind(
        Symbol::intern("foreign-ref"),
        ScopeSet::new(),
        Binding::Native(foreign_ref()),
    );
    // the runtime support natives are ambient base variables; their
    // values are supplied at instantiation through the language's values
    for name in ["typed-wrap", "typed-wrap-import", "typed-cast"] {
        registry.table.bind(
            Symbol::intern(name),
            ScopeSet::new(),
            Binding::Variable(Symbol::intern(name)),
        );
    }
    let exports: Vec<(Symbol, Binding)> = vec![
        (
            "#%module-begin",
            Binding::Native(typed_module_begin(optimize)),
        ),
        ("define:", Binding::Native(define_colon())),
        (":", Binding::Native(colon_decl())),
        ("lambda:", Binding::Native(lambda_colon("lambda:"))),
        ("λ:", Binding::Native(lambda_colon("λ:"))),
        ("let:", Binding::Native(let_colon())),
        ("define-type", Binding::Native(define_type())),
        ("ann", Binding::Native(ann_macro())),
        ("cast", Binding::Native(cast_macro())),
        ("require/typed", Binding::Native(require_typed())),
    ]
    .into_iter()
    .map(|(n, b)| (Symbol::intern(n), b))
    .collect();
    registry.register_language(Language {
        name: Symbol::intern(name),
        exports,
        values: runtime_values(),
    });
}
