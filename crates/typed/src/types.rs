//! The type language of Typed Lagoon.
//!
//! A pragmatic subset of Typed Racket's types, sufficient for the paper's
//! examples and the benchmark suite: base types, fixed-length `List`
//! types, `Listof`/`Pairof`/`Vectorof`, function types, and unions.
//!
//! Types are parsed from surface syntax ([`Type::parse`]), serialized to
//! S-expression data for cross-compilation persistence ([`Type::to_datum`]
//! / [`Type::from_datum`], the paper §5 `serialize` round trip), and
//! compiled to run-time contracts ([`Type::to_contract`], the paper §6
//! `type->contract`).

use lagoon_core::syntax_error;
use lagoon_runtime::{Contract, RtError};
use lagoon_syntax::{Datum, Symbol, Syntax};
use std::fmt;
use std::rc::Rc;

/// A Typed Lagoon type.
#[derive(Clone, Debug, PartialEq)]
pub enum Type {
    /// Exact integers.
    Integer,
    /// Inexact reals (`Float`).
    Float,
    /// Any number (integers, floats, float-complexes).
    Number,
    /// Inexact complex numbers (`Float-Complex`).
    FloatComplex,
    /// Booleans.
    Boolean,
    /// Strings.
    Str,
    /// Characters.
    Char,
    /// Symbols.
    Sym,
    /// The void value.
    Void,
    /// The empty list.
    Null,
    /// The top type.
    Any,
    /// Homogeneous lists: `(Listof T)`.
    Listof(Rc<Type>),
    /// Fixed-length heterogeneous lists: `(List T …)`.
    List(Vec<Type>),
    /// Pairs: `(Pairof A B)`.
    Pairof(Rc<Type>, Rc<Type>),
    /// Vectors: `(Vectorof T)`.
    Vectorof(Rc<Type>),
    /// Functions: `(-> A … R)`.
    Fun(Vec<Type>, Rc<Type>),
    /// Unions: `(U T …)`.
    Union(Vec<Type>),
}

impl Type {
    /// The function type `(-> args… ret)`.
    pub fn fun(args: Vec<Type>, ret: Type) -> Type {
        Type::Fun(args, Rc::new(ret))
    }

    /// Whether `self` is a subtype of `other`.
    pub fn subtype(&self, other: &Type) -> bool {
        use Type::*;
        if self == other || matches!(other, Any) {
            return true;
        }
        match (self, other) {
            (Union(ts), _) => ts.iter().all(|t| t.subtype(other)),
            (_, Union(ts)) => ts.iter().any(|t| self.subtype(t)),
            (Integer, Number) | (Float, Number) | (FloatComplex, Number) => true,
            (Null, Listof(_)) => true,
            (List(ts), Listof(t)) => ts.iter().all(|x| x.subtype(t)),
            (List(ts), Null) => ts.is_empty(),
            (List(ts), Pairof(a, b)) => match ts.split_first() {
                Some((hd, tl)) => hd.subtype(a) && List(tl.to_vec()).subtype(b),
                None => false,
            },
            (List(a), List(b)) => a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.subtype(y)),
            (Listof(a), Listof(b)) => a.subtype(b),
            (Pairof(a1, b1), Pairof(a2, b2)) => a1.subtype(a2) && b1.subtype(b2),
            (Vectorof(a), Vectorof(b)) => a == b, // mutable: invariant
            (Fun(a1, r1), Fun(a2, r2)) => {
                a1.len() == a2.len()
                    && a2.iter().zip(a1).all(|(x, y)| x.subtype(y))
                    && r1.subtype(r2)
            }
            _ => false,
        }
    }

    /// The least practical upper bound of two types (used to join `if`
    /// branches).
    pub fn join(&self, other: &Type) -> Type {
        if self.subtype(other) {
            return other.clone();
        }
        if other.subtype(self) {
            return self.clone();
        }
        use Type::*;
        match (self, other) {
            (Integer | Float | FloatComplex | Number, Integer | Float | FloatComplex | Number) => {
                Number
            }
            (List(_) | Listof(_) | Null, List(_) | Listof(_) | Null) => {
                let elem = |t: &Type| -> Type {
                    match t {
                        Listof(e) => (**e).clone(),
                        List(ts) => ts
                            .iter()
                            .fold(None::<Type>, |acc, t| {
                                Some(match acc {
                                    None => t.clone(),
                                    Some(a) => a.join(t),
                                })
                            })
                            .unwrap_or(Any),
                        _ => Any,
                    }
                };
                Listof(Rc::new(elem(self).join(&elem(other))))
            }
            (Union(ts), o) | (o, Union(ts)) => {
                let mut out = ts.clone();
                if !out.iter().any(|t| o.subtype(t)) {
                    out.push(o.clone());
                }
                Union(out)
            }
            _ => Union(vec![self.clone(), other.clone()]),
        }
    }

    /// Parses a type expression, e.g. `Integer`, `(-> Number Number)`,
    /// `(Listof String)`, `(Number -> Number)`.
    ///
    /// # Errors
    ///
    /// Returns a syntax error for unknown type constructors.
    pub fn parse(stx: &Syntax) -> Result<Type, RtError> {
        if let Some(sym) = stx.sym() {
            return Type::parse_name(sym)
                .ok_or_else(|| syntax_error(format!("unknown type {sym}"), stx));
        }
        let items = stx
            .as_list()
            .ok_or_else(|| syntax_error("malformed type", stx))?;
        if items.is_empty() {
            return Err(syntax_error("malformed type", stx));
        }
        // infix arrow: (A … -> R)
        if let Some(pos) = items
            .iter()
            .position(|s| s.sym() == Some(Symbol::intern("->")))
        {
            if pos > 0 {
                if pos != items.len() - 2 {
                    return Err(syntax_error("-> type: expected one result", stx));
                }
                let args = items[..pos]
                    .iter()
                    .map(Type::parse)
                    .collect::<Result<Vec<_>, _>>()?;
                return Ok(Type::fun(args, Type::parse(&items[pos + 1])?));
            }
        }
        let head = items[0]
            .sym()
            .ok_or_else(|| syntax_error("malformed type", stx))?;
        head.with_str(|head| match head {
            "->" => {
                if items.len() < 2 {
                    return Err(syntax_error("-> type: expected a result", stx));
                }
                let args = items[1..items.len() - 1]
                    .iter()
                    .map(Type::parse)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Type::fun(args, Type::parse(&items[items.len() - 1])?))
            }
            "Listof" if items.len() == 2 => Ok(Type::Listof(Rc::new(Type::parse(&items[1])?))),
            "List" => Ok(Type::List(
                items[1..]
                    .iter()
                    .map(Type::parse)
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            "Pairof" if items.len() == 3 => Ok(Type::Pairof(
                Rc::new(Type::parse(&items[1])?),
                Rc::new(Type::parse(&items[2])?),
            )),
            "Vectorof" if items.len() == 2 => Ok(Type::Vectorof(Rc::new(Type::parse(&items[1])?))),
            "U" => Ok(Type::Union(
                items[1..]
                    .iter()
                    .map(Type::parse)
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            other => Err(syntax_error(
                format!("unknown type constructor {other}"),
                stx,
            )),
        })
    }

    fn parse_name(sym: Symbol) -> Option<Type> {
        sym.with_str(|name| {
            Some(match name {
                "Integer" | "Exact-Integer" | "Fixnum" | "Natural" => Type::Integer,
                "Float" | "Flonum" | "Real" | "Inexact-Real" => Type::Float,
                "Number" | "Complex" => Type::Number,
                "Float-Complex" => Type::FloatComplex,
                "Boolean" => Type::Boolean,
                "String" => Type::Str,
                "Char" => Type::Char,
                "Symbol" => Type::Sym,
                "Void" => Type::Void,
                "Null" => Type::Null,
                "Any" => Type::Any,
                "Bytes" => Type::Listof(Rc::new(Type::Integer)), // byte strings are int lists (DESIGN.md)
                "Path" => Type::Str,
                _ => return None,
            })
        })
    }

    /// Serializes to S-expression data (the paper §5 `serialize`).
    pub fn to_datum(&self) -> Datum {
        use Type::*;
        let sym = |s: &str| Datum::sym(s);
        match self {
            Integer => sym("Integer"),
            Float => sym("Float"),
            Number => sym("Number"),
            FloatComplex => sym("Float-Complex"),
            Boolean => sym("Boolean"),
            Str => sym("String"),
            Char => sym("Char"),
            Sym => sym("Symbol"),
            Void => sym("Void"),
            Null => sym("Null"),
            Any => sym("Any"),
            Listof(t) => Datum::list(vec![sym("Listof"), t.to_datum()]),
            List(ts) => {
                let mut out = vec![sym("List")];
                out.extend(ts.iter().map(Type::to_datum));
                Datum::list(out)
            }
            Pairof(a, b) => Datum::list(vec![sym("Pairof"), a.to_datum(), b.to_datum()]),
            Vectorof(t) => Datum::list(vec![sym("Vectorof"), t.to_datum()]),
            Fun(args, ret) => {
                let mut out = vec![sym("->")];
                out.extend(args.iter().map(Type::to_datum));
                out.push(ret.to_datum());
                Datum::list(out)
            }
            Union(ts) => {
                let mut out = vec![sym("U")];
                out.extend(ts.iter().map(Type::to_datum));
                Datum::list(out)
            }
        }
    }

    /// Deserializes from S-expression data (the paper §5 `parse-type` of a
    /// persisted declaration).
    ///
    /// # Errors
    ///
    /// Returns an error on malformed data.
    pub fn from_datum(d: &Datum) -> Result<Type, RtError> {
        let stx = Syntax::from_datum(d, lagoon_syntax::Span::synthetic(), &Default::default());
        Type::parse(&stx)
    }

    /// Compiles to a run-time contract (the paper §6 `type->contract`).
    pub fn to_contract(&self) -> Contract {
        use Type::*;
        match self {
            Integer => Contract::Integer,
            Float => Contract::Float,
            Number => Contract::Number,
            FloatComplex => Contract::FloatComplex,
            Boolean => Contract::Boolean,
            Str => Contract::Str,
            Char => Contract::Char,
            Sym => Contract::Sym,
            Void => Contract::Void,
            Null => Contract::Null,
            Any => Contract::Any,
            Listof(t) => Contract::ListOf(Box::new(t.to_contract())),
            List(ts) => {
                // fixed-length list: a chain of pair contracts
                let mut c = Contract::Null;
                for t in ts.iter().rev() {
                    c = Contract::PairOf(Box::new(t.to_contract()), Box::new(c));
                }
                c
            }
            Pairof(a, b) => Contract::PairOf(Box::new(a.to_contract()), Box::new(b.to_contract())),
            Vectorof(t) => Contract::VectorOf(Box::new(t.to_contract())),
            Fun(args, ret) => Contract::Function(
                args.iter().map(Type::to_contract).collect(),
                Box::new(ret.to_contract()),
            ),
            Union(ts) => Contract::Union(ts.iter().map(Type::to_contract).collect()),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_datum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_syntax::read_syntax;

    fn t(src: &str) -> Type {
        Type::parse(&read_syntax(src, "<t>").unwrap()).unwrap()
    }

    #[test]
    fn parse_base_types() {
        assert_eq!(t("Integer"), Type::Integer);
        assert_eq!(t("Float"), Type::Float);
        assert_eq!(t("Float-Complex"), Type::FloatComplex);
        assert_eq!(t("Boolean"), Type::Boolean);
        assert_eq!(t("Any"), Type::Any);
    }

    #[test]
    fn parse_constructors() {
        assert_eq!(t("(Listof Integer)"), Type::Listof(Rc::new(Type::Integer)));
        assert_eq!(
            t("(List Number Number Number)"),
            Type::List(vec![Type::Number, Type::Number, Type::Number])
        );
        assert_eq!(
            t("(-> Integer Integer)"),
            Type::fun(vec![Type::Integer], Type::Integer)
        );
        // paper §3.2 infix style: (Number -> Number)
        assert_eq!(
            t("(Number -> Number)"),
            Type::fun(vec![Type::Number], Type::Number)
        );
        assert_eq!(
            t("(Integer Integer -> Integer)"),
            Type::fun(vec![Type::Integer, Type::Integer], Type::Integer)
        );
        assert_eq!(
            t("(U Integer String)"),
            Type::Union(vec![Type::Integer, Type::Str])
        );
        // paper §6.1: (Bytes -> Bytes)
        assert!(matches!(t("(Bytes -> Bytes)"), Type::Fun(_, _)));
    }

    #[test]
    fn parse_errors() {
        assert!(Type::parse(&read_syntax("Unknown-Type", "<t>").unwrap()).is_err());
        assert!(Type::parse(&read_syntax("(Listof)", "<t>").unwrap()).is_err());
        assert!(Type::parse(&read_syntax("(A -> B -> C)", "<t>").unwrap()).is_err());
    }

    #[test]
    fn subtyping_lattice() {
        assert!(Type::Integer.subtype(&Type::Number));
        assert!(Type::Float.subtype(&Type::Number));
        assert!(!Type::Number.subtype(&Type::Integer));
        assert!(!Type::Integer.subtype(&Type::Float));
        assert!(Type::Integer.subtype(&Type::Any));
        assert!(t("(List Integer Integer)").subtype(&t("(Listof Integer)")));
        assert!(t("(List Integer)").subtype(&t("(Listof Number)")));
        assert!(!t("(Listof Number)").subtype(&t("(Listof Integer)")));
        assert!(t("(Listof Integer)").subtype(&t("(Listof Number)")));
        assert!(t("Null").subtype(&t("(Listof Integer)")));
        assert!(t("(List Integer Float)").subtype(&t("(Pairof Integer (Listof Number))")));
    }

    #[test]
    fn function_subtyping_variance() {
        // contravariant domains, covariant range
        let f1 = t("(-> Number Integer)");
        let f2 = t("(-> Integer Number)");
        assert!(f1.subtype(&f2));
        assert!(!f2.subtype(&f1));
    }

    #[test]
    fn union_subtyping() {
        assert!(Type::Integer.subtype(&t("(U Integer String)")));
        assert!(t("(U Integer Float)").subtype(&Type::Number));
        assert!(!t("(U Integer String)").subtype(&Type::Number));
    }

    #[test]
    fn joins() {
        assert_eq!(Type::Integer.join(&Type::Integer), Type::Integer);
        assert_eq!(Type::Integer.join(&Type::Float), Type::Number);
        assert_eq!(Type::Integer.join(&Type::Number), Type::Number);
        let j = Type::Integer.join(&Type::Str);
        assert!(Type::Integer.subtype(&j));
        assert!(Type::Str.subtype(&j));
        let j = t("(List Integer)").join(&t("Null"));
        assert!(t("Null").subtype(&j));
    }

    #[test]
    fn serialization_round_trip() {
        for src in [
            "Integer",
            "(-> Integer (Listof String))",
            "(U Integer Float (Listof Any))",
            "(Pairof Integer (Vectorof Float))",
            "(List Number Number Number)",
            "Float-Complex",
        ] {
            let ty = t(src);
            let d = ty.to_datum();
            assert_eq!(Type::from_datum(&d).unwrap(), ty, "round trip of {src}");
        }
    }

    #[test]
    fn contract_compilation() {
        assert_eq!(t("Integer").to_contract(), Contract::Integer);
        assert_eq!(
            t("(-> Integer String)").to_contract(),
            Contract::Function(vec![Contract::Integer], Box::new(Contract::Str))
        );
        assert_eq!(
            t("(List Integer)").to_contract(),
            Contract::PairOf(Box::new(Contract::Integer), Box::new(Contract::Null))
        );
    }
}
