//! Typing rules for base-language primitives.
//!
//! The paper's typechecker consults an "initial environment specifying
//! types for any identifiers that the language provides, such as `+`"
//! (§4.2). Lagoon's primitives are variadic and overloaded across the
//! numeric tower, and the prelude's list functions are polymorphic, so a
//! table of fixed `Type`s would not do: each primitive instead gets a
//! *rule* from argument types to result type.

use crate::types::Type;
use std::rc::Rc;

/// Outcome of an intrinsic rule.
pub type RuleResult = Result<Type, String>;

fn num(name: &str, args: &[Type]) -> Result<(), String> {
    for a in args {
        if !a.subtype(&Type::Number) {
            return Err(format!("{name}: expected a number, got {a}"));
        }
    }
    Ok(())
}

fn real(name: &str, args: &[Type]) -> Result<(), String> {
    let real_t = Type::Union(vec![Type::Integer, Type::Float]);
    for a in args {
        if !a.subtype(&real_t) {
            return Err(format!("{name}: expected a real number, got {a}"));
        }
    }
    Ok(())
}

/// Numeric join: complex beats float beats integer.
fn arith_result(args: &[Type]) -> Type {
    let mut any_complex = false;
    let mut any_float = false;
    let mut any_number = false;
    for a in args {
        match a {
            Type::FloatComplex => any_complex = true,
            Type::Float => any_float = true,
            Type::Integer => {}
            _ => any_number = true,
        }
    }
    if any_complex {
        Type::FloatComplex
    } else if any_number {
        Type::Number
    } else if any_float {
        Type::Float
    } else {
        Type::Integer
    }
}

fn elem_of(name: &str, t: &Type) -> Result<Type, String> {
    match t {
        Type::Listof(e) => Ok((**e).clone()),
        Type::List(ts) => match ts.first() {
            Some(hd) => Ok(hd.clone()),
            None => Err(format!("{name}: the list is known to be empty")),
        },
        Type::Pairof(a, _) => Ok((**a).clone()),
        other => Err(format!("{name}: expected a pair, got {other}")),
    }
}

fn tail_of(name: &str, t: &Type) -> Result<Type, String> {
    match t {
        Type::Listof(_) => Ok(t.clone()),
        Type::List(ts) => match ts.split_first() {
            Some((_, tl)) => Ok(Type::List(tl.to_vec())),
            None => Err(format!("{name}: the list is known to be empty")),
        },
        Type::Pairof(_, b) => Ok((**b).clone()),
        other => Err(format!("{name}: expected a pair, got {other}")),
    }
}

fn listof_elem(t: &Type) -> Option<Type> {
    match t {
        Type::Null => Some(Type::Union(Vec::new())),
        Type::Listof(e) => Some((**e).clone()),
        Type::List(ts) => Some(
            ts.iter()
                .fold(None::<Type>, |acc, t| {
                    Some(match acc {
                        None => t.clone(),
                        Some(a) => a.join(t),
                    })
                })
                .unwrap_or(Type::Union(Vec::new())),
        ),
        _ => None,
    }
}

fn expect_fun(name: &str, t: &Type, arity: usize) -> Result<(Vec<Type>, Type), String> {
    match t {
        Type::Fun(args, ret) if args.len() == arity => Ok((args.clone(), (**ret).clone())),
        other => Err(format!(
            "{name}: expected a {arity}-argument function, got {other}"
        )),
    }
}

/// Applies the intrinsic typing rule for primitive `name` to argument
/// types, if `name` has one.
///
/// Returns `None` when `name` is not an intrinsic (the checker then falls
/// back to the variable's declared type). `Some(Err(_))` is a type error.
pub fn apply_rule(name: &str, args: &[Type]) -> Option<RuleResult> {
    // arity floor: the rules below index `args` directly, so a call with
    // too few arguments must become a type error here, not a panic
    let min = match name {
        "foldl" | "foldr" => 3,
        "cons" | "filter" | "build-list" => 2,
        "car" | "first" | "cdr" | "rest" | "cadr" | "second" | "caddr" | "third" | "reverse"
        | "list-ref" | "list-tail" | "last" | "vector-ref" | "vector->list" | "list->vector"
        | "vector-copy" | "map" | "map1" | "list-max" | "vector-map" | "list-copy" => 1,
        _ => 0,
    };
    if args.len() < min {
        return Some(Err(format!(
            "{name}: expects at least {min} argument(s), got {}",
            args.len()
        )));
    }
    let r = match name {
        "+" | "-" | "*" => {
            if let Err(e) = num(name, args) {
                return Some(Err(e));
            }
            Ok(arith_result(args))
        }
        "/" => {
            if let Err(e) = num(name, args) {
                return Some(Err(e));
            }
            // integer division may produce a float (Lagoon has no exact
            // rationals — DESIGN.md)
            match arith_result(args) {
                Type::Integer => Ok(Type::Number),
                t => Ok(t),
            }
        }
        "<" | "<=" | ">" | ">=" => {
            if let Err(e) = real(name, args) {
                return Some(Err(e));
            }
            Ok(Type::Boolean)
        }
        "=" => {
            if let Err(e) = num(name, args) {
                return Some(Err(e));
            }
            Ok(Type::Boolean)
        }
        "add1" | "sub1" | "abs" => {
            if let Err(e) = real(name, args) {
                return Some(Err(e));
            }
            Ok(arith_result(args))
        }
        "min" | "max" => {
            if let Err(e) = real(name, args) {
                return Some(Err(e));
            }
            Ok(arith_result(args))
        }
        "magnitude" => {
            if let Err(e) = num(name, args) {
                return Some(Err(e));
            }
            Ok(match args.first() {
                Some(Type::Integer) => Type::Integer,
                Some(Type::Float) | Some(Type::FloatComplex) => Type::Float,
                _ => Type::Number,
            })
        }
        "sqrt" => {
            if let Err(e) = num(name, args) {
                return Some(Err(e));
            }
            Ok(match args.first() {
                // Typed Lagoon assumes Float sqrt stays real; see DESIGN.md
                Some(Type::Float) => Type::Float,
                Some(Type::FloatComplex) => Type::FloatComplex,
                _ => Type::Number,
            })
        }
        "sin" | "cos" | "tan" | "asin" | "acos" | "atan" | "log" | "exp" => {
            if let Err(e) = real(name, args) {
                return Some(Err(e));
            }
            Ok(Type::Float)
        }
        "expt" => {
            if let Err(e) = num(name, args) {
                return Some(Err(e));
            }
            Ok(match (args.first(), args.get(1)) {
                (Some(Type::Integer), Some(Type::Integer)) => Type::Integer,
                _ => Type::Float,
            })
        }
        "quotient" | "remainder" | "modulo" => {
            for a in args {
                if !a.subtype(&Type::Integer) {
                    return Some(Err(format!("{name}: expected an integer, got {a}")));
                }
            }
            Ok(Type::Integer)
        }
        "exact->inexact" => Ok(match args.first() {
            Some(Type::FloatComplex) => Type::FloatComplex,
            _ => Type::Float,
        }),
        "exact" | "inexact->exact" => Ok(Type::Integer),
        "floor" | "ceiling" | "round" | "truncate" => Ok(match args.first() {
            Some(Type::Integer) => Type::Integer,
            _ => Type::Float,
        }),
        "zero?" | "positive?" | "negative?" => {
            if let Err(e) = num(name, args) {
                return Some(Err(e));
            }
            Ok(Type::Boolean)
        }
        "even?" | "odd?" => {
            for a in args {
                if !a.subtype(&Type::Integer) {
                    return Some(Err(format!("{name}: expected an integer, got {a}")));
                }
            }
            Ok(Type::Boolean)
        }
        "number?" | "integer?" | "exact-integer?" | "flonum?" | "real?" | "exact?" | "inexact?"
        | "boolean?" | "symbol?" | "string?" | "char?" | "procedure?" | "void?" | "keyword?"
        | "box?" | "vector?" | "not" | "eq?" | "eqv?" | "equal?" | "null?" | "pair?" | "list?" => {
            Ok(Type::Boolean)
        }

        "make-rectangular" => {
            if let Err(e) = real(name, args) {
                return Some(Err(e));
            }
            Ok(Type::FloatComplex)
        }
        "real-part" | "imag-part" => Ok(match args.first() {
            Some(Type::Integer) => Type::Integer,
            _ => Type::Float,
        }),

        // pairs and lists
        "cons" => {
            let (a, b) = (args[0].clone(), args[1].clone());
            Ok(match &b {
                Type::Null => Type::List(vec![a]),
                Type::List(ts) => {
                    let mut out = vec![a];
                    out.extend(ts.iter().cloned());
                    Type::List(out)
                }
                Type::Listof(t) => Type::Listof(Rc::new(a.join(t))),
                _ => Type::Pairof(Rc::new(a), Rc::new(b)),
            })
        }
        "car" | "first" => elem_of(name, &args[0]),
        "cdr" | "rest" => tail_of(name, &args[0]),
        "cadr" | "second" => {
            let t = match tail_of(name, &args[0]) {
                Ok(t) => t,
                Err(e) => return Some(Err(e)),
            };
            match elem_of(name, &t) {
                Ok(t) => Ok(t),
                Err(e) => Err(e),
            }
        }
        "caddr" | "third" => {
            let mut t = args[0].clone();
            for _ in 0..2 {
                t = match tail_of(name, &t) {
                    Ok(t) => t,
                    Err(e) => return Some(Err(e)),
                };
            }
            match elem_of(name, &t) {
                Ok(t) => Ok(t),
                Err(e) => Err(e),
            }
        }
        "list" => Ok(Type::List(args.to_vec())),
        "length" => Ok(Type::Integer),
        "reverse" => Ok(match &args[0] {
            Type::List(ts) => Type::List(ts.iter().rev().cloned().collect()),
            t => t.clone(),
        }),
        "append" => {
            let mut elem: Option<Type> = None;
            for a in args {
                match listof_elem(a) {
                    Some(e) => {
                        elem = Some(match elem {
                            None => e,
                            Some(acc) => acc.join(&e),
                        })
                    }
                    None => return Some(Err(format!("append: expected a list, got {a}"))),
                }
            }
            Ok(match elem {
                Some(Type::Union(ts)) if ts.is_empty() => Type::Null,
                Some(e) => Type::Listof(Rc::new(e)),
                None => Type::Null,
            })
        }
        "list-ref" => match listof_elem(&args[0]) {
            Some(e) => Ok(e),
            None => Err(format!("list-ref: expected a list, got {}", args[0])),
        },
        "list-tail" => Ok(match &args[0] {
            Type::Listof(_) => args[0].clone(),
            t => match listof_elem(t) {
                Some(e) => Type::Listof(Rc::new(e)),
                None => return Some(Err(format!("list-tail: expected a list, got {t}"))),
            },
        }),
        "last" => match listof_elem(&args[0]) {
            Some(e) => Ok(e),
            None => Err(format!("last: expected a list, got {}", args[0])),
        },
        "memq" | "memv" | "member" | "assq" | "assv" | "assoc" => Ok(Type::Any),

        // vectors
        "vector" => Ok(Type::Vectorof(Rc::new(
            args.iter()
                .fold(None::<Type>, |acc, t| {
                    Some(match acc {
                        None => t.clone(),
                        Some(a) => a.join(t),
                    })
                })
                .unwrap_or(Type::Any),
        ))),
        "make-vector" => Ok(Type::Vectorof(Rc::new(
            args.get(1).cloned().unwrap_or(Type::Integer),
        ))),
        "vector-ref" => match &args[0] {
            Type::Vectorof(t) => Ok((**t).clone()),
            t => Err(format!("vector-ref: expected a vector, got {t}")),
        },
        "vector-set!" => Ok(Type::Void),
        "vector-fill!" => Ok(Type::Void),
        "vector-length" => Ok(Type::Integer),
        "vector->list" => match &args[0] {
            Type::Vectorof(t) => Ok(Type::Listof(t.clone())),
            t => Err(format!("vector->list: expected a vector, got {t}")),
        },
        "list->vector" => match listof_elem(&args[0]) {
            Some(e) => Ok(Type::Vectorof(Rc::new(e))),
            None => Err(format!("list->vector: expected a list, got {}", args[0])),
        },
        "vector-copy" => Ok(args[0].clone()),

        // strings and characters
        "string-append" | "substring" | "string-upcase" | "string-downcase" | "symbol->string"
        | "number->string" | "list->string" | "format" => Ok(Type::Str),
        "string-length" | "char->integer" => Ok(Type::Integer),
        "string-ref" | "integer->char" | "char-upcase" | "char-downcase" => Ok(Type::Char),
        "string=?" | "string<?" | "char=?" | "char<?" | "char-alphabetic?" | "char-numeric?"
        | "char-whitespace?" => Ok(Type::Boolean),
        "string->symbol" | "gensym" => Ok(Type::Sym),
        "string->number" => Ok(Type::Union(vec![Type::Number, Type::Boolean])),
        "string->list" => Ok(Type::Listof(Rc::new(Type::Char))),
        "string->bytes" => Ok(Type::Listof(Rc::new(Type::Integer))),

        // I/O and misc
        "display" | "displayln" | "write" | "print" | "newline" | "printf" | "void" => {
            Ok(Type::Void)
        }
        "error" => Ok(Type::Any),
        "current-seconds" => Ok(Type::Integer),
        "current-inexact-milliseconds" => Ok(Type::Float),
        "random" => Ok(match args.first() {
            Some(Type::Integer) => Type::Integer,
            None => Type::Float,
            Some(t) => return Some(Err(format!("random: expected an integer, got {t}"))),
        }),
        "random-seed" => Ok(Type::Void),

        // polymorphic prelude functions
        "map" | "map1" => {
            let (doms, rng) = match expect_fun(name, &args[0], args.len() - 1) {
                Ok(f) => f,
                Err(e) => return Some(Err(e)),
            };
            for (dom, lst) in doms.iter().zip(&args[1..]) {
                match listof_elem(lst) {
                    Some(e) => {
                        if !e.subtype(dom) {
                            return Some(Err(format!(
                                "{name}: element type {e} does not fit parameter type {dom}"
                            )));
                        }
                    }
                    None => return Some(Err(format!("{name}: expected a list, got {lst}"))),
                }
            }
            Ok(Type::Listof(Rc::new(rng)))
        }
        "for-each" | "vector-for-each" => Ok(Type::Void),
        "filter" => match listof_elem(&args[1]) {
            Some(e) => Ok(Type::Listof(Rc::new(e))),
            None => Err(format!("filter: expected a list, got {}", args[1])),
        },
        "foldl" | "foldr" => {
            let (doms, rng) = match expect_fun(name, &args[0], 2) {
                Ok(f) => f,
                Err(e) => return Some(Err(e)),
            };
            let elem = match listof_elem(&args[2]) {
                Some(e) => e,
                None => return Some(Err(format!("{name}: expected a list, got {}", args[2]))),
            };
            if !elem.subtype(&doms[0]) {
                return Some(Err(format!(
                    "{name}: element type {elem} does not fit parameter type {}",
                    doms[0]
                )));
            }
            Ok(args[1].join(&rng))
        }
        "build-list" => {
            let (_, rng) = match expect_fun(name, &args[1], 1) {
                Ok(f) => f,
                Err(e) => return Some(Err(e)),
            };
            Ok(Type::Listof(Rc::new(rng)))
        }
        "andmap" | "ormap" => Ok(Type::Boolean),
        "iota" | "range" => Ok(Type::Listof(Rc::new(Type::Integer))),
        "sum" => Ok(Type::Number),
        "list-max" => match listof_elem(&args[0]) {
            Some(e) => Ok(e),
            None => Err(format!("list-max: expected a list, got {}", args[0])),
        },
        "vector-map" => {
            let (_, rng) = match expect_fun(name, &args[0], 1) {
                Ok(f) => f,
                Err(e) => return Some(Err(e)),
            };
            Ok(Type::Vectorof(Rc::new(rng)))
        }
        "list-copy" => Ok(args[0].clone()),
        "apply" => Ok(Type::Any),

        _ => return None,
    };
    Some(r)
}

/// A plain function type for a primitive used as a first-class value
/// (e.g. `(foldl + 0 lst)`).
pub fn first_class_type(name: &str) -> Option<Type> {
    let t = match name {
        "+" | "-" | "*" | "min" | "max" => {
            Type::fun(vec![Type::Number, Type::Number], Type::Number)
        }
        "/" => Type::fun(vec![Type::Number, Type::Number], Type::Number),
        "<" | "<=" | ">" | ">=" | "=" => Type::fun(vec![Type::Number, Type::Number], Type::Boolean),
        "add1" | "sub1" | "abs" => Type::fun(vec![Type::Number], Type::Number),
        "cons" => Type::fun(
            vec![Type::Any, Type::Any],
            Type::Pairof(Rc::new(Type::Any), Rc::new(Type::Any)),
        ),
        "car" | "cdr" | "first" | "rest" => Type::fun(vec![Type::Any], Type::Any),
        "not" => Type::fun(vec![Type::Any], Type::Boolean),
        "zero?" | "even?" | "odd?" | "null?" | "pair?" => Type::fun(vec![Type::Any], Type::Boolean),
        "display" | "displayln" | "write" => Type::fun(vec![Type::Any], Type::Void),
        _ => return None,
    };
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(name: &str, args: &[Type]) -> Type {
        apply_rule(name, args).unwrap().unwrap()
    }

    #[test]
    fn arithmetic_results() {
        assert_eq!(rule("+", &[Type::Integer, Type::Integer]), Type::Integer);
        assert_eq!(rule("+", &[Type::Integer, Type::Float]), Type::Float);
        assert_eq!(rule("*", &[Type::Float, Type::Float]), Type::Float);
        assert_eq!(
            rule("*", &[Type::FloatComplex, Type::Float]),
            Type::FloatComplex
        );
        assert_eq!(rule("/", &[Type::Integer, Type::Integer]), Type::Number);
        assert_eq!(rule("/", &[Type::Float, Type::Float]), Type::Float);
    }

    #[test]
    fn arithmetic_rejects_non_numbers() {
        assert!(apply_rule("+", &[Type::Str, Type::Integer])
            .unwrap()
            .is_err());
        assert!(apply_rule("<", &[Type::FloatComplex, Type::Integer])
            .unwrap()
            .is_err());
    }

    #[test]
    fn list_rules() {
        let li = Type::List(vec![Type::Integer, Type::Str]);
        assert_eq!(rule("car", std::slice::from_ref(&li)), Type::Integer);
        assert_eq!(
            rule("cdr", std::slice::from_ref(&li)),
            Type::List(vec![Type::Str])
        );
        assert_eq!(rule("second", std::slice::from_ref(&li)), Type::Str);
        let lo = Type::Listof(Rc::new(Type::Float));
        assert_eq!(rule("car", std::slice::from_ref(&lo)), Type::Float);
        assert_eq!(rule("cdr", std::slice::from_ref(&lo)), lo);
        assert!(apply_rule("car", &[Type::Integer]).unwrap().is_err());
        assert!(apply_rule("car", &[Type::Null]).unwrap().is_err());
    }

    #[test]
    fn cons_rules() {
        assert_eq!(
            rule("cons", &[Type::Integer, Type::Null]),
            Type::List(vec![Type::Integer])
        );
        assert_eq!(
            rule(
                "cons",
                &[Type::Integer, Type::Listof(Rc::new(Type::Integer))]
            ),
            Type::Listof(Rc::new(Type::Integer))
        );
        assert_eq!(
            rule("cons", &[Type::Float, Type::Listof(Rc::new(Type::Integer))]),
            Type::Listof(Rc::new(Type::Number))
        );
    }

    #[test]
    fn higher_order_rules() {
        let f = Type::fun(vec![Type::Integer], Type::Float);
        let l = Type::Listof(Rc::new(Type::Integer));
        assert_eq!(
            rule("map", &[f, l.clone()]),
            Type::Listof(Rc::new(Type::Float))
        );
        let pred = Type::fun(vec![Type::Integer], Type::Boolean);
        assert_eq!(rule("filter", &[pred, l.clone()]), l);
        let acc = Type::fun(vec![Type::Integer, Type::Integer], Type::Integer);
        assert_eq!(rule("foldl", &[acc, Type::Integer, l]), Type::Integer);
    }

    #[test]
    fn unknown_primitives_are_not_intrinsic() {
        assert!(apply_rule("definitely-not-a-primitive", &[]).is_none());
    }

    #[test]
    fn first_class_types_exist_for_common_ops() {
        assert!(first_class_type("+").is_some());
        assert!(first_class_type("nope").is_none());
    }
}
