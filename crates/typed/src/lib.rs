//! # lagoon-typed
//!
//! The typed sister language of Lagoon — the paper's running example
//! (*Languages as Libraries*, PLDI 2011, §§3–6) — implemented entirely as
//! a library over `lagoon-core`'s public extension API:
//!
//! * [`types`] — the type language, serialization (§5), and
//!   `type->contract` (§6);
//! * [`intrinsics`] — typing rules for the base primitives (§4.2's
//!   initial environment);
//! * [`check`] — the whole-module typechecker over locally-expanded core
//!   forms (figures 2–3), writing computed types back as syntax
//!   properties for the optimizer;
//! * [`lang`] — the language itself: annotation forms, the
//!   `#%module-begin` driver, `require/typed`, export contracts, and the
//!   `typed-context?` mechanism (§6.2).
//!
//! Register it with [`lang::register`]; pass an optimizer hook from
//! `lagoon-optimizer` to enable §7's type-driven optimization.

#![warn(missing_docs)]

pub mod check;
pub mod intrinsics;
pub mod lang;
pub mod types;

pub use check::{typecheck, typecheck_module, Tcx};
pub use lang::{in_typed_context, register, OptimizeFn};
pub use types::Type;
