//! The typechecker: whole-module, context-sensitive checking over
//! fully-expanded core forms (paper §4, figures 2 and 3).
//!
//! Design points straight from the paper:
//!
//! * the checker sees **only core forms** — every surface form, including
//!   user-defined macros, was reduced by `local-expand` before checking
//!   (§4.2);
//! * the type environment is keyed by identifier — after expansion every
//!   binding has a globally unique name (§4.3) — and lives in the
//!   expander's compile-time declaration table, so exported bindings can
//!   be persisted for separate compilation (§5);
//! * annotations ride on binders as syntax properties (`type-annotation`,
//!   attached by `define:`/`lambda:`; §3.1) and are read back with
//!   [`Tcx::annotation_of`] (the paper's `type-of`);
//! * the checker **writes every expression's computed type back onto the
//!   syntax** (property `type`), which is how the optimizer later consults
//!   validated type information (§7.1).

use crate::intrinsics;
use crate::types::Type;
use lagoon_core::{syntax_error, Expander};
use lagoon_runtime::RtError;
use lagoon_syntax::{Datum, PropValue, Symbol, SynData, Syntax};

fn space_types() -> Symbol {
    Symbol::intern("typed#types")
}
fn space_pending() -> Symbol {
    Symbol::intern("typed#pending")
}
fn space_aliases() -> Symbol {
    Symbol::intern("typed#aliases")
}
/// Property carrying a binder's declared type (paper §3.1).
pub fn prop_annotation() -> Symbol {
    Symbol::intern("type-annotation")
}
/// Property carrying a lambda's declared return type.
pub fn prop_return() -> Symbol {
    Symbol::intern("return-annotation")
}
/// Property carrying an expression's *computed* type (written by the
/// checker, read by the optimizer).
pub fn prop_type() -> Symbol {
    Symbol::intern("type")
}
/// Property marking forms the checker must trust, not check (the paper's
/// `begin-ignored` around `require/typed` residue, §6.1).
pub fn prop_ignore() -> Symbol {
    Symbol::intern("typed-ignore")
}
fn prop_source() -> Symbol {
    Symbol::intern("source-name")
}
/// Property carrying a static ascription (`ann`).
pub fn prop_ascribe() -> Symbol {
    Symbol::intern("ascribe-type")
}

/// The typechecking context: a thin wrapper over the expander's
/// compile-time tables.
pub struct Tcx<'a> {
    /// The compiling module's expander.
    pub exp: &'a Expander,
}

impl<'a> Tcx<'a> {
    /// Creates a context over `exp`.
    pub fn new(exp: &'a Expander) -> Tcx<'a> {
        Tcx { exp }
    }

    /// Records `name : ty` (the paper's `add-type!`).
    pub fn add_type(&self, name: Symbol, ty: &Type) {
        self.exp.meta_put(space_types(), name, ty.to_datum());
    }

    /// Records `name : ty` *and* persists it into the compiled module
    /// (the `begin-for-syntax (add-type! …)` residue of §5).
    pub fn add_type_persistent(&self, name: Symbol, ty: &Type) {
        self.exp.meta_persist(space_types(), name, ty.to_datum());
    }

    /// Looks up a binding's type (the paper's `lookup-type`).
    pub fn lookup(&self, name: Symbol) -> Option<Type> {
        let d = self.exp.meta_get(space_types(), name)?;
        Type::from_datum(&d).ok()
    }

    /// Records a forward declaration `(: name ty)` by source name.
    pub fn add_pending(&self, source: Symbol, ty: &Type) {
        self.exp.meta_put(space_pending(), source, ty.to_datum());
    }

    /// Retrieves a forward declaration by source name.
    pub fn pending(&self, source: Symbol) -> Option<Type> {
        let d = self.exp.meta_get(space_pending(), source)?;
        Type::from_datum(&d).ok()
    }

    /// Registers a type alias (the typed language's `define-type`). The
    /// alias is persisted so importing typed modules can use it too.
    pub fn add_alias(&self, name: Symbol, definition: &Syntax) {
        self.exp
            .meta_persist(space_aliases(), name, definition.to_datum());
    }

    /// Looks up a type alias.
    pub fn alias(&self, name: Symbol) -> Option<Datum> {
        self.exp.meta_get(space_aliases(), name)
    }

    /// Parses a type expression, expanding `define-type` aliases.
    ///
    /// # Errors
    ///
    /// Returns an error on unknown types or cyclic aliases.
    pub fn parse_type(&self, stx: &Syntax) -> Result<Type, RtError> {
        let expanded = self.expand_aliases(stx, 0)?;
        Type::parse(&expanded)
    }

    fn expand_aliases(&self, stx: &Syntax, depth: usize) -> Result<Syntax, RtError> {
        if depth > 32 {
            return Err(type_error("cyclic type alias", stx));
        }
        if let Some(sym) = stx.sym() {
            if let Some(d) = self.alias(sym) {
                let replacement =
                    Syntax::from_datum(&d, stx.span(), &lagoon_syntax::ScopeSet::new());
                return self.expand_aliases(&replacement, depth + 1);
            }
            return Ok(stx.clone());
        }
        match stx.e() {
            SynData::List(items) => {
                let items = items
                    .iter()
                    .map(|s| self.expand_aliases(s, depth))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(stx.with_data(SynData::List(items)))
            }
            _ => Ok(stx.clone()),
        }
    }

    /// Reads the declared type off a binder's syntax property (the
    /// paper's `type-of`).
    ///
    /// # Errors
    ///
    /// Returns an error if the annotation fails to parse as a type.
    pub fn annotation_of(&self, id: &Syntax) -> Result<Option<Type>, RtError> {
        match id.property(prop_annotation()) {
            Some(PropValue::Syntax(ty_stx)) => {
                lagoon_diag::count("annotations-consulted", self.exp.module_name, 1);
                Ok(Some(self.parse_type(ty_stx)?))
            }
            Some(PropValue::Datum(d)) => {
                lagoon_diag::count("annotations-consulted", self.exp.module_name, 1);
                Ok(Some(Type::from_datum(d)?))
            }
            None => Ok(None),
        }
    }
}

/// A type error in the paper's format: `typecheck: <msg> in: <stx>`.
pub fn type_error(message: impl std::fmt::Display, stx: &Syntax) -> RtError {
    RtError::user(format!("typecheck: {message} in: {stx}")).with_span(stx.span())
}

/// Strips the expander's gensym uniquifier (global `~n` or scoped
/// `~hex8.n`) to recover a primitive's source name (`map~3` → `map`);
/// canonical primitive names pass through.
fn strip_rename(sym: Symbol) -> String {
    sym.with_str(|s| lagoon_syntax::strip_gensym(s).to_string())
}

fn type_of_datum(d: &Datum) -> Type {
    match d {
        Datum::Int(_) => Type::Integer,
        Datum::Float(_) => Type::Float,
        Datum::Complex(_, _) => Type::FloatComplex,
        Datum::Bool(_) => Type::Boolean,
        Datum::Str(_) => Type::Str,
        Datum::Char(_) => Type::Char,
        Datum::Symbol(_) | Datum::Keyword(_) => Type::Sym,
        Datum::List(items) if items.is_empty() => Type::Null,
        Datum::List(items) => Type::List(items.iter().map(type_of_datum).collect()),
        Datum::Improper(_, _) => Type::Any,
        Datum::Vector(items) => Type::Vectorof(std::rc::Rc::new(
            items
                .iter()
                .map(type_of_datum)
                .fold(None::<Type>, |acc, t| {
                    Some(match acc {
                        None => t,
                        Some(a) => a.join(&t),
                    })
                })
                .unwrap_or(Type::Any),
        )),
    }
}

fn head_sym(stx: &Syntax) -> Option<Symbol> {
    stx.as_list()?.first()?.sym()
}

/// Typechecks one fully-expanded expression, optionally against an
/// expected type. Returns the computed type and the expression annotated
/// with `type` properties throughout.
///
/// # Errors
///
/// Returns a `typecheck:` error (paper §4.1 format) on any violation.
pub fn typecheck(
    tcx: &Tcx,
    stx: &Syntax,
    expected: Option<&Type>,
) -> Result<(Type, Syntax), RtError> {
    // static ascription first
    if let Some(PropValue::Syntax(ty_stx)) = stx.property(prop_ascribe()) {
        let ty = tcx.parse_type(ty_stx)?;
        let (inner_ty, inner) = typecheck_unascribed(tcx, stx, Some(&ty))?;
        if !inner_ty.subtype(&ty) {
            return Err(type_error(
                format!("wrong type (expected {ty}, got {inner_ty})"),
                stx,
            ));
        }
        return finish(stx, ty, inner, expected);
    }
    let (ty, out) = typecheck_unascribed(tcx, stx, expected)?;
    finish(stx, ty, out, expected)
}

fn finish(
    orig: &Syntax,
    ty: Type,
    out: Syntax,
    expected: Option<&Type>,
) -> Result<(Type, Syntax), RtError> {
    if let Some(want) = expected {
        if !ty.subtype(want) {
            return Err(type_error(
                format!("wrong type (expected {want}, got {ty})"),
                orig,
            ));
        }
    }
    let out = out.with_property(prop_type(), PropValue::Datum(ty.to_datum()));
    Ok((ty, out))
}

fn typecheck_unascribed(
    tcx: &Tcx,
    stx: &Syntax,
    expected: Option<&Type>,
) -> Result<(Type, Syntax), RtError> {
    match stx.e() {
        SynData::Atom(Datum::Symbol(sym)) => {
            if let Some(ty) = tcx.lookup(*sym) {
                return Ok((ty, stx.clone()));
            }
            let base = strip_rename(*sym);
            if let Some(ty) = intrinsics::first_class_type(&base) {
                return Ok((ty, stx.clone()));
            }
            Err(type_error("untyped variable", stx))
        }
        SynData::Atom(d) => Ok((type_of_datum(d), stx.clone())),
        _ => {
            let head =
                head_sym(stx).ok_or_else(|| syntax_error("typecheck: not a core form", stx))?;
            let items = stx.as_list().unwrap().to_vec();
            head.with_str(|head| match head {
                "quote" => Ok((type_of_datum(&items[1].to_datum()), stx.clone())),
                "quote-syntax" => Ok((Type::Any, stx.clone())),
                "if" => {
                    let (_, c) = typecheck(tcx, &items[1], None)?;
                    let (tt, t) = typecheck(tcx, &items[2], expected)?;
                    let (te, e) = typecheck(tcx, &items[3], expected)?;
                    let joined = tt.join(&te);
                    Ok((
                        joined,
                        stx.with_data(SynData::List(vec![items[0].clone(), c, t, e])),
                    ))
                }
                "begin" => {
                    let mut out = vec![items[0].clone()];
                    let mut ty = Type::Void;
                    let last = items.len() - 1;
                    for (i, form) in items[1..].iter().enumerate() {
                        let want = if i + 1 == last { expected } else { None };
                        let (t, f) = typecheck(tcx, form, want)?;
                        ty = t;
                        out.push(f);
                    }
                    Ok((ty, stx.with_data(SynData::List(out))))
                }
                "#%plain-lambda" => typecheck_lambda(tcx, stx, &items, expected),
                "let-values" | "letrec-values" => {
                    typecheck_let(tcx, stx, &items, expected, head == "letrec-values")
                }
                "set!" => {
                    let target = items[1]
                        .sym()
                        .ok_or_else(|| syntax_error("set!: expected identifier", &items[1]))?;
                    let declared = tcx
                        .lookup(target)
                        .ok_or_else(|| type_error("set! of untyped variable", &items[1]))?;
                    let (_, rhs) = typecheck(tcx, &items[2], Some(&declared))?;
                    Ok((
                        Type::Void,
                        stx.with_data(SynData::List(vec![items[0].clone(), items[1].clone(), rhs])),
                    ))
                }
                "#%plain-app" => typecheck_app(tcx, stx, &items),
                other => Err(syntax_error(
                    format!("typecheck: unexpected core form {other}"),
                    stx,
                )),
            })
        }
    }
}

fn typecheck_lambda(
    tcx: &Tcx,
    stx: &Syntax,
    items: &[Syntax],
    expected: Option<&Type>,
) -> Result<(Type, Syntax), RtError> {
    let formals = match items[1].e() {
        SynData::List(ids) => ids.clone(),
        _ => {
            return Err(type_error(
                "rest arguments are not supported in typed code",
                &items[1],
            ))
        }
    };
    let expected_fun = match expected {
        Some(Type::Fun(doms, rng)) if doms.len() == formals.len() => {
            Some((doms.clone(), (**rng).clone()))
        }
        _ => None,
    };
    let mut param_types = Vec::with_capacity(formals.len());
    for (i, f) in formals.iter().enumerate() {
        let ty = match tcx.annotation_of(f)? {
            Some(ty) => ty,
            None => match &expected_fun {
                Some((doms, _)) => doms[i].clone(),
                None => {
                    return Err(type_error(
                        format!("missing type annotation for parameter {f}"),
                        f,
                    ))
                }
            },
        };
        tcx.add_type(f.sym().expect("formal is an identifier"), &ty);
        param_types.push(ty);
    }
    let ret_ann = match stx.property(prop_return()) {
        Some(PropValue::Syntax(ty_stx)) => Some(tcx.parse_type(ty_stx)?),
        Some(PropValue::Datum(d)) => Some(Type::from_datum(d)?),
        None => expected_fun.map(|(_, r)| r),
    };
    let (body_ty, body) = typecheck(tcx, &items[2], ret_ann.as_ref())?;
    let ret = ret_ann.unwrap_or(body_ty);
    let ty = Type::fun(param_types, ret);
    Ok((
        ty,
        stx.with_data(SynData::List(vec![
            items[0].clone(),
            items[1].clone(),
            body,
        ])),
    ))
}

fn typecheck_let(
    tcx: &Tcx,
    stx: &Syntax,
    items: &[Syntax],
    expected: Option<&Type>,
    rec: bool,
) -> Result<(Type, Syntax), RtError> {
    let clauses = items[1]
        .as_list()
        .ok_or_else(|| syntax_error("malformed let-values", stx))?
        .to_vec();
    let mut parsed = Vec::new();
    for clause in &clauses {
        let parts = clause.as_list().unwrap();
        let binder = parts[0].as_list().unwrap()[0].clone();
        parsed.push((binder, parts[1].clone()));
    }
    if rec {
        // pre-bind every annotated (or fully-annotated-lambda) binder so
        // recursive references check (paper §4.4: two-pass strategy)
        for (binder, rhs) in &parsed {
            if let Some(ty) = declared_or_inferable(tcx, binder, rhs)? {
                tcx.add_type(binder.sym().unwrap(), &ty);
            }
        }
    }
    let mut out_clauses = Vec::new();
    for (binder, rhs) in &parsed {
        let declared = match tcx.annotation_of(binder)? {
            Some(t) => Some(t),
            None if rec => tcx.lookup(binder.sym().unwrap()),
            None => None,
        };
        let (ty, rhs) = typecheck(tcx, rhs, declared.as_ref())?;
        let bound = declared.unwrap_or(ty);
        tcx.add_type(binder.sym().unwrap(), &bound);
        out_clauses.push(lagoon_core::build::lst(vec![
            lagoon_core::build::lst(vec![binder.clone()]),
            rhs,
        ]));
    }
    let (body_ty, body) = typecheck(tcx, &items[2], expected)?;
    Ok((
        body_ty,
        stx.with_data(SynData::List(vec![
            items[0].clone(),
            lagoon_core::build::lst(out_clauses),
            body,
        ])),
    ))
}

/// The declared type of a binder, or a function type inferable from a
/// fully-annotated lambda right-hand side.
fn declared_or_inferable(
    tcx: &Tcx,
    binder: &Syntax,
    rhs: &Syntax,
) -> Result<Option<Type>, RtError> {
    if let Some(t) = tcx.annotation_of(binder)? {
        return Ok(Some(t));
    }
    if head_sym(rhs) == Some(Symbol::intern("#%plain-lambda")) {
        let items = rhs.as_list().unwrap();
        if let SynData::List(formals) = items[1].e() {
            let mut params = Vec::new();
            for f in formals {
                match tcx.annotation_of(f)? {
                    Some(t) => params.push(t),
                    None => return Ok(None),
                }
            }
            let ret = match rhs.property(prop_return()) {
                Some(PropValue::Syntax(ty_stx)) => tcx.parse_type(ty_stx)?,
                Some(PropValue::Datum(d)) => Type::from_datum(d)?,
                None => return Ok(None),
            };
            return Ok(Some(Type::fun(params, ret)));
        }
    }
    Ok(None)
}

fn typecheck_app(tcx: &Tcx, stx: &Syntax, items: &[Syntax]) -> Result<(Type, Syntax), RtError> {
    let op = &items[1];
    let args = &items[2..];

    // `cast` escape hatch: (typed-cast 'ty v)
    if op.sym().map(strip_rename).as_deref() == Some("typed-cast") {
        let quoted = args[0].to_datum();
        let ty_datum = match quoted.as_list() {
            Some(l) if l.len() == 2 => l[1].clone(),
            _ => quoted,
        };
        let ty = Type::from_datum(&ty_datum)?;
        let (_, v) = typecheck(tcx, &args[1], None)?;
        let out = vec![items[0].clone(), op.clone(), args[0].clone(), v];
        return Ok((ty, stx.with_data(SynData::List(out))));
    }

    // intrinsic rule for primitive operators used in call position
    if let Some(op_sym) = op.sym() {
        if tcx.lookup(op_sym).is_none() {
            let base = strip_rename(op_sym);
            let mut arg_types = Vec::with_capacity(args.len());
            let mut out_args = Vec::with_capacity(args.len());
            for a in args {
                let (t, a) = typecheck(tcx, a, None)?;
                arg_types.push(t);
                out_args.push(a);
            }
            if let Some(result) = intrinsics::apply_rule(&base, &arg_types) {
                let ty = result.map_err(|msg| type_error(msg, stx))?;
                let mut out = vec![items[0].clone(), op.clone()];
                out.extend(out_args);
                return Ok((ty, stx.with_data(SynData::List(out))));
            }
            return Err(type_error(format!("untyped operator {base}"), op));
        }
    }

    // general application: operator must have a function type
    let (op_ty, op_out) = typecheck(tcx, op, None)?;
    match op_ty {
        Type::Fun(doms, rng) => {
            if doms.len() != args.len() {
                return Err(type_error(
                    format!(
                        "wrong number of arguments (expected {}, got {})",
                        doms.len(),
                        args.len()
                    ),
                    stx,
                ));
            }
            let mut out = vec![items[0].clone(), op_out];
            for (dom, a) in doms.iter().zip(args) {
                let (_, a) = typecheck(tcx, a, Some(dom))?;
                out.push(a);
            }
            Ok(((*rng).clone(), stx.with_data(SynData::List(out))))
        }
        other => Err(type_error(format!("not a function type: {other}"), op)),
    }
}

/// The whole-module driver of paper figure 2: collect declared types
/// (pass 1), then check every form (pass 2). Returns the body with type
/// properties attached.
///
/// # Errors
///
/// Checks every top-level form even after one fails, so a module with
/// several independent type errors reports them all in one diagnostic
/// (the span is the first error's).
pub fn typecheck_module(tcx: &Tcx, forms: &[Syntax]) -> Result<Vec<Syntax>, RtError> {
    // pass 1: collect definitions with their types (paper §4.4)
    for form in forms {
        if head_sym(form) != Some(Symbol::intern("define-values")) {
            continue;
        }
        let items = form.as_list().unwrap();
        let binder = items[1].as_list().unwrap()[0].clone();
        let rhs = &items[2];
        let declared = match tcx.annotation_of(&binder)? {
            Some(t) => Some(t),
            None => {
                let source = match binder.property(prop_source()) {
                    Some(PropValue::Datum(Datum::Symbol(s))) => Some(*s),
                    _ => None,
                };
                match source.and_then(|s| tcx.pending(s)) {
                    Some(t) => Some(t),
                    None => declared_or_inferable(tcx, &binder, rhs)?,
                }
            }
        };
        if let Some(ty) = declared {
            tcx.add_type(binder.sym().unwrap(), &ty);
        }
    }
    // pass 2: check each form in this type context, continuing past a
    // failed form so the module reports all its errors at once
    let mut out = Vec::with_capacity(forms.len());
    let mut errors: Vec<RtError> = Vec::new();
    for form in forms {
        match check_form(tcx, form) {
            Ok(checked) => out.push(checked),
            Err(e) => errors.push(e),
        }
    }
    match errors.len() {
        0 => Ok(out),
        1 => Err(errors.remove(0)),
        n => {
            let mut agg = errors.remove(0);
            agg.message = format!("{n} type errors in module:\n  {}", agg.message);
            for e in &errors {
                agg.message.push_str("\n  ");
                agg.message.push_str(&e.message);
            }
            Err(agg)
        }
    }
}

/// Checks one top-level core form (pass 2 of [`typecheck_module`]).
fn check_form(tcx: &Tcx, form: &Syntax) -> Result<Syntax, RtError> {
    if head_sym(form) == Some(Symbol::intern("define-values")) {
        let items = form.as_list().unwrap();
        let binder = items[1].as_list().unwrap()[0].clone();
        let name = binder.sym().unwrap();
        if form.property(prop_ignore()).is_some() {
            // require/typed residue: trust the annotation (§6.1)
            let ty = tcx
                .annotation_of(&binder)?
                .ok_or_else(|| type_error("trusted definition lacks a type annotation", form))?;
            tcx.add_type(name, &ty);
            return Ok(form.clone());
        }
        let declared = tcx.lookup(name);
        let (ty, rhs) = typecheck(tcx, &items[2], declared.as_ref())?;
        if declared.is_none() {
            tcx.add_type(name, &ty);
        }
        Ok(form.with_data(SynData::List(vec![items[0].clone(), items[1].clone(), rhs])))
    } else {
        let (_, checked) = typecheck(tcx, form, None)?;
        Ok(checked)
    }
}
