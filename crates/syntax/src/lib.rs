//! # lagoon-syntax
//!
//! The reader layer of Lagoon, a Rust reproduction of *Languages as
//! Libraries* (Tobin-Hochstadt et al., PLDI 2011): interned symbols, plain
//! S-expression [`Datum`]s, attributed [`Syntax`] objects with source
//! [`Span`]s, hygiene [`ScopeSet`]s, and syntax properties, plus the
//! [`read_syntax`]/[`read_module`] readers.
//!
//! Syntax objects are the compile-time data structure everything else in
//! the system communicates through: the expander resolves identifiers via
//! their scope sets, and the typed sister language attaches type
//! annotations as out-of-band properties.
//!
//! # Examples
//!
//! ```
//! use lagoon_syntax::{read_module, read_syntax};
//!
//! let stx = read_syntax("(define (f x) (* x x))", "<doc>")?;
//! assert!(stx.as_list().unwrap()[0].is_identifier());
//!
//! let m = read_module("#lang lagoon\n(f 2)\n", "<doc>")?;
//! assert_eq!(m.lang.as_str(), "lagoon");
//! # Ok::<(), lagoon_syntax::ReadError>(())
//! ```

#![warn(missing_docs)]
// panic-free core: unwrap/expect in non-test code must be justified
// with an explicit #[allow] (CI promotes these to errors)
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod datum;
mod lexer;
mod reader;
mod scope;
mod span;
mod symbol;
mod syntax;
pub mod wire;

pub use datum::Datum;
pub use lexer::{parse_number, Lexer, ReadError, Token};
pub use reader::{
    read_all, read_all_recover, read_datum, read_module, read_module_recover, read_syntax,
    ModuleSource,
};
pub use scope::{Scope, ScopeSet};
pub use span::Span;
pub use symbol::{
    arena_len, arena_sealed, epoch_len, epoch_mark, epoch_reset, epoch_truncate, fresh_scope,
    interned_count, seal_arena, strip_gensym, EpochMark, FreshScope, Symbol,
};
pub use syntax::{PropValue, SynData, Syntax};
pub use wire::{fnv1a, Reader as WireReader, WireError, Writer as WireWriter};
