//! Tokenizer for Lagoon source text.
//!
//! Produces a stream of [`Token`]s with spans. The reader
//! ([`crate::reader`]) assembles them into datums / syntax objects.

use crate::span::Span;
use crate::symbol::Symbol;
use std::fmt;
use std::sync::Arc;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// `(` or `[`.
    Open,
    /// `)` or `]`.
    Close,
    /// `#(` — vector open.
    VecOpen,
    /// `.` in a dotted pair.
    Dot,
    /// `'`.
    Quote,
    /// `` ` ``.
    Quasiquote,
    /// `,`.
    Unquote,
    /// `,@`.
    UnquoteSplicing,
    /// `#'`.
    SyntaxQuote,
    /// `` #` ``.
    Quasisyntax,
    /// `#,`.
    Unsyntax,
    /// `#,@`.
    UnsyntaxSplicing,
    /// A symbol.
    Symbol(Symbol),
    /// A keyword `#:name`.
    Keyword(Symbol),
    /// `#t` / `#f`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Float-complex literal, e.g. `2.0+2.0i`.
    Complex(f64, f64),
    /// String literal.
    Str(Arc<str>),
    /// Character literal.
    Char(char),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Open => f.write_str("("),
            Token::Close => f.write_str(")"),
            Token::VecOpen => f.write_str("#("),
            Token::Dot => f.write_str("."),
            Token::Quote => f.write_str("'"),
            Token::Quasiquote => f.write_str("`"),
            Token::Unquote => f.write_str(","),
            Token::UnquoteSplicing => f.write_str(",@"),
            Token::SyntaxQuote => f.write_str("#'"),
            Token::Quasisyntax => f.write_str("#`"),
            Token::Unsyntax => f.write_str("#,"),
            Token::UnsyntaxSplicing => f.write_str("#,@"),
            Token::Symbol(s) => write!(f, "{s}"),
            Token::Keyword(s) => write!(f, "#:{s}"),
            Token::Bool(true) => f.write_str("#t"),
            Token::Bool(false) => f.write_str("#f"),
            Token::Int(n) => write!(f, "{n}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Complex(re, im) => write!(f, "{re}+{im}i"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Char(c) => write!(f, "#\\{c}"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// An error produced while lexing or reading.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadError {
    /// Human-readable description.
    pub message: String,
    /// Where the problem was found.
    pub span: Span,
}

impl ReadError {
    pub(crate) fn new(message: impl Into<String>, span: Span) -> ReadError {
        ReadError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "read error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ReadError {}

/// The tokenizer. Iterate with [`Lexer::next_token`].
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    source: Symbol,
}

fn is_delimiter(b: u8) -> bool {
    // ASCII whitespace only: bytes >= 0x80 are UTF-8 continuation/lead
    // bytes and must never split a character (e.g. 0x85 is *not* U+0085)
    matches!(b, b'(' | b')' | b'[' | b']' | b'"' | b';') || b.is_ascii_whitespace()
}

impl<'a> Lexer<'a> {
    /// A lexer over `src`, reporting locations against `source`.
    pub fn new(src: &'a str, source: Symbol) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            source,
        }
    }

    /// Current position as a span of zero width.
    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span::new(
            self.source,
            start.0 as u32,
            self.pos as u32,
            start.1,
            start.2,
        )
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), ReadError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'#') if self.peek2() == Some(b'|') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'|'), Some(b'#')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(b'#'), Some(b'|')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(ReadError::new(
                                    "unterminated block comment",
                                    self.span_from(start),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn read_string(&mut self, start: (usize, u32, u32)) -> Result<(Token, Span), ReadError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(ReadError::new(
                        "unterminated string literal",
                        self.span_from(start),
                    ))
                }
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(b'0') => out.push('\0'),
                    Some(other) => {
                        return Err(ReadError::new(
                            format!("unknown string escape \\{}", other as char),
                            self.span_from(start),
                        ))
                    }
                    None => {
                        return Err(ReadError::new(
                            "unterminated string literal",
                            self.span_from(start),
                        ))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // multi-byte UTF-8: re-decode from the source
                    let ch_start = self.pos - 1;
                    let ch = self.src[ch_start..].chars().next().ok_or_else(|| {
                        ReadError::new("invalid UTF-8 in string literal", self.span_from(start))
                    })?;
                    for _ in 1..ch.len_utf8() {
                        self.bump();
                    }
                    out.push(ch);
                }
            }
        }
        Ok((Token::Str(Arc::from(out.as_str())), self.span_from(start)))
    }

    fn read_char_literal(&mut self, start: (usize, u32, u32)) -> Result<(Token, Span), ReadError> {
        // after "#\": read either a named char or a single char
        let word_start = self.pos;
        // always consume at least one char
        let first = self.src[self.pos..].chars().next().ok_or_else(|| {
            ReadError::new("unterminated character literal", self.span_from(start))
        })?;
        for _ in 0..first.len_utf8() {
            self.bump();
        }
        if first.is_alphabetic() {
            while let Some(b) = self.peek() {
                if is_delimiter(b) {
                    break;
                }
                self.bump();
            }
        }
        let word = &self.src[word_start..self.pos];
        let c = match word {
            "newline" => '\n',
            "space" => ' ',
            "tab" => '\t',
            "nul" | "null" => '\0',
            "return" => '\r',
            w => match (w.chars().next(), w.chars().nth(1)) {
                (Some(c), None) => c,
                _ => {
                    return Err(ReadError::new(
                        format!("unknown character literal #\\{w}"),
                        self.span_from(start),
                    ))
                }
            },
        };
        Ok((Token::Char(c), self.span_from(start)))
    }

    /// Lexes one token.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] for malformed literals or unterminated
    /// comments/strings.
    pub fn next_token(&mut self) -> Result<(Token, Span), ReadError> {
        self.skip_whitespace_and_comments()?;
        let start = self.here();
        let Some(b) = self.peek() else {
            return Ok((Token::Eof, self.span_from(start)));
        };
        match b {
            b'(' | b'[' => {
                self.bump();
                Ok((Token::Open, self.span_from(start)))
            }
            b')' | b']' => {
                self.bump();
                Ok((Token::Close, self.span_from(start)))
            }
            b'\'' => {
                self.bump();
                Ok((Token::Quote, self.span_from(start)))
            }
            b'`' => {
                self.bump();
                Ok((Token::Quasiquote, self.span_from(start)))
            }
            b',' => {
                self.bump();
                if self.peek() == Some(b'@') {
                    self.bump();
                    Ok((Token::UnquoteSplicing, self.span_from(start)))
                } else {
                    Ok((Token::Unquote, self.span_from(start)))
                }
            }
            b'"' => {
                self.bump();
                self.read_string(start)
            }
            b'#' => {
                self.bump();
                match self.peek() {
                    Some(b'(') => {
                        self.bump();
                        Ok((Token::VecOpen, self.span_from(start)))
                    }
                    Some(b't') => {
                        self.bump();
                        Ok((Token::Bool(true), self.span_from(start)))
                    }
                    Some(b'f') => {
                        self.bump();
                        Ok((Token::Bool(false), self.span_from(start)))
                    }
                    Some(b'\'') => {
                        self.bump();
                        Ok((Token::SyntaxQuote, self.span_from(start)))
                    }
                    Some(b'`') => {
                        self.bump();
                        Ok((Token::Quasisyntax, self.span_from(start)))
                    }
                    Some(b',') => {
                        self.bump();
                        if self.peek() == Some(b'@') {
                            self.bump();
                            Ok((Token::UnsyntaxSplicing, self.span_from(start)))
                        } else {
                            Ok((Token::Unsyntax, self.span_from(start)))
                        }
                    }
                    Some(b'\\') => {
                        self.bump();
                        self.read_char_literal(start)
                    }
                    Some(b':') => {
                        self.bump();
                        let word_start = self.pos;
                        while let Some(b) = self.peek() {
                            if is_delimiter(b) {
                                break;
                            }
                            self.bump();
                        }
                        let name = &self.src[word_start..self.pos];
                        Ok((Token::Keyword(Symbol::intern(name)), self.span_from(start)))
                    }
                    Some(b'%') => {
                        // core-form identifiers like #%plain-lambda
                        let word_start = self.pos - 1;
                        while let Some(b) = self.peek() {
                            if is_delimiter(b) {
                                break;
                            }
                            self.bump();
                        }
                        let name = &self.src[word_start..self.pos];
                        Ok((Token::Symbol(Symbol::intern(name)), self.span_from(start)))
                    }
                    other => Err(ReadError::new(
                        format!(
                            "unknown dispatch #{}",
                            other.map(|b| (b as char).to_string()).unwrap_or_default()
                        ),
                        self.span_from(start),
                    )),
                }
            }
            _ => {
                // atom: symbol or number (or lone dot)
                while let Some(b) = self.peek() {
                    if is_delimiter(b) {
                        break;
                    }
                    self.bump();
                }
                let word = &self.src[start.0..self.pos];
                let span = self.span_from(start);
                if word == "." {
                    return Ok((Token::Dot, span));
                }
                Ok((parse_atom(word), span))
            }
        }
    }
}

/// Parses a non-delimiter word into a number or symbol token.
fn parse_atom(word: &str) -> Token {
    if let Some(tok) = parse_number(word) {
        return tok;
    }
    Token::Symbol(Symbol::intern(word))
}

/// Attempts to parse a numeric literal: integer, float (including
/// `+inf.0`/`-inf.0`/`+nan.0`), or float-complex (`2.0+2.0i`, `-1.5i`).
pub fn parse_number(word: &str) -> Option<Token> {
    if word.is_empty() {
        return None;
    }
    // Must start like a number: digit, or sign/dot followed by digit-ish.
    let looks_numeric = {
        let b = word.as_bytes()[0];
        b.is_ascii_digit() || ((b == b'+' || b == b'-' || b == b'.') && word.len() > 1)
    };
    if !looks_numeric {
        return None;
    }
    match word {
        "+inf.0" => return Some(Token::Float(f64::INFINITY)),
        "-inf.0" => return Some(Token::Float(f64::NEG_INFINITY)),
        "+nan.0" | "-nan.0" => return Some(Token::Float(f64::NAN)),
        _ => {}
    }
    if let Ok(n) = word.parse::<i64>() {
        return Some(Token::Int(n));
    }
    if let Some(body) = word.strip_suffix('i') {
        return parse_complex(body);
    }
    if let Ok(x) = word.parse::<f64>() {
        // reject things like "1e" that parse::<f64> would reject anyway,
        // and plain integers already handled above
        return Some(Token::Float(x));
    }
    None
}

/// Parses the `<real><+/-><real>` body of a complex literal (without the
/// trailing `i`).
fn parse_complex(body: &str) -> Option<Token> {
    // Find the sign that separates real and imaginary parts: the last '+'
    // or '-' that is not at position 0 and not part of an exponent.
    let bytes = body.as_bytes();
    let mut split = None;
    for i in (1..bytes.len()).rev() {
        let b = bytes[i];
        if (b == b'+' || b == b'-') && bytes[i - 1] != b'e' && bytes[i - 1] != b'E' {
            split = Some(i);
            break;
        }
    }
    match split {
        Some(i) => {
            let re: f64 = body[..i].parse().ok()?;
            let im_str = &body[i..];
            let im: f64 = if im_str == "+" {
                1.0
            } else if im_str == "-" {
                -1.0
            } else {
                im_str.parse().ok()?
            };
            Some(Token::Complex(re, im))
        }
        None => {
            // pure imaginary, e.g. "2.0i" (body = "2.0")
            let im: f64 = body.parse().ok()?;
            Some(Token::Complex(0.0, im))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(src: &str) -> Vec<Token> {
        let mut lx = Lexer::new(src, Symbol::from("<test>"));
        let mut out = Vec::new();
        loop {
            let (tok, _) = lx.next_token().unwrap();
            if tok == Token::Eof {
                break;
            }
            out.push(tok);
        }
        out
    }

    #[test]
    fn punctuation() {
        assert_eq!(
            lex_all("()[] ' ` , ,@ #' #` #, #,@ #("),
            vec![
                Token::Open,
                Token::Close,
                Token::Open,
                Token::Close,
                Token::Quote,
                Token::Quasiquote,
                Token::Unquote,
                Token::UnquoteSplicing,
                Token::SyntaxQuote,
                Token::Quasisyntax,
                Token::Unsyntax,
                Token::UnsyntaxSplicing,
                Token::VecOpen,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(lex_all("42"), vec![Token::Int(42)]);
        assert_eq!(lex_all("-7"), vec![Token::Int(-7)]);
        assert_eq!(lex_all("3.7"), vec![Token::Float(3.7)]);
        assert_eq!(lex_all("-0.5"), vec![Token::Float(-0.5)]);
        assert_eq!(lex_all("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(lex_all("2.0+2.0i"), vec![Token::Complex(2.0, 2.0)]);
        assert_eq!(lex_all("1.5-0.5i"), vec![Token::Complex(1.5, -0.5)]);
        assert_eq!(lex_all("3.0i"), vec![Token::Complex(0.0, 3.0)]);
        assert_eq!(lex_all("+inf.0"), vec![Token::Float(f64::INFINITY)]);
    }

    #[test]
    fn symbols_vs_numbers() {
        assert_eq!(lex_all("+"), vec![Token::Symbol(Symbol::from("+"))]);
        assert_eq!(lex_all("-"), vec![Token::Symbol(Symbol::from("-"))]);
        assert_eq!(lex_all("..."), vec![Token::Symbol(Symbol::from("..."))]);
        assert_eq!(
            lex_all("list->vector"),
            vec![Token::Symbol(Symbol::from("list->vector"))]
        );
        assert_eq!(
            lex_all("#%plain-lambda"),
            vec![Token::Symbol(Symbol::from("#%plain-lambda"))]
        );
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(lex_all(r#""hi\n""#), vec![Token::Str(Arc::from("hi\n"))]);
        assert_eq!(lex_all(r"#\a"), vec![Token::Char('a')]);
        assert_eq!(lex_all(r"#\newline"), vec![Token::Char('\n')]);
        assert_eq!(lex_all(r"#\space"), vec![Token::Char(' ')]);
    }

    #[test]
    fn booleans_and_keywords() {
        assert_eq!(
            lex_all("#t #f"),
            vec![Token::Bool(true), Token::Bool(false)]
        );
        assert_eq!(lex_all("#:key"), vec![Token::Keyword(Symbol::from("key"))]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            lex_all("1 ; comment\n2"),
            vec![Token::Int(1), Token::Int(2)]
        );
        assert_eq!(
            lex_all("1 #| block #| nested |# |# 2"),
            vec![Token::Int(1), Token::Int(2)]
        );
    }

    #[test]
    fn spans_track_lines() {
        let mut lx = Lexer::new("a\n  b", Symbol::from("<t>"));
        let (_, sa) = lx.next_token().unwrap();
        assert_eq!((sa.line, sa.col), (1, 1));
        let (_, sb) = lx.next_token().unwrap();
        assert_eq!((sb.line, sb.col), (2, 3));
    }

    #[test]
    fn errors_on_bad_input() {
        let mut lx = Lexer::new("\"unterminated", Symbol::from("<t>"));
        assert!(lx.next_token().is_err());
        let mut lx = Lexer::new("#q", Symbol::from("<t>"));
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn dot_token() {
        assert_eq!(
            lex_all("(a . b)"),
            vec![
                Token::Open,
                Token::Symbol(Symbol::from("a")),
                Token::Dot,
                Token::Symbol(Symbol::from("b")),
                Token::Close
            ]
        );
    }
}
