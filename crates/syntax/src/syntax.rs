//! Syntax objects: attributed ASTs.
//!
//! A [`Syntax`] wraps S-expression structure with the three pieces of
//! metadata the paper's extension API depends on:
//!
//! 1. a [`Span`] (source location),
//! 2. a [`ScopeSet`] (hygiene information), and
//! 3. [syntax properties](crate::syntax::PropValue) — arbitrary out-of-band
//!    key/value data preserved by the expander, which Typed Lagoon uses to
//!    attach type annotations to binders (paper §3.1).
//!
//! Syntax objects are immutable and cheaply cloneable (`Rc`-shared).
//!
//! # Examples
//!
//! ```
//! use lagoon_syntax::{Datum, Span, Symbol, Syntax};
//! let id = Syntax::ident(Symbol::from("x"), Span::synthetic());
//! let ann = id.with_property(Symbol::from("type-annotation"),
//!                            Syntax::ident(Symbol::from("Integer"), Span::synthetic()).into());
//! assert!(ann.property(Symbol::from("type-annotation")).is_some());
//! assert_eq!(ann.to_datum(), Datum::sym("x"));
//! ```

use crate::datum::Datum;
use crate::scope::{Scope, ScopeSet};
use crate::span::Span;
use crate::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// The structure of a syntax object: either an atom or a compound whose
/// elements are themselves syntax objects (like Racket's `syntax-e`).
#[derive(Clone, Debug, PartialEq)]
pub enum SynData {
    /// A non-compound datum (symbol, number, string, …).
    Atom(Datum),
    /// A proper list of sub-syntax.
    List(Vec<Syntax>),
    /// An improper list `(a b . c)`.
    Improper(Vec<Syntax>, Box<Syntax>),
    /// A vector literal.
    Vector(Vec<Syntax>),
}

/// The value of a syntax property: either plain data or more syntax (the
/// typed language stores *type expressions* — syntax — under its
/// `type-annotation` key).
#[derive(Clone, Debug, PartialEq)]
pub enum PropValue {
    /// A plain datum property value.
    Datum(Datum),
    /// A syntax-object property value.
    Syntax(Syntax),
}

impl From<Datum> for PropValue {
    fn from(d: Datum) -> PropValue {
        PropValue::Datum(d)
    }
}

impl From<Syntax> for PropValue {
    fn from(s: Syntax) -> PropValue {
        PropValue::Syntax(s)
    }
}

impl PropValue {
    /// The syntax, if this property holds syntax.
    pub fn as_syntax(&self) -> Option<&Syntax> {
        match self {
            PropValue::Syntax(s) => Some(s),
            PropValue::Datum(_) => None,
        }
    }

    /// The datum, if this property holds a datum.
    pub fn as_datum(&self) -> Option<&Datum> {
        match self {
            PropValue::Datum(d) => Some(d),
            PropValue::Syntax(_) => None,
        }
    }
}

type PropMap = Rc<HashMap<Symbol, PropValue>>;

#[derive(Debug)]
struct SyntaxNode {
    data: SynData,
    span: Span,
    scopes: ScopeSet,
    props: Option<PropMap>,
}

/// An immutable, reference-counted syntax object.
#[derive(Clone, Debug)]
pub struct Syntax(Rc<SyntaxNode>);

impl Syntax {
    fn make(data: SynData, span: Span, scopes: ScopeSet, props: Option<PropMap>) -> Syntax {
        Syntax(Rc::new(SyntaxNode {
            data,
            span,
            scopes,
            props,
        }))
    }

    /// A new atom. `datum` must not be compound; compound datums should go
    /// through [`Syntax::from_datum`].
    ///
    /// # Panics
    ///
    /// Panics if `datum` is a list, improper list, or vector.
    pub fn atom(datum: Datum, span: Span) -> Syntax {
        assert!(datum.is_atom(), "Syntax::atom on compound datum {datum}");
        Syntax::make(SynData::Atom(datum), span, ScopeSet::new(), None)
    }

    /// A new identifier syntax object with no scopes.
    pub fn ident(sym: Symbol, span: Span) -> Syntax {
        Syntax::atom(Datum::Symbol(sym), span)
    }

    /// A new proper-list syntax object.
    pub fn list(items: Vec<Syntax>, span: Span) -> Syntax {
        Syntax::make(SynData::List(items), span, ScopeSet::new(), None)
    }

    /// A new improper-list syntax object.
    pub fn improper(items: Vec<Syntax>, tail: Syntax, span: Span) -> Syntax {
        Syntax::make(
            SynData::Improper(items, Box::new(tail)),
            span,
            ScopeSet::new(),
            None,
        )
    }

    /// A new vector syntax object.
    pub fn vector(items: Vec<Syntax>, span: Span) -> Syntax {
        Syntax::make(SynData::Vector(items), span, ScopeSet::new(), None)
    }

    /// Converts a datum to syntax, recursively, applying `scopes` to every
    /// node — the analogue of `(datum->syntax ctx datum)`, where `scopes`
    /// comes from the context identifier.
    pub fn from_datum(datum: &Datum, span: Span, scopes: &ScopeSet) -> Syntax {
        let data = match datum {
            Datum::List(items) => SynData::List(
                items
                    .iter()
                    .map(|d| Syntax::from_datum(d, span, scopes))
                    .collect(),
            ),
            Datum::Improper(items, tail) => SynData::Improper(
                items
                    .iter()
                    .map(|d| Syntax::from_datum(d, span, scopes))
                    .collect(),
                Box::new(Syntax::from_datum(tail, span, scopes)),
            ),
            Datum::Vector(items) => SynData::Vector(
                items
                    .iter()
                    .map(|d| Syntax::from_datum(d, span, scopes))
                    .collect(),
            ),
            atom => SynData::Atom(atom.clone()),
        };
        Syntax::make(data, span, scopes.clone(), None)
    }

    /// The structure of this syntax object (one level; like `syntax-e`).
    pub fn e(&self) -> &SynData {
        &self.0.data
    }

    /// The source location.
    pub fn span(&self) -> Span {
        self.0.span
    }

    /// The hygiene scope set.
    pub fn scopes(&self) -> &ScopeSet {
        &self.0.scopes
    }

    /// Whether this is an identifier (a symbol atom).
    pub fn is_identifier(&self) -> bool {
        matches!(self.e(), SynData::Atom(Datum::Symbol(_)))
    }

    /// The symbol, if this is an identifier.
    pub fn sym(&self) -> Option<Symbol> {
        match self.e() {
            SynData::Atom(Datum::Symbol(s)) => Some(*s),
            _ => None,
        }
    }

    /// The elements, if this is a proper list.
    pub fn as_list(&self) -> Option<&[Syntax]> {
        match self.e() {
            SynData::List(items) => Some(items),
            _ => None,
        }
    }

    /// Like [`Syntax::as_list`] but owned clones — the analogue of
    /// `syntax->list`.
    pub fn to_list(&self) -> Option<Vec<Syntax>> {
        self.as_list().map(|s| s.to_vec())
    }

    /// Replaces the structure, keeping span, scopes, and properties.
    pub fn with_data(&self, data: SynData) -> Syntax {
        Syntax::make(
            data,
            self.0.span,
            self.0.scopes.clone(),
            self.0.props.clone(),
        )
    }

    /// Replaces the span, keeping everything else.
    pub fn with_span(&self, span: Span) -> Syntax {
        Syntax::make(
            self.0.data.clone(),
            span,
            self.0.scopes.clone(),
            self.0.props.clone(),
        )
    }

    fn map_scopes(&self, f: &impl Fn(&ScopeSet) -> ScopeSet) -> Syntax {
        let data = match &self.0.data {
            SynData::Atom(d) => SynData::Atom(d.clone()),
            SynData::List(items) => SynData::List(items.iter().map(|s| s.map_scopes(f)).collect()),
            SynData::Improper(items, tail) => SynData::Improper(
                items.iter().map(|s| s.map_scopes(f)).collect(),
                Box::new(tail.map_scopes(f)),
            ),
            SynData::Vector(items) => {
                SynData::Vector(items.iter().map(|s| s.map_scopes(f)).collect())
            }
        };
        Syntax::make(data, self.0.span, f(&self.0.scopes), self.0.props.clone())
    }

    /// Adds `scope` to this syntax object and all sub-syntax.
    pub fn add_scope(&self, scope: Scope) -> Syntax {
        self.map_scopes(&|ss| ss.with(scope))
    }

    /// Removes `scope` from this syntax object and all sub-syntax.
    pub fn remove_scope(&self, scope: Scope) -> Syntax {
        self.map_scopes(&|ss| ss.without(scope))
    }

    /// Flips `scope` on this syntax object and all sub-syntax (used for
    /// macro-introduction scopes).
    pub fn flip_scope(&self, scope: Scope) -> Syntax {
        self.map_scopes(&|ss| ss.flipped(scope))
    }

    /// Reads a syntax property (the paper's `syntax-property-get`).
    pub fn property(&self, key: Symbol) -> Option<&PropValue> {
        self.0.props.as_ref()?.get(&key)
    }

    /// Returns a copy with a syntax property attached (the paper's
    /// `syntax-property-put`). Properties live on this node only, not on
    /// sub-syntax.
    pub fn with_property(&self, key: Symbol, value: PropValue) -> Syntax {
        let mut map: HashMap<Symbol, PropValue> = self
            .0
            .props
            .as_ref()
            .map(|m| (**m).clone())
            .unwrap_or_default();
        map.insert(key, value);
        Syntax::make(
            self.0.data.clone(),
            self.0.span,
            self.0.scopes.clone(),
            Some(Rc::new(map)),
        )
    }

    /// All properties on this node, in unspecified order.
    pub fn properties(&self) -> Vec<(Symbol, PropValue)> {
        self.0
            .props
            .as_ref()
            .map(|m| m.iter().map(|(k, v)| (*k, v.clone())).collect())
            .unwrap_or_default()
    }

    /// Copies all properties from `other` onto a copy of `self` (used when
    /// a rewrite replaces a form but must keep its annotations).
    pub fn copy_properties_from(&self, other: &Syntax) -> Syntax {
        let mut out = self.clone();
        for (k, v) in other.properties() {
            out = out.with_property(k, v);
        }
        out
    }

    /// Strips locations, scopes, and properties — `syntax->datum`.
    pub fn to_datum(&self) -> Datum {
        match &self.0.data {
            SynData::Atom(d) => d.clone(),
            SynData::List(items) => Datum::List(items.iter().map(Syntax::to_datum).collect()),
            SynData::Improper(items, tail) => Datum::Improper(
                items.iter().map(Syntax::to_datum).collect(),
                Box::new(tail.to_datum()),
            ),
            SynData::Vector(items) => Datum::Vector(items.iter().map(Syntax::to_datum).collect()),
        }
    }

    /// Pointer identity (used by identifier-keyed caches).
    pub fn ptr_eq(&self, other: &Syntax) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

impl PartialEq for Syntax {
    /// Structural equality on data and scope sets; spans and properties are
    /// ignored.
    fn eq(&self, other: &Syntax) -> bool {
        self.0.scopes == other.0.scopes && self.0.data == other.0.data
    }
}

impl fmt::Display for Syntax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_datum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::synthetic()
    }

    #[test]
    fn identifier_basics() {
        let x = Syntax::ident(Symbol::from("x"), sp());
        assert!(x.is_identifier());
        assert_eq!(x.sym(), Some(Symbol::from("x")));
        assert_eq!(x.to_datum(), Datum::sym("x"));
    }

    #[test]
    fn datum_round_trip() {
        let d = Datum::list(vec![
            Datum::sym("f"),
            Datum::Int(1),
            Datum::list(vec![Datum::sym("g"), Datum::Float(2.5)]),
        ]);
        let s = Syntax::from_datum(&d, sp(), &ScopeSet::new());
        assert_eq!(s.to_datum(), d);
    }

    #[test]
    fn scope_ops_are_recursive() {
        let d = Datum::list(vec![Datum::sym("a"), Datum::list(vec![Datum::sym("b")])]);
        let s = Syntax::from_datum(&d, sp(), &ScopeSet::new());
        let sc = Scope::fresh();
        let s2 = s.add_scope(sc);
        let inner = &s2.as_list().unwrap()[1].as_list().unwrap()[0];
        assert!(inner.scopes().contains(sc));
        let s3 = s2.remove_scope(sc);
        let inner3 = &s3.as_list().unwrap()[1].as_list().unwrap()[0];
        assert!(!inner3.scopes().contains(sc));
    }

    #[test]
    fn flip_scope_round_trips() {
        let s = Syntax::ident(Symbol::from("z"), sp());
        let sc = Scope::fresh();
        let flipped = s.flip_scope(sc);
        assert!(flipped.scopes().contains(sc));
        assert_eq!(flipped.flip_scope(sc), s);
    }

    #[test]
    fn properties_are_out_of_band() {
        let x = Syntax::ident(Symbol::from("x"), sp());
        let key = Symbol::from("type-annotation");
        let ty = Syntax::ident(Symbol::from("Integer"), sp());
        let annotated = x.with_property(key, ty.clone().into());
        // the datum is unchanged — out-of-band
        assert_eq!(annotated.to_datum(), x.to_datum());
        assert_eq!(
            annotated.property(key).and_then(PropValue::as_syntax),
            Some(&ty)
        );
        assert!(x.property(key).is_none());
    }

    #[test]
    fn properties_survive_scope_ops() {
        let key = Symbol::from("k");
        let x = Syntax::ident(Symbol::from("x"), sp()).with_property(key, Datum::Int(7).into());
        let sc = Scope::fresh();
        let moved = x.add_scope(sc);
        assert_eq!(
            moved.property(key).and_then(PropValue::as_datum),
            Some(&Datum::Int(7))
        );
    }

    #[test]
    fn structural_equality_includes_scopes() {
        let a = Syntax::ident(Symbol::from("v"), sp());
        let b = Syntax::ident(Symbol::from("v"), sp());
        assert_eq!(a, b);
        let sc = Scope::fresh();
        assert_ne!(a.add_scope(sc), b);
        assert_eq!(a.add_scope(sc), b.add_scope(sc));
    }

    #[test]
    fn copy_properties() {
        let k1 = Symbol::from("k1");
        let k2 = Symbol::from("k2");
        let src = Syntax::ident(Symbol::from("s"), sp())
            .with_property(k1, Datum::Int(1).into())
            .with_property(k2, Datum::Int(2).into());
        let dst = Syntax::ident(Symbol::from("d"), sp()).copy_properties_from(&src);
        assert_eq!(
            dst.property(k1).and_then(PropValue::as_datum),
            Some(&Datum::Int(1))
        );
        assert_eq!(
            dst.property(k2).and_then(PropValue::as_datum),
            Some(&Datum::Int(2))
        );
    }
}
