//! Plain S-expression data.
//!
//! A [`Datum`] is the result of `read`ing source text with all lexical
//! structure resolved: symbols, literals, and (possibly improper) lists.
//! Syntax objects (see [`crate::syntax`]) wrap datums with source locations,
//! scope sets, and properties; `syntax->datum` strips back down to a
//! `Datum`.
//!
//! # Examples
//!
//! ```
//! use lagoon_syntax::{Datum, Symbol};
//! let d = Datum::list(vec![Datum::sym("+"), Datum::Int(1), Datum::Int(2)]);
//! assert_eq!(d.to_string(), "(+ 1 2)");
//! ```

use crate::symbol::Symbol;
use std::fmt;
use std::sync::Arc;

/// An S-expression value as produced by the reader.
#[derive(Clone, Debug, PartialEq)]
pub enum Datum {
    /// An identifier-shaped atom, e.g. `lambda`.
    Symbol(Symbol),
    /// `#t` or `#f`.
    Bool(bool),
    /// An exact integer, e.g. `42`.
    Int(i64),
    /// An inexact real, e.g. `3.7`.
    Float(f64),
    /// An inexact complex number, e.g. `2.0+2.0i` (the paper's
    /// `Float-Complex`).
    Complex(f64, f64),
    /// A string literal.
    Str(Arc<str>),
    /// A character literal, e.g. `#\a`.
    Char(char),
    /// A keyword, e.g. `#:key`.
    Keyword(Symbol),
    /// A proper list; the empty vector is `'()`.
    List(Vec<Datum>),
    /// An improper list `(a b . c)`: a non-empty prefix and a non-list tail.
    Improper(Vec<Datum>, Box<Datum>),
    /// A vector literal `#(1 2 3)`.
    Vector(Vec<Datum>),
}

impl Datum {
    /// Shorthand for a symbol datum.
    pub fn sym(name: &str) -> Datum {
        Datum::Symbol(Symbol::intern(name))
    }

    /// Shorthand for a string datum.
    pub fn string(s: &str) -> Datum {
        Datum::Str(Arc::from(s))
    }

    /// Shorthand for a proper list.
    pub fn list(items: Vec<Datum>) -> Datum {
        Datum::List(items)
    }

    /// The empty list `'()`.
    pub fn nil() -> Datum {
        Datum::List(Vec::new())
    }

    /// Whether this is the empty list.
    pub fn is_nil(&self) -> bool {
        matches!(self, Datum::List(v) if v.is_empty())
    }

    /// The symbol, if this datum is one.
    pub fn as_symbol(&self) -> Option<Symbol> {
        match self {
            Datum::Symbol(s) => Some(*s),
            _ => None,
        }
    }

    /// The elements, if this datum is a proper list.
    pub fn as_list(&self) -> Option<&[Datum]> {
        match self {
            Datum::List(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the datum is an atom (not a list or vector).
    pub fn is_atom(&self) -> bool {
        !matches!(
            self,
            Datum::List(_) | Datum::Improper(_, _) | Datum::Vector(_)
        )
    }
}

/// Writes a string in `write` notation with escapes.
pub(crate) fn write_string_literal(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Writes a character in `write` notation, e.g. `#\a`, `#\newline`.
pub(crate) fn write_char_literal(f: &mut fmt::Formatter<'_>, c: char) -> fmt::Result {
    match c {
        '\n' => f.write_str("#\\newline"),
        ' ' => f.write_str("#\\space"),
        '\t' => f.write_str("#\\tab"),
        c => write!(f, "#\\{c}"),
    }
}

/// Writes a float so that it reads back as a float (always with a decimal
/// point or exponent).
pub(crate) fn write_float(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if x.is_nan() {
        f.write_str("+nan.0")
    } else if x.is_infinite() {
        f.write_str(if x > 0.0 { "+inf.0" } else { "-inf.0" })
    } else if x == x.trunc() && x.abs() < 1e16 {
        write!(f, "{x:.1}")
    } else {
        write!(f, "{x}")
    }
}

/// Writes a float-complex, e.g. `2.0+2.0i`.
pub(crate) fn write_complex(f: &mut fmt::Formatter<'_>, re: f64, im: f64) -> fmt::Result {
    write_float(f, re)?;
    if im >= 0.0 || im.is_nan() {
        f.write_str("+")?;
        write_float(f, im.abs())?;
    } else {
        f.write_str("-")?;
        write_float(f, -im)?;
    }
    f.write_str("i")
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Symbol(s) => write!(f, "{s}"),
            Datum::Bool(true) => f.write_str("#t"),
            Datum::Bool(false) => f.write_str("#f"),
            Datum::Int(n) => write!(f, "{n}"),
            Datum::Float(x) => write_float(f, *x),
            Datum::Complex(re, im) => write_complex(f, *re, *im),
            Datum::Str(s) => write_string_literal(f, s),
            Datum::Char(c) => write_char_literal(f, *c),
            Datum::Keyword(s) => write!(f, "#:{s}"),
            Datum::List(items) => {
                f.write_str("(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{d}")?;
                }
                f.write_str(")")
            }
            Datum::Improper(items, tail) => {
                f.write_str("(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, " . {tail})")
            }
            Datum::Vector(items) => {
                f.write_str("#(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{d}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_display() {
        assert_eq!(Datum::sym("x").to_string(), "x");
        assert_eq!(Datum::Bool(true).to_string(), "#t");
        assert_eq!(Datum::Int(-3).to_string(), "-3");
        assert_eq!(Datum::Float(3.0).to_string(), "3.0");
        assert_eq!(Datum::Float(3.25).to_string(), "3.25");
        assert_eq!(Datum::Complex(2.0, 2.0).to_string(), "2.0+2.0i");
        assert_eq!(Datum::Complex(0.0, -1.5).to_string(), "0.0-1.5i");
        assert_eq!(Datum::string("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Datum::Char('a').to_string(), "#\\a");
        assert_eq!(Datum::Char('\n').to_string(), "#\\newline");
        assert_eq!(Datum::Keyword(Symbol::from("kw")).to_string(), "#:kw");
    }

    #[test]
    fn lists_display() {
        assert_eq!(Datum::nil().to_string(), "()");
        let l = Datum::list(vec![Datum::sym("a"), Datum::Int(1)]);
        assert_eq!(l.to_string(), "(a 1)");
        let imp = Datum::Improper(vec![Datum::sym("a")], Box::new(Datum::sym("b")));
        assert_eq!(imp.to_string(), "(a . b)");
        let v = Datum::Vector(vec![Datum::Int(1), Datum::Int(2)]);
        assert_eq!(v.to_string(), "#(1 2)");
    }

    #[test]
    fn special_floats() {
        assert_eq!(Datum::Float(f64::INFINITY).to_string(), "+inf.0");
        assert_eq!(Datum::Float(f64::NEG_INFINITY).to_string(), "-inf.0");
        assert_eq!(Datum::Float(f64::NAN).to_string(), "+nan.0");
    }

    #[test]
    fn accessors() {
        assert!(Datum::nil().is_nil());
        assert!(!Datum::list(vec![Datum::Int(1)]).is_nil());
        assert_eq!(Datum::sym("q").as_symbol(), Some(Symbol::from("q")));
        assert_eq!(Datum::Int(1).as_symbol(), None);
        assert!(Datum::Int(1).is_atom());
        assert!(!Datum::nil().is_atom());
    }
}
