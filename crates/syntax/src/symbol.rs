//! Interned symbols.
//!
//! Symbols are the identifiers of the Lagoon language. They are interned in
//! a global table so that equality and hashing are O(1), and so that a
//! [`Symbol`] is a small `Copy` value that can be embedded in every datum,
//! syntax object, and binding-table key.
//!
//! # Examples
//!
//! ```
//! use lagoon_syntax::Symbol;
//! let a = Symbol::from("lambda");
//! let b = Symbol::from("lambda");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "lambda");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned symbol: a cheap, copyable handle to a string.
///
/// Two symbols are equal iff their names are equal (for symbols created via
/// [`Symbol::from`]) — gensyms created with [`Symbol::fresh`] are equal only
/// to themselves.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<String>,
    table: HashMap<String, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

// Lock poisoning below is recovered with `into_inner`: the interner is
// append-only (an entry is fully constructed before the guard drops), so a
// panic elsewhere never leaves it in an inconsistent state.
impl Symbol {
    /// Interns `name`, returning the canonical symbol for it.
    pub fn intern(name: &str) -> Symbol {
        {
            let rd = interner().read().unwrap_or_else(|e| e.into_inner());
            if let Some(&id) = rd.table.get(name) {
                return Symbol(id);
            }
        }
        let mut wr = interner().write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = wr.table.get(name) {
            return Symbol(id);
        }
        let id = wr.names.len() as u32;
        wr.names.push(name.to_owned());
        wr.table.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// Creates a fresh, uninterned symbol whose printed name starts with
    /// `base`. The result is distinct from every other symbol, including
    /// other fresh symbols with the same base.
    ///
    /// This is the analogue of Lisp's `gensym`, used by the expander for
    /// globally unique binding names.
    pub fn fresh(base: &str) -> Symbol {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let mut wr = interner().write().unwrap_or_else(|e| e.into_inner());
        let name = loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let name = format!("{base}~{n}");
            // Skip names the interner already knows: decoding a compiled
            // artifact interns the gensym names it recorded, and a live
            // gensym must stay distinct from those by *name*, not just
            // identity, for its own artifact to be loadable later.
            if !wr.table.contains_key(&name) {
                break name;
            }
        };
        let id = wr.names.len() as u32;
        // Deliberately *not* added to the lookup table: a later
        // `Symbol::intern("x~0")` must not collide with this gensym.
        wr.names.push(name);
        Symbol(id)
    }

    /// The symbol's name. Allocates a `String` because the interner may
    /// grow; the name itself is immutable.
    pub fn as_str(&self) -> String {
        interner().read().unwrap_or_else(|e| e.into_inner()).names[self.0 as usize].clone()
    }

    /// Runs `f` on the symbol's name without cloning it.
    pub fn with_str<R>(&self, f: impl FnOnce(&str) -> R) -> R {
        f(&interner().read().unwrap_or_else(|e| e.into_inner()).names[self.0 as usize])
    }

    /// The raw interner index. Useful only for debugging.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| f.write_str(s))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| write!(f, "'{s}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Symbol::from("foo"), Symbol::from("foo"));
        assert_ne!(Symbol::from("foo"), Symbol::from("bar"));
    }

    #[test]
    fn round_trips_name() {
        assert_eq!(Symbol::from("hello-world").as_str(), "hello-world");
        assert_eq!(Symbol::from("").as_str(), "");
        assert_eq!(Symbol::from("λ").as_str(), "λ");
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = Symbol::fresh("x");
        let b = Symbol::fresh("x");
        assert_ne!(a, b);
        assert_ne!(a.as_str(), b.as_str());
    }

    #[test]
    fn fresh_symbols_do_not_collide_with_interned() {
        let g = Symbol::fresh("y");
        let name = g.as_str();
        let interned = Symbol::intern(&name);
        assert_ne!(g, interned, "gensym must stay uninterned");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", Symbol::from("abc")), "abc");
        assert_eq!(format!("{:?}", Symbol::from("abc")), "'abc");
    }
}
