//! Interned symbols.
//!
//! Symbols are the identifiers of the Lagoon language. They are interned in
//! a global table so that equality and hashing are O(1), and so that a
//! [`Symbol`] is a small `Copy` value that can be embedded in every datum,
//! syntax object, and binding-table key.
//!
//! # Examples
//!
//! ```
//! use lagoon_syntax::Symbol;
//! let a = Symbol::from("lambda");
//! let b = Symbol::from("lambda");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "lambda");
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned symbol: a cheap, copyable handle to a string.
///
/// Two symbols are equal iff their names are equal (for symbols created via
/// [`Symbol::from`]) — gensyms created with [`Symbol::fresh`] are equal only
/// to themselves.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<String>,
    table: HashMap<String, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

thread_local! {
    /// The fresh-scope stack: `(digest, next counter)` per open scope.
    /// See [`fresh_scope`].
    static FRESH_SCOPES: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A guard holding a deterministic gensym scope open on this thread;
/// created by [`fresh_scope`], closes the scope on drop.
#[derive(Debug)]
pub struct FreshScope(());

impl Drop for FreshScope {
    fn drop(&mut self) {
        FRESH_SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Opens a *deterministic gensym scope* on this thread until the
/// returned guard drops: every [`Symbol::fresh`] call inside the scope
/// is named `{base}~{digest:08x}.{n}` with `n` counting up from 0 per
/// scope, instead of drawing from the process-global counter.
///
/// Module compilation opens a scope keyed on a digest of the module's
/// name and source text, which makes freshened names a pure function of
/// the module's content: two workers (threads, or whole processes)
/// compiling the same module emit byte-identical artifacts, and names
/// from different modules cannot collide because their digests differ.
/// Scopes nest — compiling a dependency mid-expansion pushes the
/// dependency's scope and restores the importer's counter afterwards.
pub fn fresh_scope(digest: u64) -> FreshScope {
    FRESH_SCOPES.with(|s| s.borrow_mut().push((digest, 0)));
    FreshScope(())
}

/// Folds a 64-bit digest to the 32 bits used in scoped gensym names.
fn fold_digest(digest: u64) -> u32 {
    (digest ^ (digest >> 32)) as u32
}

/// Strips a gensym suffix from a printed symbol name, recovering the
/// base the user (or the prelude) wrote: both the global-counter form
/// (`map~3` → `map`) and the deterministic scoped form
/// (`map~1a2b3c4d.7` → `map`). Names without a recognized suffix pass
/// through unchanged. The typechecker and optimizer use this to
/// recognize alpha-renamed primitives; diagnostics use it for display.
pub fn strip_gensym(name: &str) -> &str {
    fn is_counter(s: &str) -> bool {
        !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
    }
    fn is_scoped(s: &str) -> bool {
        match s.split_once('.') {
            Some((hex, digits)) => {
                hex.len() == 8 && hex.bytes().all(|b| b.is_ascii_hexdigit()) && is_counter(digits)
            }
            None => false,
        }
    }
    match name.rsplit_once('~') {
        Some((base, suffix)) if !base.is_empty() && (is_counter(suffix) || is_scoped(suffix)) => {
            base
        }
        _ => name,
    }
}

/// The number of symbols the process-global interner currently holds —
/// interned names and gensyms alike. The interner is append-only and
/// never frees entries, so this is simultaneously a live gauge and a
/// high-water mark: a monotonically growing value under daemon
/// inline-source load is the documented interner leak made measurable
/// (the daemon's `stats` op reports it).
pub fn interned_count() -> usize {
    interner()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .names
        .len()
}

// Lock poisoning below is recovered with `into_inner`: the interner is
// append-only (an entry is fully constructed before the guard drops), so a
// panic elsewhere never leaves it in an inconsistent state.
impl Symbol {
    /// Interns `name`, returning the canonical symbol for it.
    pub fn intern(name: &str) -> Symbol {
        {
            let rd = interner().read().unwrap_or_else(|e| e.into_inner());
            if let Some(&id) = rd.table.get(name) {
                return Symbol(id);
            }
        }
        let mut wr = interner().write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = wr.table.get(name) {
            return Symbol(id);
        }
        let id = wr.names.len() as u32;
        wr.names.push(name.to_owned());
        wr.table.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// Creates a fresh, uninterned symbol whose printed name starts with
    /// `base`. The result is distinct from every other symbol, including
    /// other fresh symbols with the same base.
    ///
    /// This is the analogue of Lisp's `gensym`, used by the expander for
    /// globally unique binding names.
    ///
    /// Inside a [`fresh_scope`] the name is `{base}~{digest:08x}.{n}` —
    /// deterministic per scope, so parallel builds of the same module
    /// freshen identically (the name may coincide with an interned
    /// symbol decoded from the module's own artifact; identities stay
    /// distinct, and by construction the names refer to the same
    /// binding). Outside any scope the name draws from a process-global
    /// counter and skips names the interner already knows: decoding a
    /// compiled artifact interns the gensym names it recorded, and an
    /// unscoped live gensym must stay distinct from those by *name*,
    /// not just identity, for its own artifact to be loadable later.
    pub fn fresh(base: &str) -> Symbol {
        let scoped = FRESH_SCOPES.with(|s| {
            s.borrow_mut().last_mut().map(|(digest, n)| {
                let name = format!("{base}~{:08x}.{n}", fold_digest(*digest));
                *n += 1;
                name
            })
        });
        let mut wr = interner().write().unwrap_or_else(|e| e.into_inner());
        let name = match scoped {
            Some(name) => name,
            None => {
                static COUNTER: AtomicU64 = AtomicU64::new(0);
                loop {
                    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
                    let name = format!("{base}~{n}");
                    if !wr.table.contains_key(&name) {
                        break name;
                    }
                }
            }
        };
        let id = wr.names.len() as u32;
        // Deliberately *not* added to the lookup table: a later
        // `Symbol::intern("x~0")` must not collide with this gensym.
        wr.names.push(name);
        Symbol(id)
    }

    /// The symbol's name. Allocates a `String` because the interner may
    /// grow; the name itself is immutable.
    pub fn as_str(&self) -> String {
        interner().read().unwrap_or_else(|e| e.into_inner()).names[self.0 as usize].clone()
    }

    /// Runs `f` on the symbol's name without cloning it.
    pub fn with_str<R>(&self, f: impl FnOnce(&str) -> R) -> R {
        f(&interner().read().unwrap_or_else(|e| e.into_inner()).names[self.0 as usize])
    }

    /// The raw interner index. Useful only for debugging.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| f.write_str(s))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| write!(f, "'{s}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Symbol::from("foo"), Symbol::from("foo"));
        assert_ne!(Symbol::from("foo"), Symbol::from("bar"));
    }

    #[test]
    fn interned_count_grows_monotonically() {
        let before = interned_count();
        let _ = Symbol::intern("interned-count-probe-a");
        let _ = Symbol::fresh("interned-count-probe-b");
        let after = interned_count();
        assert!(after >= before + 2, "{before} -> {after}");
        // monotone: the interner never shrinks (other tests may intern
        // concurrently, so only >= is assertable here)
        let _ = Symbol::intern("interned-count-probe-a");
        assert!(interned_count() >= after);
    }

    #[test]
    fn round_trips_name() {
        assert_eq!(Symbol::from("hello-world").as_str(), "hello-world");
        assert_eq!(Symbol::from("").as_str(), "");
        assert_eq!(Symbol::from("λ").as_str(), "λ");
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = Symbol::fresh("x");
        let b = Symbol::fresh("x");
        assert_ne!(a, b);
        assert_ne!(a.as_str(), b.as_str());
    }

    #[test]
    fn fresh_symbols_do_not_collide_with_interned() {
        let g = Symbol::fresh("y");
        let name = g.as_str();
        let interned = Symbol::intern(&name);
        assert_ne!(g, interned, "gensym must stay uninterned");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", Symbol::from("abc")), "abc");
        assert_eq!(format!("{:?}", Symbol::from("abc")), "'abc");
    }

    #[test]
    fn scoped_fresh_is_deterministic_per_digest() {
        let names_a: Vec<String> = {
            let _scope = fresh_scope(0xDEAD_BEEF_0000_0001);
            (0..3).map(|_| Symbol::fresh("t").as_str()).collect()
        };
        let names_b: Vec<String> = {
            let _scope = fresh_scope(0xDEAD_BEEF_0000_0001);
            (0..3).map(|_| Symbol::fresh("t").as_str()).collect()
        };
        assert_eq!(names_a, names_b, "same digest must freshen identically");
        let other: Vec<String> = {
            let _scope = fresh_scope(0xDEAD_BEEF_0000_0002);
            (0..3).map(|_| Symbol::fresh("t").as_str()).collect()
        };
        assert_ne!(names_a, other, "different digests must not collide");
        // identities are still unique even when names repeat
        let a = {
            let _scope = fresh_scope(7);
            Symbol::fresh("x")
        };
        let b = {
            let _scope = fresh_scope(7);
            Symbol::fresh("x")
        };
        assert_eq!(a.as_str(), b.as_str());
        assert_ne!(a, b);
    }

    #[test]
    fn scoped_fresh_is_deterministic_across_threads() {
        let spawn = || {
            std::thread::spawn(|| {
                let _scope = fresh_scope(42);
                (0..4)
                    .map(|_| Symbol::fresh("w").as_str())
                    .collect::<Vec<_>>()
            })
        };
        let (a, b) = (spawn(), spawn());
        let a = a.join().expect("thread a");
        let b = b.join().expect("thread b");
        assert_eq!(a, b, "threads with the same scope must agree");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let _outer = fresh_scope(1);
        let first = Symbol::fresh("o").as_str();
        {
            let _inner = fresh_scope(2);
            let inner = Symbol::fresh("i").as_str();
            assert!(inner.contains('.'), "scoped name: {inner}");
            assert_ne!(inner, first);
        }
        let second = Symbol::fresh("o").as_str();
        // the outer counter kept counting from where it left off
        assert!(second.ends_with(".1"), "outer scope resumed: {second}");
    }
}
