//! Interned symbols: a shared immutable arena plus per-thread epoch
//! tables ("symbol worlds").
//!
//! Symbols are the identifiers of the Lagoon language. They are interned
//! so that equality and hashing are O(1), and so that a [`Symbol`] is a
//! small `Copy` value that can be embedded in every datum, syntax object,
//! and binding-table key.
//!
//! # Symbol worlds
//!
//! Storage is split in two:
//!
//! - The **arena**: an append-only table shared by the whole process.
//!   Names are leaked to `&'static str`, reads are lock-free (a page
//!   table of `OnceLock` slots), and ids are stable forever. Until the
//!   arena is *sealed* every intern and gensym lands here — a CLI run or
//!   a test binary behaves exactly like the old process-global interner.
//! - The **epoch table**: a thread-local table for everything interned
//!   after [`seal_arena`]. A long-lived worker takes an [`epoch_mark`]
//!   before serving a request and [`epoch_truncate`]s back to it
//!   afterwards, actually freeing the request's symbols instead of
//!   leaking them — the fix for the measured ~3.2 interned symbols per
//!   daemon request (BENCH_6).
//!
//! The split is encoded in the id: bit 31 clear means arena index; bit
//! 31 set means epoch symbol, with a 9-bit generation stamp (bits
//! 22–30) and a 22-bit table slot (bits 0–21). Truncation bumps the
//! generation, so a stale handle held across a truncation is *detected*
//! (its name reads as `#<stale-symbol>`) rather than aliasing a newer
//! symbol. After 512 truncations the stamp wraps; workers that also
//! recycle their whole world (`--recycle-after`) make misattribution
//! across a wrap practically impossible.
//!
//! Epoch symbols are meaningful only on the thread that created them.
//! That matches the system's architecture — values are `Rc`-based and
//! never cross threads; workers exchange only serialized `.lagc` bytes,
//! which store symbol *names* and re-intern on load.
//!
//! # Examples
//!
//! ```
//! use lagoon_syntax::Symbol;
//! let a = Symbol::from("lambda");
//! let b = Symbol::from("lambda");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "lambda");
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned symbol: a cheap, copyable handle to a string.
///
/// Two symbols are equal iff their names are equal (for symbols created via
/// [`Symbol::from`] on the same thread and epoch) — gensyms created with
/// [`Symbol::fresh`] are equal only to themselves.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

// ---------------------------------------------------------------------------
// The shared arena
// ---------------------------------------------------------------------------

/// Arena capacity: `ARENA_PAGES * ARENA_PAGE` symbols (4M). Ids fit in
/// 31 bits with room to spare; overflowing the arena falls back to the
/// epoch table rather than failing.
const ARENA_PAGE: usize = 1024;
const ARENA_PAGES: usize = 4096;

/// Bit 31 distinguishes epoch symbols from arena symbols.
const EPOCH_FLAG: u32 = 0x8000_0000;
/// Epoch ids: 22 bits of slot, 9 bits of generation stamp.
const SLOT_BITS: u32 = 22;
const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;
const STAMP_MASK: u32 = 0x1FF;

type ArenaPage = [OnceLock<&'static str>; ARENA_PAGE];

/// The page table. Pages are allocated on demand and leaked; a slot's
/// `OnceLock` publishes the name, so readers need no lock at all.
static ARENA_TABLE: [OnceLock<&'static ArenaPage>; ARENA_PAGES] =
    [const { OnceLock::new() }; ARENA_PAGES];

struct Arena {
    /// Published length: every id below it has its slot set.
    len: AtomicU32,
    /// Dedup map for *interned* names (gensyms are deliberately absent).
    /// Also the allocation lock: all arena writes happen under its write
    /// guard.
    map: RwLock<HashMap<&'static str, u32>>,
    /// Once sealed, new names go to the per-thread epoch table instead.
    sealed: AtomicBool,
}

fn arena() -> &'static Arena {
    static ARENA: OnceLock<Arena> = OnceLock::new();
    ARENA.get_or_init(|| Arena {
        len: AtomicU32::new(0),
        map: RwLock::new(HashMap::new()),
        sealed: AtomicBool::new(false),
    })
}

/// Lock-free name lookup for an arena id.
fn arena_name(id: u32) -> Option<&'static str> {
    let page = ARENA_TABLE.get(id as usize / ARENA_PAGE)?.get()?;
    page[id as usize % ARENA_PAGE].get().copied()
}

/// Allocates an arena slot for `name`. Callers must hold the `map`
/// write guard (the allocation lock); the map itself is only updated by
/// the caller, because gensyms allocate slots without map entries.
/// Returns `None` when the arena is full.
fn arena_alloc_locked(name: &str) -> Option<(u32, &'static str)> {
    let a = arena();
    let id = a.len.load(Ordering::Relaxed);
    let page_idx = id as usize / ARENA_PAGE;
    if page_idx >= ARENA_PAGES {
        return None;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let page = ARENA_TABLE[page_idx]
        .get_or_init(|| Box::leak(Box::new([const { OnceLock::new() }; ARENA_PAGE])));
    let _ = page[id as usize % ARENA_PAGE].set(leaked);
    a.len.store(id + 1, Ordering::Release);
    Some((id, leaked))
}

/// Seals the arena: names interned so far (typically the prelude/core
/// bootstrap) stay shared, lock-free and `&'static`; every *new* name on
/// any thread goes to that thread's epoch table, where it can be freed
/// by [`epoch_truncate`]. Sealing is process-global, idempotent, and
/// irreversible — the evaluation daemon seals after warming up a
/// throwaway registry, before spawning workers.
pub fn seal_arena() {
    arena().sealed.store(true, Ordering::SeqCst);
}

/// Whether [`seal_arena`] has been called in this process.
pub fn arena_sealed() -> bool {
    arena().sealed.load(Ordering::SeqCst)
}

/// Number of symbols in the shared arena (interned names and pre-seal
/// gensyms). Flat after sealing, except for the overflow safety valve.
pub fn arena_len() -> usize {
    arena().len.load(Ordering::Acquire) as usize
}

// ---------------------------------------------------------------------------
// The per-thread epoch table
// ---------------------------------------------------------------------------

#[derive(Default)]
struct EpochTable {
    /// Slot → name.
    names: Vec<Box<str>>,
    /// Slot → generation at allocation (stale-handle detection).
    stamps: Vec<u16>,
    /// Interned names only (gensyms stay out, as in the arena).
    map: HashMap<Box<str>, u32>,
    /// Current generation; bumped on every truncation.
    gen: u16,
}

impl EpochTable {
    /// Allocates a slot; gives the name back when the table is full.
    fn alloc(&mut self, name: String) -> Result<Symbol, String> {
        let slot = self.names.len() as u32;
        if slot > SLOT_MASK {
            return Err(name);
        }
        self.names.push(name.into_boxed_str());
        self.stamps.push(self.gen);
        Ok(compose_epoch(slot, self.gen))
    }

    fn name_of(&self, sym: Symbol) -> Option<&str> {
        let (slot, stamp) = decompose_epoch(sym)?;
        let idx = slot as usize;
        (self.stamps.get(idx) == Some(&stamp)).then(|| &*self.names[idx])
    }

    fn truncate_to(&mut self, len: usize) -> usize {
        let dropped = self.names.len().saturating_sub(len);
        for name in self.names.drain(len..) {
            self.map.remove(&name);
        }
        self.stamps.truncate(len);
        self.gen = (self.gen + 1) & STAMP_MASK as u16;
        dropped
    }
}

fn compose_epoch(slot: u32, gen: u16) -> Symbol {
    Symbol(EPOCH_FLAG | ((gen as u32 & STAMP_MASK) << SLOT_BITS) | slot)
}

fn decompose_epoch(sym: Symbol) -> Option<(u32, u16)> {
    (sym.0 & EPOCH_FLAG != 0).then_some((
        sym.0 & SLOT_MASK,
        ((sym.0 >> SLOT_BITS) & STAMP_MASK) as u16,
    ))
}

thread_local! {
    static EPOCH: RefCell<EpochTable> = RefCell::new(EpochTable::default());
}

/// A point in this thread's epoch table that [`epoch_truncate`] can roll
/// back to. Opaque and `Copy`; valid until the next truncation.
#[derive(Clone, Copy, Debug)]
pub struct EpochMark {
    len: u32,
    gen: u16,
}

/// Captures the current extent of this thread's epoch table. Symbols
/// created after the mark are discarded by [`epoch_truncate`].
pub fn epoch_mark() -> EpochMark {
    EPOCH.with(|t| {
        let t = t.borrow();
        EpochMark {
            len: t.names.len() as u32,
            gen: t.gen,
        }
    })
}

/// Discards every epoch symbol this thread created after `mark`,
/// freeing their names, and bumps the generation so stale handles are
/// detected instead of aliased. A mark from before an intervening
/// truncation is itself stale and is ignored (returns 0). Returns the
/// number of symbols discarded.
pub fn epoch_truncate(mark: EpochMark) -> usize {
    EPOCH.with(|t| {
        let mut t = t.borrow_mut();
        if mark.gen != t.gen || mark.len as usize > t.names.len() {
            return 0;
        }
        t.truncate_to(mark.len as usize)
    })
}

/// Discards this thread's entire epoch table (worker recycling / world
/// rebuild). Returns the number of symbols discarded.
pub fn epoch_reset() -> usize {
    EPOCH.with(|t| {
        let mut t = t.borrow_mut();
        t.map.clear();
        let dropped = t.names.len();
        t.names.clear();
        t.stamps.clear();
        t.gen = (t.gen + 1) & STAMP_MASK as u16;
        dropped
    })
}

/// Number of live symbols in this thread's epoch table.
pub fn epoch_len() -> usize {
    EPOCH.with(|t| t.borrow().names.len())
}

thread_local! {
    /// The fresh-scope stack: `(digest, next counter)` per open scope.
    /// See [`fresh_scope`].
    static FRESH_SCOPES: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A guard holding a deterministic gensym scope open on this thread;
/// created by [`fresh_scope`], closes the scope on drop.
#[derive(Debug)]
pub struct FreshScope(());

impl Drop for FreshScope {
    fn drop(&mut self) {
        FRESH_SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Opens a *deterministic gensym scope* on this thread until the
/// returned guard drops: every [`Symbol::fresh`] call inside the scope
/// is named `{base}~{digest:08x}.{n}` with `n` counting up from 0 per
/// scope, instead of drawing from the process-global counter.
///
/// Module compilation opens a scope keyed on a digest of the module's
/// name and source text, which makes freshened names a pure function of
/// the module's content: two workers (threads, or whole processes)
/// compiling the same module emit byte-identical artifacts, and names
/// from different modules cannot collide because their digests differ.
/// Scopes nest — compiling a dependency mid-expansion pushes the
/// dependency's scope and restores the importer's counter afterwards.
/// Determinism is unaffected by the arena/epoch split: names depend
/// only on the digest and counter, never on table state.
pub fn fresh_scope(digest: u64) -> FreshScope {
    FRESH_SCOPES.with(|s| s.borrow_mut().push((digest, 0)));
    FreshScope(())
}

/// Folds a 64-bit digest to the 32 bits used in scoped gensym names.
fn fold_digest(digest: u64) -> u32 {
    (digest ^ (digest >> 32)) as u32
}

/// Strips a gensym suffix from a printed symbol name, recovering the
/// base the user (or the prelude) wrote: both the global-counter form
/// (`map~3` → `map`) and the deterministic scoped form
/// (`map~1a2b3c4d.7` → `map`). Names without a recognized suffix pass
/// through unchanged. The typechecker and optimizer use this to
/// recognize alpha-renamed primitives; diagnostics use it for display.
pub fn strip_gensym(name: &str) -> &str {
    fn is_counter(s: &str) -> bool {
        !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit())
    }
    fn is_scoped(s: &str) -> bool {
        match s.split_once('.') {
            Some((hex, digits)) => {
                hex.len() == 8 && hex.bytes().all(|b| b.is_ascii_hexdigit()) && is_counter(digits)
            }
            None => false,
        }
    }
    match name.rsplit_once('~') {
        Some((base, suffix)) if !base.is_empty() && (is_counter(suffix) || is_scoped(suffix)) => {
            base
        }
        _ => name,
    }
}

/// The number of symbols in *this thread's world*: the shared arena
/// plus this thread's live epoch table (interned names and gensyms
/// alike). Before [`seal_arena`] this is the process-global count, as
/// it always was; after sealing, each worker thread reports its own
/// world, and the daemon's `stats` op aggregates per-worker gauges.
/// Flat across a request that is followed by an [`epoch_truncate`].
pub fn interned_count() -> usize {
    arena_len() + epoch_len()
}

/// Whether `name` is already known to this world as an *interned* name
/// (gensyms don't count — they are never in the lookup tables).
fn name_is_interned(name: &str) -> bool {
    let a = arena();
    if a.map
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .contains_key(name)
    {
        return true;
    }
    a.sealed.load(Ordering::SeqCst) && EPOCH.with(|t| t.borrow().map.contains_key(name))
}

/// Allocates a gensym (no lookup-table entry) in the current world:
/// epoch table once sealed, arena before. Falls over to the other
/// table when one is full.
fn alloc_gensym(name: String) -> Symbol {
    let name = if arena_sealed() {
        match EPOCH.with(|t| t.borrow_mut().alloc(name)) {
            Ok(sym) => return sym,
            Err(name) => name,
        }
    } else {
        name
    };
    // Pre-seal, or the epoch table overflowed its 22-bit slot space:
    // allocate in the arena (no map entry — gensyms stay uninterned).
    let wr = arena().map.write().unwrap_or_else(|e| e.into_inner());
    if let Some((id, _)) = arena_alloc_locked(&name) {
        drop(wr);
        return Symbol(id);
    }
    drop(wr);
    // Arena full too (4M symbols): last resort, force an epoch slot by
    // clearing nothing — truncation pressure is the operator's problem
    // at this point; return a best-effort epoch symbol or slot 0 alias.
    EPOCH.with(|t| {
        let mut t = t.borrow_mut();
        let gen = t.gen;
        t.alloc(name).unwrap_or_else(|_| compose_epoch(0, gen))
    })
}

// Lock poisoning below is recovered with `into_inner`: the arena is
// append-only (an entry is fully constructed before the guard drops), so a
// panic elsewhere never leaves it in an inconsistent state.
impl Symbol {
    /// Interns `name`, returning the canonical symbol for it — from the
    /// shared arena when the name is already there (or the arena is
    /// unsealed), otherwise from this thread's epoch table.
    pub fn intern(name: &str) -> Symbol {
        let a = arena();
        if let Some(&id) = a.map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            return Symbol(id);
        }
        if a.sealed.load(Ordering::SeqCst) {
            return EPOCH.with(|t| {
                let mut t = t.borrow_mut();
                if let Some(&id) = t.map.get(name) {
                    return Symbol(id);
                }
                match t.alloc(name.to_owned()) {
                    Ok(sym) => {
                        t.map.insert(name.into(), sym.0);
                        sym
                    }
                    // Epoch table full: spill into the arena so the
                    // symbol still works (a permanent entry — the
                    // safety valve, not the normal path).
                    Err(_) => {
                        drop(t);
                        Symbol::intern_arena(name)
                    }
                }
            });
        }
        Symbol::intern_arena(name)
    }

    /// Arena-path intern: dedup + allocate under the write lock.
    fn intern_arena(name: &str) -> Symbol {
        let a = arena();
        let mut wr = a.map.write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = wr.get(name) {
            return Symbol(id);
        }
        match arena_alloc_locked(name) {
            Some((id, leaked)) => {
                wr.insert(leaked, id);
                Symbol(id)
            }
            None => {
                // Arena full: fall back to an epoch entry.
                drop(wr);
                EPOCH.with(|t| {
                    let mut t = t.borrow_mut();
                    if let Some(&id) = t.map.get(name) {
                        return Symbol(id);
                    }
                    let gen = t.gen;
                    let sym = t
                        .alloc(name.to_owned())
                        .unwrap_or_else(|_| compose_epoch(0, gen));
                    t.map.insert(name.into(), sym.0);
                    sym
                })
            }
        }
    }

    /// Creates a fresh, uninterned symbol whose printed name starts with
    /// `base`. The result is distinct from every other symbol, including
    /// other fresh symbols with the same base.
    ///
    /// This is the analogue of Lisp's `gensym`, used by the expander for
    /// globally unique binding names.
    ///
    /// Inside a [`fresh_scope`] the name is `{base}~{digest:08x}.{n}` —
    /// deterministic per scope, so parallel builds of the same module
    /// freshen identically (the name may coincide with an interned
    /// symbol decoded from the module's own artifact; identities stay
    /// distinct, and by construction the names refer to the same
    /// binding). Outside any scope the name draws from a process-global
    /// counter and skips names the world already knows: decoding a
    /// compiled artifact interns the gensym names it recorded, and an
    /// unscoped live gensym must stay distinct from those by *name*,
    /// not just identity, for its own artifact to be loadable later.
    pub fn fresh(base: &str) -> Symbol {
        let scoped = FRESH_SCOPES.with(|s| {
            s.borrow_mut().last_mut().map(|(digest, n)| {
                let name = format!("{base}~{:08x}.{n}", fold_digest(*digest));
                *n += 1;
                name
            })
        });
        if let Some(name) = scoped {
            return alloc_gensym(name);
        }
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // The probe loop is bounded and formats *outside* any lock (the
        // old implementation held the interner write lock across the
        // whole format-and-retry loop). Collisions require someone to
        // have interned a literal "{base}~{n}" name, so in practice the
        // first probe wins; after the bound we take the name anyway —
        // identity (not name) uniqueness is the hard guarantee.
        const MAX_PROBES: u32 = 64;
        let mut name = String::new();
        for _ in 0..MAX_PROBES {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            name = format!("{base}~{n}");
            if !name_is_interned(&name) {
                break;
            }
        }
        alloc_gensym(name)
    }

    /// The symbol's name. Allocates a `String`; prefer
    /// [`Symbol::static_str`] or [`Symbol::with_str`] on hot paths.
    /// A stale epoch symbol (held across a truncation) reads as
    /// `#<stale-symbol>`.
    pub fn as_str(&self) -> String {
        match self.static_str() {
            Some(s) => s.to_owned(),
            None => EPOCH.with(|t| {
                t.borrow()
                    .name_of(*self)
                    .map(str::to_owned)
                    .unwrap_or_else(|| "#<stale-symbol>".to_owned())
            }),
        }
    }

    /// The symbol's name as a `&'static str` — `Some` for arena symbols
    /// (prelude/core names and everything interned before sealing),
    /// `None` for epoch symbols. Zero-cost and lock-free.
    pub fn static_str(&self) -> Option<&'static str> {
        if self.0 & EPOCH_FLAG == 0 {
            arena_name(self.0)
        } else {
            None
        }
    }

    /// Runs `f` on the symbol's name without cloning it for arena
    /// symbols (the overwhelmingly common case: prelude, core forms,
    /// user identifiers in unsealed processes). Epoch symbols copy the
    /// name out of the thread-local table first, so `f` may intern
    /// without re-entering the table borrow.
    pub fn with_str<R>(&self, f: impl FnOnce(&str) -> R) -> R {
        match self.static_str() {
            Some(s) => f(s),
            None => f(&self.as_str()),
        }
    }

    /// Whether this symbol's name is still reachable from this thread:
    /// always true for arena symbols, true for epoch symbols until
    /// their epoch is truncated. The daemon's binding-table sweep uses
    /// this to drop entries that refer to a finished request's world.
    pub fn is_live(&self) -> bool {
        if self.0 & EPOCH_FLAG == 0 {
            return true;
        }
        EPOCH.with(|t| t.borrow().name_of(*self).is_some())
    }

    /// The raw id. Useful only for debugging (bit 31 set means an epoch
    /// symbol; see the module docs for the layout).
    pub fn index(&self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol from a raw id obtained via [`Symbol::index`].
    /// Exists so compact packed representations (the runtime's NaN-boxed
    /// value word) can round-trip symbols without a lookup. Safe for any
    /// input: an id that names nothing renders as `#<stale-symbol>`.
    pub fn from_index(raw: u32) -> Symbol {
        Symbol(raw)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| f.write_str(s))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| write!(f, "'{s}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Sealing is process-global, so the epoch-world behaviors (post-seal
    // interning, truncation, stale detection) are exercised in the
    // `epoch_worlds` integration test, which owns its process. The unit
    // tests here run pre- or post-seal agnostically.

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Symbol::from("foo"), Symbol::from("foo"));
        assert_ne!(Symbol::from("foo"), Symbol::from("bar"));
    }

    #[test]
    fn interned_count_tracks_this_world() {
        // Replaces the obsolete `interned_count_grows_monotonically`:
        // the count is now a per-world gauge (arena + this thread's
        // epoch table) that *can* shrink at a truncation, but within an
        // epoch new symbols still grow it.
        let before = interned_count();
        let a = Symbol::intern("interned-count-probe-a");
        let g = Symbol::fresh("interned-count-probe-b");
        let after = interned_count();
        assert!(after >= before, "{before} -> {after}");
        // both symbols remain resolvable in this world
        assert_eq!(a.as_str(), "interned-count-probe-a");
        assert!(g.as_str().starts_with("interned-count-probe-b~"));
        // re-interning an existing name does not grow the world
        // (modulo concurrent tests interning, hence >=)
        let count = interned_count();
        let _ = Symbol::intern("interned-count-probe-a");
        assert!(interned_count() >= count);
    }

    #[test]
    fn round_trips_name() {
        assert_eq!(Symbol::from("hello-world").as_str(), "hello-world");
        assert_eq!(Symbol::from("").as_str(), "");
        assert_eq!(Symbol::from("λ").as_str(), "λ");
    }

    #[test]
    fn static_str_matches_as_str_for_arena_symbols() {
        let s = Symbol::from("static-str-probe");
        if let Some(st) = s.static_str() {
            assert_eq!(st, s.as_str());
        } else {
            // post-seal (another test binary sealed): still resolvable
            assert_eq!(s.as_str(), "static-str-probe");
        }
        assert!(s.is_live());
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = Symbol::fresh("x");
        let b = Symbol::fresh("x");
        assert_ne!(a, b);
        assert_ne!(a.as_str(), b.as_str());
    }

    #[test]
    fn fresh_symbols_do_not_collide_with_interned() {
        let g = Symbol::fresh("y");
        let name = g.as_str();
        let interned = Symbol::intern(&name);
        assert_ne!(g, interned, "gensym must stay uninterned");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", Symbol::from("abc")), "abc");
        assert_eq!(format!("{:?}", Symbol::from("abc")), "'abc");
    }

    #[test]
    fn scoped_fresh_is_deterministic_per_digest() {
        let names_a: Vec<String> = {
            let _scope = fresh_scope(0xDEAD_BEEF_0000_0001);
            (0..3).map(|_| Symbol::fresh("t").as_str()).collect()
        };
        let names_b: Vec<String> = {
            let _scope = fresh_scope(0xDEAD_BEEF_0000_0001);
            (0..3).map(|_| Symbol::fresh("t").as_str()).collect()
        };
        assert_eq!(names_a, names_b, "same digest must freshen identically");
        let other: Vec<String> = {
            let _scope = fresh_scope(0xDEAD_BEEF_0000_0002);
            (0..3).map(|_| Symbol::fresh("t").as_str()).collect()
        };
        assert_ne!(names_a, other, "different digests must not collide");
        // identities are still unique even when names repeat
        let a = {
            let _scope = fresh_scope(7);
            Symbol::fresh("x")
        };
        let b = {
            let _scope = fresh_scope(7);
            Symbol::fresh("x")
        };
        assert_eq!(a.as_str(), b.as_str());
        assert_ne!(a, b);
    }

    #[test]
    fn scoped_fresh_is_deterministic_across_threads() {
        let spawn = || {
            std::thread::spawn(|| {
                let _scope = fresh_scope(42);
                (0..4)
                    .map(|_| Symbol::fresh("w").as_str())
                    .collect::<Vec<_>>()
            })
        };
        let (a, b) = (spawn(), spawn());
        let a = a.join().expect("thread a");
        let b = b.join().expect("thread b");
        assert_eq!(a, b, "threads with the same scope must agree");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let _outer = fresh_scope(1);
        let first = Symbol::fresh("o").as_str();
        {
            let _inner = fresh_scope(2);
            let inner = Symbol::fresh("i").as_str();
            assert!(inner.contains('.'), "scoped name: {inner}");
            assert_ne!(inner, first);
        }
        let second = Symbol::fresh("o").as_str();
        // the outer counter kept counting from where it left off
        assert!(second.ends_with(".1"), "outer scope resumed: {second}");
    }

    #[test]
    fn epoch_mark_truncate_roundtrip_is_safe_pre_seal() {
        // Pre-seal, marks see an empty epoch table and truncation is a
        // no-op — the daemon API is safe to call unconditionally.
        let mark = epoch_mark();
        let _ = Symbol::intern("pre-seal-probe");
        assert_eq!(epoch_truncate(mark), 0);
    }
}
