//! A tiny self-describing binary codec for syntax-layer data.
//!
//! The compiled-module store serializes bytecode, datums, and spans to
//! `compiled/<name>.lagc` files. This module provides the byte-level
//! primitives — LEB128 varints, zigzag signed integers, raw-bit floats,
//! length-prefixed strings — plus the [`Datum`], [`Symbol`], and
//! [`Span`] encodings those files are built from.
//!
//! Two properties matter:
//!
//! * **Symbols survive re-interning.** A symbol is encoded by *name*
//!   and decoded with [`Symbol::intern`], so artifacts written by one
//!   process link correctly in another. Gensyms (`Symbol::fresh`)
//!   decode to their *interned twins* — same name, different identity —
//!   which the module registry compensates for (base-environment
//!   aliasing and artifact-identity digests; see `lagoon-core`).
//! * **Decoding hostile bytes never panics.** Every read is
//!   bounds-checked, claimed collection lengths are capped by the bytes
//!   actually remaining, and recursion is depth-limited; failures
//!   surface as a structured [`WireError`].

use crate::datum::Datum;
use crate::span::Span;
use crate::symbol::Symbol;
use std::fmt;
use std::sync::Arc;

/// Maximum nesting depth accepted when decoding recursive structures.
pub const MAX_DEPTH: usize = 512;

/// A structured decode failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl WireError {
    /// A decode failure at `offset`.
    pub fn new(message: impl Into<String>, offset: usize) -> WireError {
        WireError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------

/// An append-only byte buffer with the codec's primitive encoders.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one raw byte.
    pub fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends an unsigned LEB128 varint.
    pub fn uint(&mut self, mut n: u64) {
        loop {
            let byte = (n & 0x7f) as u8;
            n >>= 7;
            if n == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a `u32` as a varint.
    pub fn u32(&mut self, n: u32) {
        self.uint(u64::from(n));
    }

    /// Appends a `usize` as a varint.
    pub fn len(&mut self, n: usize) {
        self.uint(n as u64);
    }

    /// Appends a signed integer, zigzag-encoded.
    pub fn int(&mut self, n: i64) {
        self.uint(((n << 1) ^ (n >> 63)) as u64);
    }

    /// Appends an `f64` as its raw little-endian bits.
    pub fn f64(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, b: bool) {
        self.buf.push(u8::from(b));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a symbol by name (decoding re-interns).
    pub fn symbol(&mut self, s: Symbol) {
        s.with_str(|name| self.str(name));
    }

    /// Appends a span: source symbol plus four varint coordinates.
    pub fn span(&mut self, s: Span) {
        self.symbol(s.source);
        self.u32(s.start);
        self.u32(s.end);
        self.u32(s.line);
        self.u32(s.col);
    }

    /// Appends a datum, tagged by variant.
    pub fn datum(&mut self, d: &Datum) {
        match d {
            Datum::Symbol(s) => {
                self.u8(0);
                self.symbol(*s);
            }
            Datum::Bool(b) => {
                self.u8(1);
                self.bool(*b);
            }
            Datum::Int(n) => {
                self.u8(2);
                self.int(*n);
            }
            Datum::Float(x) => {
                self.u8(3);
                self.f64(*x);
            }
            Datum::Complex(re, im) => {
                self.u8(4);
                self.f64(*re);
                self.f64(*im);
            }
            Datum::Str(s) => {
                self.u8(5);
                self.str(s);
            }
            Datum::Char(c) => {
                self.u8(6);
                self.u32(*c as u32);
            }
            Datum::Keyword(s) => {
                self.u8(7);
                self.symbol(*s);
            }
            Datum::List(items) => {
                self.u8(8);
                self.len(items.len());
                for item in items {
                    self.datum(item);
                }
            }
            Datum::Improper(items, tail) => {
                self.u8(9);
                self.len(items.len());
                for item in items {
                    self.datum(item);
                }
                self.datum(tail);
            }
            Datum::Vector(items) => {
                self.u8(10);
                self.len(items.len());
                for item in items {
                    self.datum(item);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// reader
// ---------------------------------------------------------------------

/// A bounds-checked cursor over encoded bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// The current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn err(&self, message: impl Into<String>) -> WireError {
        WireError::new(message, self.pos)
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.err("truncated input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncated input.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.err("truncated input"))?;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an over-long encoding.
    pub fn uint(&mut self) -> Result<u64, WireError> {
        let mut n: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err(self.err("varint overflows 64 bits"));
            }
            n |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(n);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.err("varint too long"));
            }
        }
    }

    /// Reads a varint that must fit a `u32`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or out-of-range values.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let n = self.uint()?;
        u32::try_from(n).map_err(|_| self.err("value out of u32 range"))
    }

    /// Reads a varint that must fit a `u16`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or out-of-range values.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let n = self.uint()?;
        u16::try_from(n).map_err(|_| self.err("value out of u16 range"))
    }

    /// Reads a collection length, capped by the bytes remaining (each
    /// element costs at least one byte, so a larger claim is corrupt).
    ///
    /// # Errors
    ///
    /// Fails on truncation or an implausible length claim.
    pub fn len(&mut self) -> Result<usize, WireError> {
        let n = self.uint()?;
        let n = usize::try_from(n).map_err(|_| self.err("length out of range"))?;
        if n > self.remaining() {
            return Err(self.err(format!(
                "length claim {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a zigzag-encoded signed integer.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn int(&mut self) -> Result<i64, WireError> {
        let n = self.uint()?;
        Ok(((n >> 1) as i64) ^ -((n & 1) as i64))
    }

    /// Reads an `f64` from raw little-endian bits.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let bytes = self.raw(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// Reads a boolean byte.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a byte other than 0/1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(format!("bad boolean byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Fails on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let n = self.len()?;
        let bytes = self.raw(n)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::new("invalid UTF-8", self.pos))
    }

    /// Reads a symbol, interning its name.
    ///
    /// # Errors
    ///
    /// Fails on truncation or invalid UTF-8.
    pub fn symbol(&mut self) -> Result<Symbol, WireError> {
        Ok(Symbol::intern(self.str()?))
    }

    /// Reads a span.
    ///
    /// # Errors
    ///
    /// Fails on truncation or malformed fields.
    pub fn span(&mut self) -> Result<Span, WireError> {
        let source = self.symbol()?;
        let start = self.u32()?;
        let end = self.u32()?;
        let line = self.u32()?;
        let col = self.u32()?;
        Ok(Span::new(source, start, end, line, col))
    }

    /// Reads a datum.
    ///
    /// # Errors
    ///
    /// Fails on truncation, bad tags, or excessive nesting.
    pub fn datum(&mut self) -> Result<Datum, WireError> {
        self.datum_at(0)
    }

    fn datum_at(&mut self, depth: usize) -> Result<Datum, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("datum nests too deeply"));
        }
        match self.u8()? {
            0 => Ok(Datum::Symbol(self.symbol()?)),
            1 => Ok(Datum::Bool(self.bool()?)),
            2 => Ok(Datum::Int(self.int()?)),
            3 => Ok(Datum::Float(self.f64()?)),
            4 => {
                let re = self.f64()?;
                let im = self.f64()?;
                Ok(Datum::Complex(re, im))
            }
            5 => Ok(Datum::Str(Arc::from(self.str()?))),
            6 => {
                let code = self.u32()?;
                char::from_u32(code)
                    .map(Datum::Char)
                    .ok_or_else(|| self.err(format!("bad character scalar {code}")))
            }
            7 => Ok(Datum::Keyword(self.symbol()?)),
            8 => {
                let n = self.len()?;
                let mut items = Vec::with_capacity(n.min(self.remaining()));
                for _ in 0..n {
                    items.push(self.datum_at(depth + 1)?);
                }
                Ok(Datum::List(items))
            }
            9 => {
                let n = self.len()?;
                let mut items = Vec::with_capacity(n.min(self.remaining()));
                for _ in 0..n {
                    items.push(self.datum_at(depth + 1)?);
                }
                let tail = self.datum_at(depth + 1)?;
                Ok(Datum::Improper(items, Box::new(tail)))
            }
            10 => {
                let n = self.len()?;
                let mut items = Vec::with_capacity(n.min(self.remaining()));
                for _ in 0..n {
                    items.push(self.datum_at(depth + 1)?);
                }
                Ok(Datum::Vector(items))
            }
            tag => Err(self.err(format!("bad datum tag {tag}"))),
        }
    }
}

/// FNV-1a 64-bit over `bytes` — the store's content digest. Not
/// cryptographic; it only needs to make accidental staleness collisions
/// vanishingly unlikely.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = Writer::new();
        w.uint(0);
        w.uint(127);
        w.uint(128);
        w.uint(u64::MAX);
        w.int(0);
        w.int(-1);
        w.int(i64::MIN);
        w.int(i64::MAX);
        w.f64(3.25);
        w.f64(f64::NEG_INFINITY);
        w.bool(true);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.uint().unwrap(), 0);
        assert_eq!(r.uint().unwrap(), 127);
        assert_eq!(r.uint().unwrap(), 128);
        assert_eq!(r.uint().unwrap(), u64::MAX);
        assert_eq!(r.int().unwrap(), 0);
        assert_eq!(r.int().unwrap(), -1);
        assert_eq!(r.int().unwrap(), i64::MIN);
        assert_eq!(r.int().unwrap(), i64::MAX);
        assert_eq!(r.f64().unwrap(), 3.25);
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn datum_round_trips() {
        let d = Datum::List(vec![
            Datum::sym("lambda"),
            Datum::Improper(
                vec![Datum::Int(-7), Datum::Float(1.5)],
                Box::new(Datum::sym("rest")),
            ),
            Datum::Vector(vec![Datum::Bool(true), Datum::Char('λ')]),
            Datum::string("s\"x"),
            Datum::Keyword(Symbol::intern("kw")),
            Datum::Complex(1.0, -2.0),
        ]);
        let mut w = Writer::new();
        w.datum(&d);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.datum().unwrap(), d);
        assert!(r.is_empty());
    }

    #[test]
    fn span_round_trips() {
        let s = Span::new(Symbol::intern("m.lag"), 3, 9, 2, 5);
        let mut w = Writer::new();
        w.span(s);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).span().unwrap(), s);
    }

    #[test]
    fn gensyms_decode_to_interned_twins() {
        let g = Symbol::fresh("cache");
        let mut w = Writer::new();
        w.symbol(g);
        let bytes = w.into_bytes();
        let decoded = Reader::new(&bytes).symbol().unwrap();
        assert_ne!(decoded, g, "gensym identity is not preserved");
        assert_eq!(decoded.as_str(), g.as_str(), "the name is");
    }

    #[test]
    fn truncation_and_bad_tags_error_cleanly() {
        let mut w = Writer::new();
        w.datum(&Datum::List(vec![Datum::Int(1), Datum::string("abc")]));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let _ = Reader::new(&bytes[..cut]).datum(); // must not panic
        }
        assert!(Reader::new(&[99]).datum().is_err());
        // implausible length claim: a list of 2^40 elements in 3 bytes
        let mut w = Writer::new();
        w.u8(8);
        w.uint(1 << 40);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).datum().is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let mut w = Writer::new();
        for _ in 0..(MAX_DEPTH + 10) {
            w.u8(8); // List
            w.uint(1); // of one element
        }
        w.datum(&Datum::Int(0));
        let bytes = w.into_bytes();
        let e = Reader::new(&bytes).datum().unwrap_err();
        assert!(e.message.contains("deep"), "{e}");
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"lagoon"), fnv1a(b"lagoon"));
    }
}
