//! The reader: text → syntax objects.
//!
//! [`read_syntax`] parses one datum's worth of source into a [`Syntax`]
//! tree with accurate spans. [`read_module`] additionally handles the
//! `#lang <name>` first line that selects the module's language (paper
//! §2.3).
//!
//! Reader shorthands expand during reading:
//!
//! | shorthand | reads as |
//! |-----------|----------|
//! | `'x`      | `(quote x)` |
//! | `` `x ``  | `(quasiquote x)` |
//! | `,x`      | `(unquote x)` |
//! | `,@x`     | `(unquote-splicing x)` |
//! | `#'x`     | `(syntax x)` |
//! | `` #`x `` | `(quasisyntax x)` |
//! | `#,x`     | `(unsyntax x)` |
//! | `#,@x`    | `(unsyntax-splicing x)` |

use crate::datum::Datum;
use crate::lexer::{Lexer, ReadError, Token};
use crate::span::Span;
use crate::symbol::Symbol;
use crate::syntax::Syntax;

/// A module's source after reading: the `#lang` name plus body forms.
#[derive(Clone, Debug)]
pub struct ModuleSource {
    /// The language named on the `#lang` line.
    pub lang: Symbol,
    /// The module's top-level forms.
    pub body: Vec<Syntax>,
    /// The source name used for spans.
    pub source: Symbol,
}

/// Nesting deeper than this is rejected with a read error rather than
/// risking host-stack exhaustion in the recursive-descent reader. Kept
/// well under what a 2 MiB thread stack tolerates in debug builds; the
/// deepest real source in this repository nests 11 levels.
const MAX_READER_DEPTH: u32 = 256;

struct Reader<'a> {
    lexer: Lexer<'a>,
    peeked: Option<(Token, Span)>,
    depth: u32,
}

impl<'a> Reader<'a> {
    fn new(src: &'a str, source: Symbol) -> Reader<'a> {
        Reader {
            lexer: Lexer::new(src, source),
            peeked: None,
            depth: 0,
        }
    }

    fn next(&mut self) -> Result<(Token, Span), ReadError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lexer.next_token(),
        }
    }

    fn peek(&mut self) -> Result<&(Token, Span), ReadError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next_token()?);
        }
        self.peeked
            .as_ref()
            .ok_or_else(|| ReadError::new("reader lost its lookahead", Span::synthetic()))
    }

    /// An item the surrounding loop's `peek` proved is there; reports a
    /// structured error (never panics) if that invariant breaks.
    fn read_peeked_item(&mut self) -> Result<Syntax, ReadError> {
        self.read_one()?
            .ok_or_else(|| ReadError::new("unexpected end of input", Span::synthetic()))
    }

    /// Skips tokens up to the start of the next plausible top-level
    /// form, so reading can continue after an error. Balances parens
    /// while skipping; bounded so a degenerate token stream cannot spin.
    fn resync(&mut self) {
        let mut depth = 0u32;
        for _ in 0..1_000_000 {
            match self.peek() {
                Ok((Token::Eof, _)) => return,
                Ok((Token::Close, _)) => {
                    let _ = self.next();
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return;
                    }
                }
                Ok((Token::Open | Token::VecOpen, _)) => {
                    if depth == 0 {
                        return;
                    }
                    let _ = self.next();
                    depth += 1;
                }
                Ok(_) => {
                    if depth == 0 {
                        return;
                    }
                    let _ = self.next();
                }
                Err(_) => {
                    let _ = self.next();
                }
            }
        }
    }

    fn shorthand(&mut self, name: &str, span: Span) -> Result<Syntax, ReadError> {
        let inner = self.read_one()?.ok_or_else(|| {
            ReadError::new(format!("expected a form after {name} shorthand"), span)
        })?;
        let full = span.merge(&inner.span());
        Ok(Syntax::list(
            vec![Syntax::ident(Symbol::intern(name), span), inner],
            full,
        ))
    }

    /// Reads one form; `Ok(None)` at end of input.
    fn read_one(&mut self) -> Result<Option<Syntax>, ReadError> {
        let (tok, span) = self.next()?;
        // charge the depth after consuming the token so every error
        // path has made progress (resync relies on this)
        self.depth += 1;
        let result = if self.depth > MAX_READER_DEPTH {
            Err(ReadError::new(
                format!("nesting too deep (limit {MAX_READER_DEPTH})"),
                span,
            ))
        } else {
            self.read_dispatch(tok, span)
        };
        self.depth -= 1;
        result
    }

    fn read_dispatch(&mut self, tok: Token, span: Span) -> Result<Option<Syntax>, ReadError> {
        match tok {
            Token::Eof => Ok(None),
            Token::Close => Err(ReadError::new("unexpected `)`", span)),
            Token::Dot => Err(ReadError::new("unexpected `.`", span)),
            Token::Open => self.read_list_tail(span).map(Some),
            Token::VecOpen => {
                let mut items = Vec::new();
                loop {
                    match self.peek()? {
                        (Token::Close, _) => {
                            let (_, end) = self.next()?;
                            return Ok(Some(Syntax::vector(items, span.merge(&end))));
                        }
                        (Token::Eof, eof_span) => {
                            return Err(ReadError::new("unterminated vector", *eof_span))
                        }
                        _ => {
                            let item = self.read_peeked_item()?;
                            items.push(item);
                        }
                    }
                }
            }
            Token::Quote => self.shorthand("quote", span).map(Some),
            Token::Quasiquote => self.shorthand("quasiquote", span).map(Some),
            Token::Unquote => self.shorthand("unquote", span).map(Some),
            Token::UnquoteSplicing => self.shorthand("unquote-splicing", span).map(Some),
            Token::SyntaxQuote => self.shorthand("syntax", span).map(Some),
            Token::Quasisyntax => self.shorthand("quasisyntax", span).map(Some),
            Token::Unsyntax => self.shorthand("unsyntax", span).map(Some),
            Token::UnsyntaxSplicing => self.shorthand("unsyntax-splicing", span).map(Some),
            Token::Symbol(s) => Ok(Some(Syntax::atom(Datum::Symbol(s), span))),
            Token::Keyword(s) => Ok(Some(Syntax::atom(Datum::Keyword(s), span))),
            Token::Bool(b) => Ok(Some(Syntax::atom(Datum::Bool(b), span))),
            Token::Int(n) => Ok(Some(Syntax::atom(Datum::Int(n), span))),
            Token::Float(x) => Ok(Some(Syntax::atom(Datum::Float(x), span))),
            Token::Complex(re, im) => Ok(Some(Syntax::atom(Datum::Complex(re, im), span))),
            Token::Str(s) => Ok(Some(Syntax::atom(Datum::Str(s), span))),
            Token::Char(c) => Ok(Some(Syntax::atom(Datum::Char(c), span))),
        }
    }

    fn read_list_tail(&mut self, open_span: Span) -> Result<Syntax, ReadError> {
        let mut items = Vec::new();
        loop {
            match self.peek()? {
                (Token::Close, _) => {
                    let (_, end) = self.next()?;
                    return Ok(Syntax::list(items, open_span.merge(&end)));
                }
                (Token::Dot, dot_span) => {
                    let dot_span = *dot_span;
                    if items.is_empty() {
                        return Err(ReadError::new("`.` with no preceding form", dot_span));
                    }
                    self.next()?;
                    let tail = self
                        .read_one()?
                        .ok_or_else(|| ReadError::new("expected form after `.`", dot_span))?;
                    match self.next()? {
                        (Token::Close, end) => {
                            return Ok(Syntax::improper(items, tail, open_span.merge(&end)))
                        }
                        (_, bad) => {
                            return Err(ReadError::new("expected `)` after dotted tail", bad))
                        }
                    }
                }
                (Token::Eof, eof_span) => {
                    return Err(ReadError::new("unterminated list", *eof_span))
                }
                _ => {
                    let item = self.read_peeked_item()?;
                    items.push(item);
                }
            }
        }
    }
}

/// Reads a single datum from `src`.
///
/// # Errors
///
/// Returns [`ReadError`] if the input is malformed or contains no datum.
///
/// # Examples
///
/// ```
/// use lagoon_syntax::{read_datum, Datum};
/// let d = read_datum("(+ 1 2)", "<doc>")?;
/// assert_eq!(d, Datum::list(vec![Datum::sym("+"), Datum::Int(1), Datum::Int(2)]));
/// # Ok::<(), lagoon_syntax::ReadError>(())
/// ```
pub fn read_datum(src: &str, source: &str) -> Result<Datum, ReadError> {
    Ok(read_syntax(src, source)?.to_datum())
}

/// Reads a single syntax object from `src`.
///
/// # Errors
///
/// Returns [`ReadError`] if the input is malformed or empty.
pub fn read_syntax(src: &str, source: &str) -> Result<Syntax, ReadError> {
    let source = Symbol::intern(source);
    let mut rd = Reader::new(src, source);
    rd.read_one()?
        .ok_or_else(|| ReadError::new("no datum in input", Span::new(source, 0, 0, 1, 1)))
}

/// Reads every form in `src`.
///
/// # Errors
///
/// Returns [`ReadError`] if any form is malformed.
pub fn read_all(src: &str, source: &str) -> Result<Vec<Syntax>, ReadError> {
    let source = Symbol::intern(source);
    let mut rd = Reader::new(src, source);
    let mut out = Vec::new();
    while let Some(stx) = rd.read_one()? {
        out.push(stx);
    }
    Ok(out)
}

/// Reads a whole module: a `#lang <name>` line followed by body forms
/// (paper §2.3: “Every module specifies in the first line of the module the
/// language it is written in”).
///
/// # Errors
///
/// Returns [`ReadError`] if the `#lang` line is missing or malformed, or
/// any body form is malformed.
///
/// # Examples
///
/// ```
/// use lagoon_syntax::read_module;
/// let m = read_module("#lang lagoon\n(+ 1 2)\n", "demo")?;
/// assert_eq!(m.lang.as_str(), "lagoon");
/// assert_eq!(m.body.len(), 1);
/// # Ok::<(), lagoon_syntax::ReadError>(())
/// ```
pub fn read_module(src: &str, source: &str) -> Result<ModuleSource, ReadError> {
    let source_sym = Symbol::intern(source);
    let (lang, body_src) = split_lang_line(src, source_sym)?;
    let mut rd = Reader::new(&body_src, source_sym);
    let mut body = Vec::new();
    while let Some(stx) = rd.read_one()? {
        body.push(stx);
    }
    Ok(ModuleSource {
        lang,
        body,
        source: source_sym,
    })
}

/// Splits off the `#lang` line, returning the language name and the body
/// text with a newline prepended so body spans start on line 2 (the
/// `#lang` line was line 1).
fn split_lang_line(src: &str, source_sym: Symbol) -> Result<(Symbol, String), ReadError> {
    let src = src.trim_start_matches('\u{feff}');
    let mut lines = src.splitn(2, '\n');
    let first = lines.next().unwrap_or("").trim();
    let rest = lines.next().unwrap_or("");
    let Some(lang_part) = first.strip_prefix("#lang") else {
        return Err(ReadError::new(
            "module must start with `#lang <language>`",
            Span::new(source_sym, 0, first.len() as u32, 1, 1),
        ));
    };
    let lang = lang_part.trim();
    if lang.is_empty() || lang.contains(char::is_whitespace) {
        return Err(ReadError::new(
            "malformed `#lang` line",
            Span::new(source_sym, 0, first.len() as u32, 1, 1),
        ));
    }
    Ok((Symbol::intern(lang), format!("\n{rest}")))
}

/// Reading stops accumulating after this many errors; one garbled file
/// should not produce an unbounded diagnostic flood.
const MAX_READ_ERRORS: usize = 64;

/// Reads every form in `src`, resynchronizing at the next top-level form
/// after each error so one bad form does not mask later ones. Returns
/// the forms that did read alongside every error encountered (capped at
/// [`MAX_READ_ERRORS`]).
pub fn read_all_recover(src: &str, source: &str) -> (Vec<Syntax>, Vec<ReadError>) {
    let mut rd = Reader::new(src, Symbol::intern(source));
    read_forms_recover(&mut rd)
}

/// Like [`read_module`], but recovers after body errors the way
/// [`read_all_recover`] does.
///
/// # Errors
///
/// Returns `Err` only for a missing or malformed `#lang` line — nothing
/// can be read without knowing the language. Body errors come back in
/// the `Vec` alongside whatever forms did parse.
pub fn read_module_recover(
    src: &str,
    source: &str,
) -> Result<(ModuleSource, Vec<ReadError>), ReadError> {
    let source_sym = Symbol::intern(source);
    let (lang, body_src) = split_lang_line(src, source_sym)?;
    let mut rd = Reader::new(&body_src, source_sym);
    let (body, errors) = read_forms_recover(&mut rd);
    Ok((
        ModuleSource {
            lang,
            body,
            source: source_sym,
        },
        errors,
    ))
}

fn read_forms_recover(rd: &mut Reader) -> (Vec<Syntax>, Vec<ReadError>) {
    let mut forms = Vec::new();
    let mut errors = Vec::new();
    loop {
        match rd.read_one() {
            Ok(Some(stx)) => forms.push(stx),
            Ok(None) => break,
            Err(e) => {
                errors.push(e);
                if errors.len() >= MAX_READ_ERRORS {
                    break;
                }
                rd.resync();
            }
        }
    }
    (forms, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_nested_lists() {
        let d = read_datum("(a (b c) d)", "<t>").unwrap();
        assert_eq!(d.to_string(), "(a (b c) d)");
    }

    #[test]
    fn reads_improper_lists() {
        let d = read_datum("(a b . c)", "<t>").unwrap();
        assert_eq!(d.to_string(), "(a b . c)");
    }

    #[test]
    fn reads_vectors() {
        let d = read_datum("#(1 2 (3))", "<t>").unwrap();
        assert_eq!(d.to_string(), "#(1 2 (3))");
    }

    #[test]
    fn quote_shorthands() {
        assert_eq!(read_datum("'x", "<t>").unwrap().to_string(), "(quote x)");
        assert_eq!(
            read_datum("`(a ,b ,@c)", "<t>").unwrap().to_string(),
            "(quasiquote (a (unquote b) (unquote-splicing c)))"
        );
        assert_eq!(read_datum("#'x", "<t>").unwrap().to_string(), "(syntax x)");
        assert_eq!(
            read_datum("#`(f #,x)", "<t>").unwrap().to_string(),
            "(quasisyntax (f (unsyntax x)))"
        );
    }

    #[test]
    fn read_all_reads_everything() {
        let forms = read_all("1 2 (3 4)", "<t>").unwrap();
        assert_eq!(forms.len(), 3);
        assert_eq!(forms[2].to_datum().to_string(), "(3 4)");
    }

    #[test]
    fn module_reading() {
        let m = read_module("#lang count\n(f 1)\n(g 2)\n", "m").unwrap();
        assert_eq!(m.lang.as_str(), "count");
        assert_eq!(m.body.len(), 2);
        // spans: body starts at line 2
        assert_eq!(m.body[0].span().line, 2);
        assert_eq!(m.body[1].span().line, 3);
    }

    #[test]
    fn module_requires_lang_line() {
        assert!(read_module("(f 1)", "m").is_err());
        assert!(read_module("#lang", "m").is_err());
        assert!(read_module("#lang two words", "m").is_err());
    }

    #[test]
    fn errors_have_positions() {
        let err = read_syntax("(a b", "<t>").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = read_syntax(")", "<t>").unwrap_err();
        assert!(err.message.contains("unexpected"));
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn spans_cover_forms() {
        let s = read_syntax("(abc def)", "<t>").unwrap();
        assert_eq!(s.span().start, 0);
        assert_eq!(s.span().end, 9);
        let items = s.as_list().unwrap();
        assert_eq!(items[0].span().start, 1);
        assert_eq!(items[1].span().start, 5);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let depth = 50_000;
        let src = format!("{}{}{}", "(".repeat(depth), "x", ")".repeat(depth));
        let err = read_syntax(&src, "<t>").unwrap_err();
        assert!(err.message.contains("nesting too deep"));
    }

    #[test]
    fn recovery_reports_multiple_errors() {
        // an unexpected `)` and an unterminated string, with good forms
        // before, between, and after
        let src = "(a b)\n)\n(c d)\n\"oops\n(e f)";
        let (forms, errors) = read_all_recover(src, "<t>");
        assert!(forms.len() >= 2, "good forms survive: {forms:?}");
        assert_eq!(forms[0].to_datum().to_string(), "(a b)");
        assert_eq!(forms[1].to_datum().to_string(), "(c d)");
        assert!(errors.len() >= 2, "both errors reported: {errors:?}");
        assert!(errors[0].message.contains("unexpected"));
    }

    #[test]
    fn recovery_skips_a_broken_nested_form() {
        let src = "(a (b . ) c)\n(ok 1)";
        let (forms, errors) = read_all_recover(src, "<t>");
        // the broken inner form errors once; the outer list's orphaned
        // `)` may add a follow-on error — what matters is recovery
        assert!(!errors.is_empty() && errors.len() <= 2);
        assert!(forms.iter().any(|f| f.to_datum().to_string() == "(ok 1)"));
    }

    #[test]
    fn module_recovery_keeps_lang_errors_fatal() {
        assert!(read_module_recover("(f 1)", "m").is_err());
        let (m, errors) = read_module_recover("#lang lagoon\n(f 1)\n)\n(g 2)\n", "m").unwrap();
        assert_eq!(m.lang.as_str(), "lagoon");
        assert_eq!(m.body.len(), 2);
        assert_eq!(errors.len(), 1);
        // spans still line up after recovery: body line numbers are 1-based
        // with the #lang line as line 1
        assert_eq!(m.body[0].span().line, 2);
        assert_eq!(m.body[1].span().line, 4);
    }

    #[test]
    fn unterminated_literals_error_with_spans() {
        let err = read_syntax("\"abc", "<t>").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.span.line, 1);
        let err = read_syntax("#\\", "<t>").unwrap_err();
        assert!(err.message.contains("character"));
    }

    #[test]
    fn dotted_errors() {
        assert!(read_syntax("(. a)", "<t>").is_err());
        assert!(read_syntax("(a . b c)", "<t>").is_err());
        assert!(read_syntax("(a .)", "<t>").is_err());
    }
}
