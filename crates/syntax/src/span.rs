//! Source locations.
//!
//! Every syntax object carries a [`Span`] recording where in the source it
//! was read, so that expansion-time and typecheck-time errors can point at
//! the offending text — the paper's `typecheck: wrong type in: 3.7`
//! diagnostics depend on this metadata surviving macro expansion.

use crate::symbol::Symbol;
use std::fmt;

/// A half-open region of a named source, with 1-based line/column of its
/// start for human-readable diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Span {
    /// Name of the source (file path, module name, or `"<string>"`).
    pub source: Symbol,
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering `start..end` at the given line/column.
    pub fn new(source: Symbol, start: u32, end: u32, line: u32, col: u32) -> Span {
        Span {
            source,
            start,
            end,
            line,
            col,
        }
    }

    /// A placeholder span for synthesized syntax with no source text.
    pub fn synthetic() -> Span {
        Span {
            source: Symbol::intern("<synthesized>"),
            start: 0,
            end: 0,
            line: 0,
            col: 0,
        }
    }

    /// Whether this span refers to real source text.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }

    /// The smallest span covering both `self` and `other`, keeping
    /// `self`'s line/column (assumed to start earlier).
    pub fn merge(&self, other: &Span) -> Span {
        Span {
            source: self.source,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl Default for Span {
    fn default() -> Span {
        Span::synthetic()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "{}", self.source)
        } else {
            write!(f, "{}:{}:{}", self.source, self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_position() {
        let s = Span::new(Symbol::from("demo.rkt"), 0, 5, 3, 7);
        assert_eq!(s.to_string(), "demo.rkt:3:7");
    }

    #[test]
    fn synthetic_display() {
        assert_eq!(Span::synthetic().to_string(), "<synthesized>");
        assert!(Span::synthetic().is_synthetic());
    }

    #[test]
    fn merge_covers_both() {
        let src = Symbol::from("f");
        let a = Span::new(src, 2, 5, 1, 3);
        let b = Span::new(src, 7, 10, 1, 8);
        let m = a.merge(&b);
        assert_eq!((m.start, m.end), (2, 10));
        assert_eq!((m.line, m.col), (1, 3));
    }
}
