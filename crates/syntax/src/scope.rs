//! Sets-of-scopes hygiene data.
//!
//! Lagoon implements hygiene with Flatt's *sets of scopes* model — the same
//! model that underlies the Racket expander the paper describes. Every
//! syntax object carries a [`ScopeSet`]; binding forms add fresh scopes to
//! the region they bind, macro expansion *flips* a fresh introduction scope
//! on everything a transformer introduces, and reference resolution picks
//! the binding whose scope set is the largest subset of the reference's.
//!
//! This module defines only the data and set algebra; the binding table and
//! resolution live in `lagoon-core`.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// A single scope: an opaque token generated freshly for each binding
/// context (module, `lambda` body, macro invocation, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Scope(u32);

static COUNTER: AtomicU32 = AtomicU32::new(1);

impl Scope {
    /// Allocates a scope no other call has returned.
    pub fn fresh() -> Scope {
        Scope(COUNTER.fetch_add(1, Ordering::Relaxed))
    }

    /// The current allocation watermark: every scope created by *any*
    /// thread after this call has `id() >= watermark`. A daemon worker
    /// records the watermark before a request and afterwards sweeps its
    /// (thread-private) binding table of entries whose scope sets
    /// reference scopes at or above it — those scopes were created
    /// during the request, and on this thread they belong to the
    /// request's discarded world.
    pub fn watermark() -> u32 {
        COUNTER.load(Ordering::Relaxed)
    }

    /// The raw id, for debugging output only.
    pub fn id(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sc{}", self.0)
    }
}

/// A set of scopes, kept as a sorted vector (scope sets are small — usually
/// under a dozen elements — so a sorted vec beats a hash set).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct ScopeSet(Vec<Scope>);

impl ScopeSet {
    /// The empty scope set.
    pub fn new() -> ScopeSet {
        ScopeSet(Vec::new())
    }

    /// Builds a set from arbitrary scopes.
    pub fn from_scopes(mut scopes: Vec<Scope>) -> ScopeSet {
        scopes.sort_unstable();
        scopes.dedup();
        ScopeSet(scopes)
    }

    /// Number of scopes in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `scope` is a member.
    pub fn contains(&self, scope: Scope) -> bool {
        self.0.binary_search(&scope).is_ok()
    }

    /// Returns a copy with `scope` added.
    pub fn with(&self, scope: Scope) -> ScopeSet {
        match self.0.binary_search(&scope) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = self.0.clone();
                v.insert(pos, scope);
                ScopeSet(v)
            }
        }
    }

    /// Returns a copy with `scope` removed.
    pub fn without(&self, scope: Scope) -> ScopeSet {
        match self.0.binary_search(&scope) {
            Ok(pos) => {
                let mut v = self.0.clone();
                v.remove(pos);
                ScopeSet(v)
            }
            Err(_) => self.clone(),
        }
    }

    /// Returns a copy with `scope` *flipped*: removed if present, added if
    /// absent. Macro expansion flips the introduction scope so that syntax
    /// passed *into* a transformer and returned unchanged ends up without
    /// the scope, while syntax the transformer introduced ends up with it.
    pub fn flipped(&self, scope: Scope) -> ScopeSet {
        if self.contains(scope) {
            self.without(scope)
        } else {
            self.with(scope)
        }
    }

    /// Whether every scope in `self` is also in `other`.
    pub fn is_subset(&self, other: &ScopeSet) -> bool {
        let mut it = other.0.iter();
        'outer: for s in &self.0 {
            for o in it.by_ref() {
                match o.cmp(s) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Iterates over the member scopes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Scope> + '_ {
        self.0.iter().copied()
    }
}

impl fmt::Debug for ScopeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{s:?}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<Scope> for ScopeSet {
    fn from_iter<I: IntoIterator<Item = Scope>>(iter: I) -> ScopeSet {
        ScopeSet::from_scopes(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_scopes_differ() {
        assert_ne!(Scope::fresh(), Scope::fresh());
    }

    #[test]
    fn add_remove_contains() {
        let a = Scope::fresh();
        let b = Scope::fresh();
        let s = ScopeSet::new().with(a);
        assert!(s.contains(a));
        assert!(!s.contains(b));
        let s2 = s.with(b).without(a);
        assert!(!s2.contains(a));
        assert!(s2.contains(b));
    }

    #[test]
    fn adding_twice_is_idempotent() {
        let a = Scope::fresh();
        let s = ScopeSet::new().with(a).with(a);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn flip_round_trips() {
        let a = Scope::fresh();
        let s = ScopeSet::new();
        let once = s.flipped(a);
        assert!(once.contains(a));
        let twice = once.flipped(a);
        assert_eq!(twice, s);
    }

    #[test]
    fn subset_algebra() {
        let a = Scope::fresh();
        let b = Scope::fresh();
        let c = Scope::fresh();
        let small = ScopeSet::from_scopes(vec![a, b]);
        let big = ScopeSet::from_scopes(vec![a, b, c]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(ScopeSet::new().is_subset(&small));
        assert!(small.is_subset(&small));
        let other = ScopeSet::from_scopes(vec![a, c]);
        assert!(!small.is_subset(&other));
    }
}
