//! Robustness: the reader must never panic, whatever bytes it is fed —
//! it either parses or returns a `ReadError`.
//!
//! The inputs come from a fixed-seed splitmix64 stream rather than a
//! property-testing framework, so the workspace stays dependency-free
//! and every failure reproduces exactly.

/// Deterministic splitmix64 stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn string(&mut self, charset: &[char], max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| charset[self.below(charset.len())])
            .collect()
    }
}

/// Printable characters, including multi-byte ones, standing in for the
/// old `\PC` regex class.
fn printable() -> Vec<char> {
    let mut cs: Vec<char> = (' '..='~').collect();
    cs.extend(['\n', '\t', 'λ', 'é', '中', '∀', '🦀', '"', '\\']);
    cs
}

#[test]
fn reader_never_panics_on_arbitrary_text() {
    let mut rng = Rng(0xF00D);
    let cs = printable();
    for _ in 0..512 {
        let src = rng.string(&cs, 120);
        let _ = lagoon_syntax::read_all(&src, "<fuzz>");
    }
}

#[test]
fn reader_never_panics_on_sexpr_shaped_text() {
    let mut rng = Rng(0xBEEF);
    let cs: Vec<char> = " ()[]'`,#\\\"abcdefghijklmnopqrstuvwxyz0123456789.+-"
        .chars()
        .collect();
    for _ in 0..512 {
        let src = rng.string(&cs, 120);
        let _ = lagoon_syntax::read_all(&src, "<fuzz>");
    }
}

#[test]
fn module_reader_never_panics() {
    let mut rng = Rng(0xCAFE);
    let cs = printable();
    for _ in 0..512 {
        let src = rng.string(&cs, 160);
        let _ = lagoon_syntax::read_module(&src, "<fuzz>");
    }
}

#[test]
fn successful_parses_reprint_and_reparse() {
    let mut rng = Rng(0xABCD);
    let cs: Vec<char> = " ()abcdefghijklmnopqrstuvwxyz0123456789.+-"
        .chars()
        .collect();
    for _ in 0..512 {
        let src = rng.string(&cs, 80);
        if let Ok(forms) = lagoon_syntax::read_all(&src, "<fuzz>") {
            for form in forms {
                let printed = form.to_datum().to_string();
                let reread = lagoon_syntax::read_datum(&printed, "<fuzz2>")
                    .expect("printer output must re-read");
                assert_eq!(reread, form.to_datum(), "source: {src:?}");
            }
        }
    }
}
