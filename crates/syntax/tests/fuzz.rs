//! Robustness: the reader must never panic, whatever bytes it is fed —
//! it either parses or returns a `ReadError`.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn reader_never_panics_on_arbitrary_text(src in "\\PC{0,120}") {
        let _ = lagoon_syntax::read_all(&src, "<fuzz>");
    }

    #[test]
    fn reader_never_panics_on_sexpr_shaped_text(
        src in "[ ()\\[\\]'`,#\\\\\"a-z0-9.+-]{0,120}"
    ) {
        let _ = lagoon_syntax::read_all(&src, "<fuzz>");
    }

    #[test]
    fn module_reader_never_panics(src in "\\PC{0,160}") {
        let _ = lagoon_syntax::read_module(&src, "<fuzz>");
    }

    #[test]
    fn successful_parses_reprint_and_reparse(src in "[ ()a-z0-9.+-]{0,80}") {
        if let Ok(forms) = lagoon_syntax::read_all(&src, "<fuzz>") {
            for form in forms {
                let printed = form.to_datum().to_string();
                let reread = lagoon_syntax::read_datum(&printed, "<fuzz2>")
                    .expect("printer output must re-read");
                prop_assert_eq!(reread, form.to_datum());
            }
        }
    }
}
