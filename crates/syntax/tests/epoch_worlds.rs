//! Epoch-world correctness: these tests run in their own process (an
//! integration-test binary) because `seal_arena` is process-global and
//! irreversible — sealing here cannot disturb the crate's unit tests.
//!
//! The scenarios mirror the daemon's request lifecycle: seal after a
//! warmup, mark before a request, intern/gensym during it, truncate
//! after — and assert that reset-epoch symbols never alias prelude
//! (arena) symbols, that stale handles are detected, and that
//! `interned_count` reports per-world numbers.

use lagoon_syntax::{
    arena_len, arena_sealed, epoch_len, epoch_mark, epoch_reset, epoch_truncate, fresh_scope,
    interned_count, seal_arena, Symbol,
};

#[test]
fn epoch_worlds_end_to_end() {
    // --- warmup: arena symbols, as a CLI process would intern them ---
    let lambda = Symbol::intern("lambda");
    let map = Symbol::intern("map");
    let pre_gensym = Symbol::fresh("warm");
    assert!(!arena_sealed());
    assert!(lambda.static_str().is_some(), "pre-seal names are arena");
    assert!(pre_gensym.static_str().is_some());
    let arena_at_seal = arena_len();

    // --- seal: the daemon does this before spawning workers ---
    seal_arena();
    assert!(arena_sealed());

    // Pre-seal names still resolve to the same shared ids.
    assert_eq!(Symbol::intern("lambda"), lambda);
    assert_eq!(Symbol::intern("map"), map);
    assert_eq!(arena_len(), arena_at_seal, "arena is frozen");

    // --- request 1: mark, intern, gensym, truncate ---
    let mark = epoch_mark();
    let req_sym = Symbol::intern("req/0");
    let req_gensym = Symbol::fresh("tmp");
    let scoped = {
        let _scope = fresh_scope(0xFEED);
        Symbol::fresh("loop")
    };
    // new symbols are epoch symbols, disjoint from the arena by id
    for s in [req_sym, req_gensym, scoped] {
        assert!(
            s.static_str().is_none(),
            "post-seal symbol must be epoch-backed: {s}"
        );
        assert!(s.index() & 0x8000_0000 != 0);
        assert_ne!(s, lambda);
        assert_ne!(s, map);
    }
    // intern is idempotent within the epoch
    assert_eq!(Symbol::intern("req/0"), req_sym);
    // per-world gauge: arena + this thread's epoch
    assert_eq!(interned_count(), arena_len() + epoch_len());
    assert!(epoch_len() >= 3);
    assert_eq!(req_sym.as_str(), "req/0");

    let dropped = epoch_truncate(mark);
    assert!(dropped >= 3, "truncation frees the request's symbols");
    assert_eq!(epoch_len(), 0);

    // --- stale detection: truncated handles never alias anything ---
    assert!(!req_sym.is_live());
    assert_eq!(req_sym.as_str(), "#<stale-symbol>");
    // a new epoch symbol may reuse the slot, but the generation stamp
    // differs, so the old handle stays distinct
    let reuse = Symbol::intern("req/1");
    assert_ne!(reuse, req_sym);
    assert!(reuse.is_live());
    assert_eq!(reuse.as_str(), "req/1");
    // re-interning the old *name* yields a fresh identity — the map
    // entry died with the epoch
    let req_again = Symbol::intern("req/0");
    assert_ne!(req_again, req_sym);
    assert_eq!(req_again.as_str(), "req/0");

    // arena symbols are untouched by truncation
    assert!(lambda.is_live());
    assert_eq!(lambda.as_str(), "lambda");
    assert!(pre_gensym.is_live());

    // --- a stale mark (from before a truncation) is ignored ---
    let stale_mark = mark; // gen has advanced since
    let m2 = epoch_mark();
    let _ = Symbol::intern("req/2");
    assert_eq!(epoch_truncate(stale_mark), 0, "stale mark is a no-op");
    assert!(epoch_truncate(m2) >= 1);

    // --- scoped gensym determinism survives sealing ---
    let a: Vec<String> = {
        let _s = fresh_scope(77);
        (0..3).map(|_| Symbol::fresh("d").as_str()).collect()
    };
    let b: Vec<String> = {
        let _s = fresh_scope(77);
        (0..3).map(|_| Symbol::fresh("d").as_str()).collect()
    };
    assert_eq!(a, b, "digest-scoped names are table-state independent");

    // --- worlds are per-thread: another thread's epoch is its own ---
    let my_len = epoch_len();
    let (their_count, their_sym_name) = std::thread::spawn(|| {
        let s = Symbol::intern("other-thread-name");
        (epoch_len(), s.as_str())
    })
    .join()
    .expect("thread");
    assert_eq!(their_sym_name, "other-thread-name");
    assert!(their_count >= 1);
    // ...and did not grow this thread's world
    assert_eq!(epoch_len(), my_len);

    // --- epoch_reset clears the whole thread world (worker recycling) ---
    let _ = Symbol::intern("req/3");
    let _ = Symbol::fresh("scratch");
    assert!(epoch_len() >= 2);
    assert!(epoch_reset() >= 2);
    assert_eq!(epoch_len(), 0);
    assert_eq!(interned_count(), arena_len());
}
