//! End-to-end tests for the expander + module system, including the
//! paper's running examples (§§2.1–2.3).

use lagoon_core::{EngineKind, ModuleRegistry};
use lagoon_runtime::io::capture_output;
use lagoon_runtime::Value;
use std::rc::Rc;

fn run_both(src: &str) -> (Value, String) {
    let reg = ModuleRegistry::new();
    reg.add_module("main", src);
    let ((vi, vv), out) = capture_output(|| {
        let vi = reg.run("main", EngineKind::Interp).unwrap();
        let vv = reg.run("main", EngineKind::Vm).unwrap();
        (vi, vv)
    });
    assert!(
        vi.equal(&vv) || (vi.is_void() && vv.is_void()) || (vi.is_procedure() && vv.is_procedure()),
        "engines disagree: interp={vi} vm={vv}"
    );
    // output is doubled (both engines ran); halve it
    let half = out.len() / 2;
    assert_eq!(&out[..half], &out[half..], "engines printed differently");
    (vv, out[..half].to_string())
}

fn run_vm(reg: &Rc<ModuleRegistry>, name: &str) -> (Value, String) {
    let (v, out) = capture_output(|| reg.run(name, EngineKind::Vm).unwrap());
    (v, out)
}

#[test]
fn hello_module() {
    let (v, out) = run_both("#lang lagoon\n(display \"hi\")\n(+ 1 2)\n");
    assert_eq!(v.as_int(), Some(3));
    assert_eq!(out, "hi");
}

#[test]
fn definitions_and_functions() {
    let (v, _) = run_both(
        "#lang lagoon
         (define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))
         (fact 10)",
    );
    assert_eq!(v.as_int(), Some(3628800));
}

#[test]
fn surface_forms() {
    let (v, _) = run_both(
        "#lang lagoon
         (define (classify n)
           (cond [(< n 0) 'negative]
                 [(= n 0) 'zero]
                 [else 'positive]))
         (list (classify -5) (classify 0) (classify 5))",
    );
    assert_eq!(v.to_string(), "(negative zero positive)");

    let (v, _) = run_both(
        "#lang lagoon
         (let* ([x 1] [y (+ x 1)] [z (* y 2)])
           (and (or #f z) (when (> z 3) z)))",
    );
    assert_eq!(v.as_int(), Some(4));

    let (v, _) = run_both(
        "#lang lagoon
         (case (* 2 3)
           [(2 3 5 7) 'prime]
           [(1 4 6 8 9) 'composite]
           [else 'unknown])",
    );
    assert_eq!(v.to_string(), "composite");
}

#[test]
fn named_let_loops() {
    let (v, _) = run_both(
        "#lang lagoon
         (let loop ([i 0] [acc '()])
           (if (= i 5) (reverse acc) (loop (+ i 1) (cons i acc))))",
    );
    assert_eq!(v.to_string(), "(0 1 2 3 4)");
}

#[test]
fn prelude_functions() {
    let (v, _) = run_both(
        "#lang lagoon
         (list (map (lambda (x) (* x x)) '(1 2 3))
               (filter odd? '(1 2 3 4 5))
               (foldl + 0 '(1 2 3 4))
               (foldr cons '() '(1 2))
               (build-list 3 add1)
               (map + '(1 2) '(10 20)))",
    );
    assert_eq!(v.to_string(), "((1 4 9) (1 3 5) 10 (1 2) (1 2 3) (11 22))");
}

#[test]
fn quasiquote_data() {
    let (v, _) = run_both(
        "#lang lagoon
         (define x 42)
         `(a ,x ,@(list 1 2) b)",
    );
    assert_eq!(v.to_string(), "(a 42 1 2 b)");
}

#[test]
fn lexical_scope_and_closures() {
    let (v, _) = run_both(
        "#lang lagoon
         (define (make-counter)
           (let ([n 0])
             (lambda () (set! n (+ n 1)) n)))
         (define c1 (make-counter))
         (define c2 (make-counter))
         (c1) (c1)
         (list (c1) (c2))",
    );
    assert_eq!(v.to_string(), "(3 1)");
}

// ----- paper §2.1: macros -----

#[test]
fn syntax_rules_macro() {
    let (v, _) = run_both(
        "#lang lagoon
         (define-syntax swap!
           (syntax-rules ()
             [(_ a b) (let ([tmp a]) (set! a b) (set! b tmp))]))
         (define x 1)
         (define y 2)
         (swap! x y)
         (list x y)",
    );
    assert_eq!(v.to_string(), "(2 1)");
}

#[test]
fn syntax_rules_hygiene() {
    // the classic test: the macro's `tmp` must not capture the user's `tmp`
    let (v, _) = run_both(
        "#lang lagoon
         (define-syntax swap!
           (syntax-rules ()
             [(_ a b) (let ([tmp a]) (set! a b) (set! b tmp))]))
         (define tmp 1)
         (define other 2)
         (swap! tmp other)
         (list tmp other)",
    );
    assert_eq!(v.to_string(), "(2 1)");
}

#[test]
fn do_10_times_macro() {
    // paper §2.1, via syntax-parse and a template
    let (_, out) = run_both(
        "#lang lagoon
         (define-syntax (do-10-times stx)
           (syntax-parse stx
             [(do-10-times body:expr ...)
              #'(for-each (lambda (i) body ...) (iota 10))]))
         (do-10-times (display \"*\") (display \"#\"))",
    );
    assert_eq!(out, "*#*#*#*#*#*#*#*#*#*#");
}

#[test]
fn do_10_times_hygiene() {
    // paper §2.1: "if the bodys use the variable i, it is not interfered
    // with by the use of i in the for loop"
    let (_, out) = run_both(
        "#lang lagoon
         (define-syntax (do-3-times stx)
           (syntax-parse stx
             [(_ body:expr ...)
              #'(for-each (lambda (i) body ...) (iota 3))]))
         (define i 7)
         (do-3-times (display i))",
    );
    assert_eq!(out, "777");
}

#[test]
fn when_compiled_macro() {
    // paper §2.1: compile-time clock capture via with-syntax
    let (v, _) = run_both(
        "#lang lagoon
         (define-syntax (when-compiled stx)
           (with-syntax ([ct (current-seconds)])
             #'ct))
         (define (how-long-ago?) (- (current-seconds) (when-compiled)))
         (>= (how-long-ago?) 0)",
    );
    assert!(v.is_truthy());
}

#[test]
fn quasisyntax_templates() {
    let (v, _) = run_both(
        "#lang lagoon
         (define-syntax (count-args stx)
           (syntax-parse stx
             [(_ arg ...)
              #`(quote #,(length (syntax->list #'(arg ...))))]))
         (count-args a b c d)",
    );
    assert_eq!(v.as_int(), Some(4));
}

#[test]
fn recursive_hosted_macro() {
    let (v, _) = run_both(
        "#lang lagoon
         (define-syntax my-or
           (syntax-rules ()
             [(_) #f]
             [(_ e) e]
             [(_ e rest ...) (let ([t e]) (if t t (my-or rest ...)))]))
         (list (my-or) (my-or 1) (my-or #f #f 3))",
    );
    assert_eq!(v.to_string(), "(#f 1 3)");
}

#[test]
fn local_macros_in_bodies() {
    let (v, _) = run_both(
        "#lang lagoon
         (define (f x)
           (define-syntax twice (syntax-rules () [(_ e) (+ e e)]))
           (twice x))
         (f 21)",
    );
    assert_eq!(v.as_int(), Some(42));
}

// ----- paper §2.2: local-expand -----

#[test]
fn only_lambda_accepts_lambda() {
    // paper §2.2's only-λ macro: local-expand + free-identifier=?
    let src_ok = "#lang lagoon
         (define-syntax (only-λ stx)
           (syntax-parse stx
             [(_ arg:expr)
              (let ([c (local-expand #'arg 'expression '())])
                (let ([k (car (syntax->list c))])
                  (if (free-identifier=? #'#%plain-lambda k)
                      c
                      (raise-syntax-error 'only-λ \"not λ\" #'arg))))]))
         (only-λ (lambda (x) x))";
    let (v, _) = run_both(src_ok);
    assert!(v.is_procedure());
}

#[test]
fn only_lambda_rejects_non_lambda() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "main",
        "#lang lagoon
         (define-syntax (only-λ stx)
           (syntax-parse stx
             [(_ arg:expr)
              (let ([c (local-expand #'arg 'expression '())])
                (let ([k (car (syntax->list c))])
                  (if (free-identifier=? #'#%plain-lambda k)
                      c
                      (raise-syntax-error 'only-λ \"not λ\" #'arg))))]))
         (only-λ 7)",
    );
    let err = reg.run("main", EngineKind::Vm).unwrap_err();
    assert!(err.message.contains("not λ"), "got: {err}");
}

#[test]
fn only_lambda_sees_through_macros() {
    // paper §2.2: "If we add a definition that makes function the same as
    // λ, we still get the correct behavior"
    let (v, _) = run_both(
        "#lang lagoon
         (define-syntax function
           (syntax-rules () [(_ args body) (lambda args body)]))
         (define-syntax (only-λ stx)
           (syntax-parse stx
             [(_ arg:expr)
              (let ([c (local-expand #'arg 'expression '())])
                (let ([k (car (syntax->list c))])
                  (if (free-identifier=? #'#%plain-lambda k)
                      c
                      (raise-syntax-error 'only-λ \"not λ\" #'arg))))]))
         (only-λ (function (x) x))",
    );
    assert!(v.is_procedure());
}

// ----- modules and requires -----

#[test]
fn cross_module_values() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "server",
        "#lang lagoon
         (define (add-5 x) (+ x 5))
         (provide add-5)",
    );
    reg.add_module(
        "client",
        "#lang lagoon
         (require server)
         (add-5 7)",
    );
    let (v, _) = run_vm(&reg, "client");
    assert_eq!(v.as_int(), Some(12));
    let v = reg.run("client", EngineKind::Interp).unwrap();
    assert_eq!(v.as_int(), Some(12));
}

#[test]
fn cross_module_macros() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "macros",
        "#lang lagoon
         (define-syntax twice (syntax-rules () [(_ e) (+ e e)]))
         (provide twice)",
    );
    reg.add_module(
        "user",
        "#lang lagoon
         (require macros)
         (twice 21)",
    );
    let (v, _) = run_vm(&reg, "user");
    assert_eq!(v.as_int(), Some(42));
}

#[test]
fn rename_out_provides() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "lib",
        "#lang lagoon
         (define (internal-name x) (* x 10))
         (provide (rename-out [internal-name times-ten]))",
    );
    reg.add_module(
        "use",
        "#lang lagoon
         (require lib)
         (times-ten 4)",
    );
    let (v, _) = run_vm(&reg, "use");
    assert_eq!(v.as_int(), Some(40));
}

#[test]
fn module_instances_are_cached() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "effectful",
        "#lang lagoon
         (display \"instantiated\")
         (define x 1)
         (provide x)",
    );
    reg.add_module("a", "#lang lagoon\n(require effectful)\nx\n");
    reg.add_module("b", "#lang lagoon\n(require effectful)\nx\n");
    let (_, out) = capture_output(|| {
        reg.run("a", EngineKind::Vm).unwrap();
        reg.run("b", EngineKind::Vm).unwrap();
    });
    assert_eq!(
        out, "instantiated",
        "dependency must instantiate exactly once"
    );
}

#[test]
fn unknown_module_errors() {
    let reg = ModuleRegistry::new();
    reg.add_module("main", "#lang lagoon\n(require missing-dep)\n");
    assert!(reg.run("main", EngineKind::Vm).is_err());
}

#[test]
fn require_cycle_errors() {
    let reg = ModuleRegistry::new();
    reg.add_module("a", "#lang lagoon\n(require b)\n(define x 1)\n(provide x)");
    reg.add_module("b", "#lang lagoon\n(require a)\n(define y 2)\n(provide y)");
    let err = reg.run("a", EngineKind::Vm).unwrap_err();
    assert!(err.message.contains("cycle"));
}

// ----- paper §2.3: the count language -----

const COUNT_LANG: &str = "#lang lagoon
(define-syntax (#%module-begin stx)
  (syntax-parse stx
    [(#%module-begin body ...)
     #`(#%plain-module-begin
        (printf \"Found ~a expressions.\" '#,(length (syntax->list #'(body ...))))
        body ...)]))
(provide #%module-begin)
";

#[test]
fn count_language() {
    let reg = ModuleRegistry::new();
    reg.add_module("count", COUNT_LANG);
    reg.add_module(
        "prog",
        "#lang count
(printf \"*~a\" (+ 1 2))
(printf \"*~a\" (- 4 3))
",
    );
    let (_, out) = run_vm(&reg, "prog");
    assert_eq!(out, "Found 2 expressions.*3*1");
}

// ----- errors -----

#[test]
fn unbound_identifier_is_a_compile_error() {
    let reg = ModuleRegistry::new();
    reg.add_module("main", "#lang lagoon\n(nonexistent-fn 1)\n");
    let err = reg.run("main", EngineKind::Vm).unwrap_err();
    assert!(err.message.contains("unbound"), "got: {err}");
}

#[test]
fn syntax_errors_have_spans() {
    let reg = ModuleRegistry::new();
    reg.add_module("main", "#lang lagoon\n(define)\n");
    let err = reg.run("main", EngineKind::Vm).unwrap_err();
    assert!(err.span.is_some());
}

#[test]
fn shadowing_primitives_locally() {
    let (v, _) = run_both(
        "#lang lagoon
         (define (apply-op + a b) (+ a b))
         (apply-op * 6 7)",
    );
    assert_eq!(v.as_int(), Some(42));
}

#[test]
fn module_level_redefinition_of_primitive() {
    let (v, _) = run_both(
        "#lang lagoon
         (define (car lst) 'overridden)
         (car '(1 2))",
    );
    assert_eq!(v.to_string(), "overridden");
}

#[test]
fn variadic_and_rest_args() {
    let (v, _) = run_both(
        "#lang lagoon
         (define (f a . rest) (cons a rest))
         (f 1 2 3)",
    );
    assert_eq!(v.to_string(), "(1 2 3)");
}

#[test]
fn apply_works() {
    let (v, _) = run_both("#lang lagoon\n(apply + 1 '(2 3))\n");
    assert_eq!(v.as_int(), Some(6));
}

#[test]
fn extended_prelude_functions() {
    let (v, _) = run_both(
        "#lang lagoon
         (list (take '(1 2 3 4 5) 2)
               (drop '(1 2 3 4 5) 3)
               (sort '(3 1 4 1 5 9 2 6) <)
               (list-index even? '(1 3 5 6 7))
               (count-if odd? '(1 2 3 4 5))
               (zip '(1 2) '(a b)))",
    );
    assert_eq!(
        v.to_string(),
        "((1 2) (4 5) (1 1 2 3 4 5 6 9) 3 3 ((1 a) (2 b)))"
    );
}

#[test]
fn string_prelude_functions() {
    let (v, _) = run_both(
        "#lang lagoon
         (list (string-join '(\"a\" \"b\" \"c\") \"-\")
               (string-repeat \"xy\" 3)
               (flatten '(1 (2 (3 4)) 5)))",
    );
    assert_eq!(v.to_string(), "(a-b-c xyxyxy (1 2 3 4 5))");
}

#[test]
fn sort_is_stable_on_equal_keys() {
    let (v, _) = run_both(
        "#lang lagoon
         (define pairs '((1 a) (0 b) (1 c) (0 d)))
         (map second (sort pairs (lambda (p q) (< (first p) (first q)))))",
    );
    assert_eq!(v.to_string(), "(b d a c)");
}

#[test]
fn paper_for_loop_form() {
    // paper §2.1's do-10-times expands to exactly this shape:
    // (for ([i (in-range 10)]) body ...)
    let (_, out) = run_both(
        "#lang lagoon
         (define-syntax (do-10-times stx)
           (syntax-parse stx
             [(do-10-times body:expr ...)
              #'(for ([i (in-range 10)]) body ...)]))
         (do-10-times (display \"*\") (display \"#\"))",
    );
    assert_eq!(out, "*#*#*#*#*#*#*#*#*#*#");
}

#[test]
fn for_comprehensions() {
    let (v, _) = run_both(
        "#lang lagoon
         (list (for/list ([x (in-range 4)]) (* x x))
               (for/sum ([x '(1 2 3)]) (* 10 x))
               (for/list ([y (in-range 2 5)]) y))",
    );
    assert_eq!(v.to_string(), "((0 1 4 9) 60 (2 3 4))");
}

#[test]
fn while_loops() {
    let (v, _) = run_both(
        "#lang lagoon
         (define n 0)
         (define total 0)
         (while (< n 5)
           (set! total (+ total n))
           (set! n (+ n 1)))
         total",
    );
    assert_eq!(v.as_int(), Some(10));
}
