//! Deeper macro-system tests: macro-defining macros, syntax-rules
//! literals, nested templates, with-syntax, phase-1 computation, and
//! error behaviour.

use lagoon_core::{EngineKind, ModuleRegistry};
use lagoon_runtime::io::capture_output;
use lagoon_runtime::Value;

fn run(src: &str) -> Result<Value, lagoon_runtime::RtError> {
    let reg = ModuleRegistry::new();
    reg.add_module("main", src);
    reg.run("main", EngineKind::Vm)
}

fn run_out(src: &str) -> (Value, String) {
    let reg = ModuleRegistry::new();
    reg.add_module("main", src);
    let (v, out) = capture_output(|| reg.run("main", EngineKind::Vm).unwrap());
    (v, out)
}

#[test]
fn macro_defining_macro() {
    let v = run("#lang lagoon
         (define-syntax define-constant-fn
           (syntax-rules ()
             [(_ name value)
              (define-syntax name (syntax-rules () [(_) value]))]))
         (define-constant-fn seven 7)
         (define-constant-fn eight 8)
         (+ (seven) (eight))")
    .unwrap();
    assert_eq!(v.as_int(), Some(15));
}

#[test]
fn syntax_rules_literals_match_exactly() {
    let v = run("#lang lagoon
         (define-syntax arrows
           (syntax-rules (=>)
             [(_ a => b) (list 'forward a b)]
             [(_ a b) (list 'plain a b)]))
         (list (arrows 1 => 2) (arrows 1 2))")
    .unwrap();
    assert_eq!(v.to_string(), "((forward 1 2) (plain 1 2))");
}

#[test]
fn nested_ellipsis_template() {
    let v = run("#lang lagoon
         (define-syntax my-let*
           (syntax-rules ()
             [(_ () body ...) (begin body ...)]
             [(_ ([x v] rest ...) body ...)
              (let ([x v]) (my-let* (rest ...) body ...))]))
         (my-let* ([a 1] [b (+ a 1)] [c (* b 3)]) (list a b c))")
    .unwrap();
    assert_eq!(v.to_string(), "(1 2 6)");
}

#[test]
fn with_syntax_multiple_clauses() {
    let v = run("#lang lagoon
         (define-syntax (three-lets stx)
           (syntax-parse stx
             [(_ e1 e2 e3)
              (with-syntax ([a #'e1] [b #'e2] [c #'e3])
                #'(list a b c))]))
         (three-lets 1 (+ 1 1) 3)")
    .unwrap();
    assert_eq!(v.to_string(), "(1 2 3)");
}

#[test]
fn with_syntax_coerces_values() {
    // paper §2.1's when-compiled pattern: with-syntax binds non-syntax
    // values by coercing them to syntax
    let v = run("#lang lagoon
         (define-syntax (list-of-n stx)
           (syntax-parse stx
             [(_ n:number)
              (with-syntax ([items (iota (syntax->datum #'n))])
                #'(quote items))]))
         (list-of-n 4)")
    .unwrap();
    assert_eq!(v.to_string(), "(0 1 2 3)");
}

#[test]
fn phase1_computation_with_prelude() {
    // transformers can call prelude functions at compile time
    let v = run("#lang lagoon
         (define-syntax (sum-at-compile-time stx)
           (syntax-parse stx
             [(_ n:number)
              #`(quote #,(sum (iota (syntax->datum #'n))))]))
         (sum-at-compile-time 10)")
    .unwrap();
    assert_eq!(v.as_int(), Some(45));
}

#[test]
fn unsyntax_splicing_in_templates() {
    let v = run("#lang lagoon
         (define-syntax (reverse-args stx)
           (syntax-parse stx
             [(_ f arg ...)
              #`(f #,@(reverse (syntax->list #'(arg ...))))]))
         (reverse-args - 1 10)")
    .unwrap();
    assert_eq!(v.as_int(), Some(9));
}

#[test]
fn pattern_classes_reject() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "main",
        "#lang lagoon
         (define-syntax (needs-id stx)
           (syntax-parse stx
             [(_ x:id) #''ok]))
         (needs-id 42)",
    );
    let err = reg.run("main", EngineKind::Vm).unwrap_err();
    assert!(err.message.contains("no matching clause") || err.message.contains("bad syntax"));
}

#[test]
fn improper_patterns_in_macros() {
    let v = run("#lang lagoon
         (define-syntax (head-of stx)
           (syntax-parse stx
             [(_ (h . t)) #''h]))
         (head-of (a b c))")
    .unwrap();
    assert_eq!(v.to_string(), "a");
}

#[test]
fn bound_identifier_distinctions() {
    // free-identifier=? sees through renaming; different bindings differ
    let v = run("#lang lagoon
         (define-syntax (same-as-car? stx)
           (syntax-parse stx
             [(_ x) (if (free-identifier=? #'x #'car) #'#t #'#f)]))
         (list (same-as-car? car) (same-as-car? cdr))")
    .unwrap();
    assert_eq!(v.to_string(), "(#t #f)");
}

#[test]
fn begin_for_syntax_runs_at_compile_time() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "main",
        "#lang lagoon
         (begin-for-syntax (display \"compile \"))
         (display \"run\")",
    );
    // compilation happens once; instantiation happens once
    let (_, out) = capture_output(|| {
        reg.run("main", EngineKind::Vm).unwrap();
    });
    assert_eq!(out, "compile run");
    // re-running uses the cached compile AND cached instance
    let (_, out2) = capture_output(|| {
        reg.run("main", EngineKind::Vm).unwrap();
    });
    assert_eq!(out2, "");
}

#[test]
fn define_for_syntax_via_begin_for_syntax() {
    let v = run("#lang lagoon
         (begin-for-syntax
           (define (triple n) (* 3 n)))
         (define-syntax (use-helper stx)
           (syntax-parse stx
             [(_ n:number) #`(quote #,(triple (syntax->datum #'n)))]))
         (use-helper 14)")
    .unwrap();
    assert_eq!(v.as_int(), Some(42));
}

#[test]
fn shadowing_macros_with_variables() {
    let v = run("#lang lagoon
         (define-syntax twice (syntax-rules () [(_ e) (+ e e)]))
         (define (f twice) (twice 5))
         (f (lambda (x) (* x 100)))")
    .unwrap();
    assert_eq!(v.as_int(), Some(500));
}

#[test]
fn recursive_template_escape() {
    // (... ...) escapes ellipses so macros can generate macros
    let v = run("#lang lagoon
         (define-syntax define-list-maker
           (syntax-rules ()
             [(_ name)
              (define-syntax name
                (syntax-rules ()
                  [(_ x (... ...)) (list x (... ...))]))]))
         (define-list-maker mk)
         (mk 1 2 3)")
    .unwrap();
    assert_eq!(v.to_string(), "(1 2 3)");
}

#[test]
fn output_order_and_side_effects() {
    let (_, out) = run_out(
        "#lang lagoon
         (define-syntax log-and-run
           (syntax-rules ()
             [(_ tag e) (begin (display tag) e)]))
         (display (log-and-run \"a\" 1))
         (display (log-and-run \"b\" 2))",
    );
    assert_eq!(out, "a1b2");
}

#[test]
fn error_spans_point_into_macros_uses() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "main",
        "#lang lagoon\n(define-syntax bad (syntax-rules () [(_) (car 5)]))\n(bad)\n",
    );
    let err = reg.run("main", EngineKind::Vm).unwrap_err();
    assert!(err.message.contains("car"));
}

#[test]
fn deeply_nested_macro_expansion() {
    // expansion depth stress: 64 nested my-or uses
    let mut expr = "#f".to_string();
    for i in 0..64 {
        expr = format!("(my-or #f {expr} {i})");
    }
    let src = format!(
        "#lang lagoon
         (define-syntax my-or
           (syntax-rules ()
             [(_) #f]
             [(_ e) e]
             [(_ e rest ...) (let ([t e]) (if t t (my-or rest ...)))]))
         {expr}"
    );
    let v = run(&src).unwrap();
    assert_eq!(v.as_int(), Some(0));
}

#[test]
fn quasiquote_nests_with_lists() {
    let v = run("#lang lagoon
         (define xs '(2 3))
         `(1 ,@xs (4 ,(+ 2 3)))")
    .unwrap();
    assert_eq!(v.to_string(), "(1 2 3 (4 5))");
}

#[test]
fn multi_module_macro_towers() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "level1",
        "#lang lagoon
         (define-syntax inc (syntax-rules () [(_ e) (+ e 1)]))
         (provide inc)",
    );
    reg.add_module(
        "level2",
        "#lang lagoon
         (require level1)
         (define-syntax inc2 (syntax-rules () [(_ e) (inc (inc e))]))
         (provide inc2)",
    );
    reg.add_module(
        "top",
        "#lang lagoon
         (require level2)
         (inc2 40)",
    );
    let v = reg.run("top", EngineKind::Vm).unwrap();
    assert_eq!(v.as_int(), Some(42));
}

#[test]
fn macro_using_module_runs_on_both_engines() {
    let reg = ModuleRegistry::new();
    reg.add_module(
        "m",
        "#lang lagoon
         (define-syntax sq (syntax-rules () [(_ e) (* e e)]))
         (sq 9)",
    );
    let vm = reg.run("m", EngineKind::Vm).unwrap();
    let interp = reg.run("m", EngineKind::Interp).unwrap();
    assert!(vm.equal(&interp));
    assert_eq!(vm.as_int(), Some(81));
}
