//! The hygienic macro expander.
//!
//! Reduces surface syntax to the core-forms grammar of paper figure 1,
//! running macro transformers (hosted phase-1 procedures and native Rust
//! transformers) as it goes. Hygiene is sets-of-scopes: binding forms add
//! fresh scopes, macro invocations flip a fresh introduction scope across
//! input and output, and identifier resolution picks the
//! largest-subset binding (see [`crate::binding`]).
//!
//! The expander also **alpha-renames**: every binder it processes is
//! assigned a globally unique runtime name, and every reference is
//! replaced by the name of the binding it resolves to. Fully-expanded
//! programs therefore have unique names — the invariant the paper's
//! typechecker (§4.3, identifier-keyed tables) and the bytecode compiler
//! rely on. Syntax properties on binders (type annotations!) are copied
//! onto the renamed identifiers.
//!
//! Compile-time declarations that must survive separate compilation —
//! the paper §5 `begin-for-syntax (add-type! …)` residue — go through
//! [`Expander::meta_persist`], which both updates the current compile-time
//! table and records the declaration for embedding in the compiled module.

use crate::binding::{Binding, BindingTable, CoreFormKind, ExpandCtx, Expanded, NativeMacro};
use lagoon_runtime::{Kind, RtError, Value};
use lagoon_syntax::{Datum, Scope, ScopeSet, Symbol, SynData, Syntax};
use lagoon_vm::{Engine, Env, Interp};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::{Rc, Weak};

thread_local! {
    static CURRENT: RefCell<Vec<Weak<Expander>>> = const { RefCell::new(Vec::new()) };
}

/// The expander active on this thread (set while phase-1 code runs), used
/// by phase-1 natives such as `local-expand` and `free-identifier=?`.
pub fn current_expander() -> Option<Rc<Expander>> {
    CURRENT.with(|c| c.borrow().last().and_then(Weak::upgrade))
}

/// A provide specification recorded during module expansion: the internal
/// identifier (with scopes, resolved later) and the external name.
#[derive(Clone, Debug)]
pub struct ProvideItem {
    /// The identifier as written (resolved after the module body expands).
    pub internal: Syntax,
    /// The name importers see.
    pub external: Symbol,
}

/// One per module compilation ("each module is compiled with a fresh
/// store", paper §2.3): fresh compile-time tables and a fresh phase-1
/// frame, over a shared binding table and phase-1 base environment.
pub struct Expander {
    /// The (world-shared) binding table.
    pub table: Rc<BindingTable>,
    /// This module's phase-1 environment (child of the shared base).
    pub phase1: Rc<Env>,
    /// The scope distinguishing this module's bindings.
    pub module_scope: Scope,
    /// The module being compiled.
    pub module_name: Symbol,
    /// Compile-time declaration table: (space, key) → datum. This is the
    /// fresh-per-compilation store that `typed-context?` and the type
    /// environment live in.
    meta: RefCell<HashMap<(Symbol, Symbol), Datum>>,
    /// Declarations to embed in the compiled module (replayed when this
    /// module is required during a later compilation).
    persist: RefCell<Vec<(Symbol, Symbol, Datum)>>,
    /// Provide items recorded by `#%provide`.
    pub provides: RefCell<Vec<ProvideItem>>,
    /// Pre-resolved exports added by language implementations (e.g. the
    /// typed language's hidden raw/defensive variables, paper §6.2).
    pub extra_exports: RefCell<Vec<(Symbol, Binding)>>,
    /// Modules required (runtime dependencies).
    pub requires: RefCell<Vec<Symbol>>,
    /// The registry, for processing `#%require` during expansion.
    pub registry: Weak<crate::module::ModuleRegistry>,
    self_ref: RefCell<Weak<Expander>>,
}

impl std::fmt::Debug for Expander {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#<expander:{}>", self.module_name)
    }
}

enum Classified {
    /// A native transformer produced fully-expanded core syntax.
    Done(Syntax),
    /// A core form to dispatch on.
    Core(CoreFormKind, Syntax),
    /// Not macro-headed: a reference, literal, or application.
    Other(Syntax),
}

impl Expander {
    /// Creates an expander for one module compilation.
    pub fn new(
        table: Rc<BindingTable>,
        phase1_base: &Rc<Env>,
        module_name: Symbol,
        registry: Weak<crate::module::ModuleRegistry>,
    ) -> Rc<Expander> {
        let exp = Rc::new(Expander {
            table,
            phase1: Env::child(phase1_base),
            module_scope: Scope::fresh(),
            module_name,
            meta: RefCell::new(HashMap::new()),
            persist: RefCell::new(Vec::new()),
            provides: RefCell::new(Vec::new()),
            extra_exports: RefCell::new(Vec::new()),
            requires: RefCell::new(Vec::new()),
            registry,
            self_ref: RefCell::new(Weak::new()),
        });
        *exp.self_ref.borrow_mut() = Rc::downgrade(&exp);
        exp
    }

    /// Converts a budget exhaustion into a span-carrying diagnostic,
    /// emitting the structured [`lagoon_diag::Event::Limit`] on the way.
    fn exhaust(&self, e: lagoon_diag::Exhausted, stx: &Syntax) -> RtError {
        lagoon_diag::limit_event(&e, self.module_name, Some(stx.span()));
        RtError::from(e).with_span(stx.span())
    }

    /// Charges one macro-expansion step against the installed budget.
    fn charge_expansion(&self, stx: &Syntax) -> Result<(), RtError> {
        lagoon_diag::limits::expansion_step().map_err(|e| self.exhaust(e, stx))
    }

    fn with_current<R>(&self, f: impl FnOnce() -> R) -> R {
        let me = self.self_ref.borrow().clone();
        CURRENT.with(|c| c.borrow_mut().push(me));
        let r = f();
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
        r
    }

    /// Resolves an identifier through the binding table.
    ///
    /// # Errors
    ///
    /// Propagates ambiguity errors.
    pub fn resolve(&self, id: &Syntax) -> Result<Option<Binding>, RtError> {
        self.table.resolve(id)
    }

    // ----- compile-time declaration table (paper §5) -----

    /// Reads a compile-time declaration.
    pub fn meta_get(&self, space: Symbol, key: Symbol) -> Option<Datum> {
        self.meta.borrow().get(&(space, key)).cloned()
    }

    /// Writes a compile-time declaration for this compilation only.
    pub fn meta_put(&self, space: Symbol, key: Symbol, value: Datum) {
        self.meta.borrow_mut().insert((space, key), value);
    }

    /// Writes a compile-time declaration *and* records it for persistence
    /// in the compiled module, so requiring modules replay it — the
    /// `begin-for-syntax (add-type! …)` mechanism of paper §5.
    pub fn meta_persist(&self, space: Symbol, key: Symbol, value: Datum) {
        self.meta_put(space, key, value.clone());
        self.persist.borrow_mut().push((space, key, value));
    }

    /// The declarations recorded for persistence.
    pub fn persisted(&self) -> Vec<(Symbol, Symbol, Datum)> {
        self.persist.borrow().clone()
    }

    /// Replays persisted declarations from a required module.
    pub fn replay(&self, decls: &[(Symbol, Symbol, Datum)]) {
        for (space, key, value) in decls {
            self.meta_put(*space, *key, value.clone());
        }
    }

    // ----- binders -----

    /// Binds `id` as a runtime variable under a fresh globally unique
    /// name; returns the renamed identifier carrying `id`'s properties.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is not an identifier.
    pub fn fresh_binder(&self, id: &Syntax) -> Result<Syntax, RtError> {
        let sym = id
            .sym()
            .ok_or_else(|| syntax_error("expected identifier", id))?;
        let fresh = sym.with_str(Symbol::fresh);
        self.table
            .bind(sym, id.scopes().clone(), Binding::Variable(fresh));
        Ok(Syntax::ident(fresh, id.span())
            .copy_properties_from(id)
            .with_property(Symbol::intern("source-name"), Datum::Symbol(sym).into()))
    }

    /// Installs a native transformer under `name` in the base (scopeless)
    /// environment — how substrate libraries (the typed language, the
    /// optimizer) plug in.
    pub fn bind_native(&self, name: &str, native: Rc<NativeMacro>) {
        self.table.bind(
            Symbol::intern(name),
            ScopeSet::new(),
            Binding::Native(native),
        );
    }

    // ----- phase-1 evaluation -----

    /// Applies a hosted macro transformer with hygiene: flips a fresh
    /// introduction scope across the input and output (paper §2.1).
    ///
    /// # Errors
    ///
    /// Propagates transformer errors; errors if the result is not syntax.
    pub fn apply_hosted_macro(&self, transformer: &Value, stx: &Syntax) -> Result<Syntax, RtError> {
        let intro = Scope::fresh();
        let input = stx.flip_scope(intro);
        let result = self.with_current(|| {
            // transformer bodies run on the phase-1 step budget
            let _p1 = lagoon_diag::limits::phase1_scope();
            Interp.apply(transformer, &[Value::Syntax(input)])
        })?;
        match result.as_syntax() {
            Some(s) => Ok(s.flip_scope(intro)),
            None => Err(RtError::user(format!(
                "macro transformer returned a non-syntax value: {}",
                result.write_string()
            ))
            .with_span(stx.span())),
        }
    }

    /// Expands and evaluates an expression at phase 1 (compile time).
    ///
    /// # Errors
    ///
    /// Propagates expansion and evaluation errors.
    pub fn eval_phase1(&self, stx: &Syntax) -> Result<Value, RtError> {
        let core = self.expand_expr(stx)?;
        let expr = lagoon_vm::parse_expr(&core)?;
        self.with_current(|| {
            let _p1 = lagoon_diag::limits::phase1_scope();
            Interp.eval(&expr, &self.phase1)
        })
    }

    /// Evaluates a phase-1 *form*: `define-values` defines into the
    /// module's phase-1 frame; anything else is an expression.
    ///
    /// # Errors
    ///
    /// Propagates expansion and evaluation errors.
    pub fn eval_phase1_form(&self, stx: &Syntax) -> Result<Value, RtError> {
        match self.classify(stx.clone(), ExpandCtx::InternalDefine)? {
            Classified::Core(CoreFormKind::DefineValues, stx) => {
                let (id, rhs) = parse_define_values(&stx)?;
                let binder = self.fresh_binder(&id)?;
                let v = self.eval_phase1(&rhs)?;
                let name = binder
                    .sym()
                    .ok_or_else(|| syntax_error("define-values: expected identifier", &binder))?;
                self.phase1.define(name, v);
                Ok(Value::Void)
            }
            Classified::Core(CoreFormKind::DefineSyntaxes, stx) => {
                self.handle_define_syntaxes(&stx)?;
                Ok(Value::Void)
            }
            Classified::Core(CoreFormKind::Begin, stx) => {
                let items = stx
                    .as_list()
                    .ok_or_else(|| syntax_error("malformed begin", &stx))?;
                let mut last = Value::Void;
                for f in &items[1..] {
                    last = self.eval_phase1_form(f)?;
                }
                Ok(last)
            }
            Classified::Done(core) => {
                let expr = lagoon_vm::parse_expr(&core)?;
                self.with_current(|| {
                    let _p1 = lagoon_diag::limits::phase1_scope();
                    Interp.eval(&expr, &self.phase1)
                })
            }
            Classified::Core(_, stx) | Classified::Other(stx) => self.eval_phase1(&stx),
        }
    }

    // ----- expansion -----

    /// Expands macro uses at the head of `stx` until a core form,
    /// reference, or application emerges.
    fn classify(&self, mut stx: Syntax, ctx: ExpandCtx) -> Result<Classified, RtError> {
        loop {
            let head = stx.as_list().and_then(|items| items.first().cloned());
            let Some(head) = head.filter(Syntax::is_identifier) else {
                return Ok(Classified::Other(stx));
            };
            match self.resolve(&head)? {
                Some(Binding::Macro(transformer)) => {
                    self.charge_expansion(&stx)?;
                    lagoon_diag::count("macro-steps", self.module_name, 1);
                    stx = self.apply_hosted_macro(&transformer, &stx)?;
                    // bill the transcription by its width so a
                    // self-doubling macro pays for the syntax it builds
                    let width = stx.as_list().map_or(0, |l| l.len() as u64);
                    if width > 1 {
                        lagoon_diag::limits::expansion_steps(width - 1)
                            .map_err(|e| self.exhaust(e, &stx))?;
                    }
                }
                Some(Binding::Native(native)) => {
                    self.charge_expansion(&stx)?;
                    match (native.expand)(self, stx, ctx)? {
                        Expanded::Surface(s) => stx = s,
                        Expanded::Core(s) => return Ok(Classified::Done(s)),
                    }
                }
                Some(Binding::Core(kind)) => return Ok(Classified::Core(kind, stx)),
                _ => return Ok(Classified::Other(stx)),
            }
        }
    }

    /// Fully expands an expression to core syntax. This is the paper's
    /// `(local-expand stx 'expression '())`.
    ///
    /// # Errors
    ///
    /// Returns syntax errors for malformed forms and unbound identifiers.
    pub fn expand_expr(&self, stx: &Syntax) -> Result<Syntax, RtError> {
        let _depth = lagoon_diag::limits::enter_expansion().map_err(|e| self.exhaust(e, stx))?;
        match self.classify(stx.clone(), ExpandCtx::Expression)? {
            Classified::Done(core) => Ok(core),
            Classified::Core(kind, stx) => self.expand_core(kind, &stx),
            Classified::Other(stx) => match stx.e() {
                SynData::Atom(Datum::Symbol(_)) => self.expand_reference(&stx),
                // self-evaluating literals expand to (quote lit), as in
                // Racket's core grammar
                SynData::Atom(_) | SynData::Vector(_) => {
                    Ok(stx.with_data(SynData::List(vec![crate::build::id("quote"), stx.clone()])))
                }
                SynData::List(items) if !items.is_empty() => {
                    // application with #%plain-app inserted
                    let mut out = vec![crate::build::id("#%plain-app")];
                    for item in items {
                        out.push(self.expand_expr(item)?);
                    }
                    Ok(stx.with_data(SynData::List(out)))
                }
                _ => Err(syntax_error("bad expression syntax", &stx)),
            },
        }
    }

    fn expand_reference(&self, id: &Syntax) -> Result<Syntax, RtError> {
        match self.resolve(id)? {
            Some(Binding::Variable(name)) => {
                Ok(Syntax::ident(name, id.span()).copy_properties_from(id))
            }
            Some(Binding::PatternVar(name, depth)) => {
                if depth == 0 {
                    Ok(Syntax::ident(name, id.span()))
                } else {
                    Err(syntax_error(
                        "pattern variable used without enough ellipses",
                        id,
                    ))
                }
            }
            Some(Binding::Core(_)) => Err(syntax_error("core form used as an expression", id)),
            // identifier macros: apply the transformer to the bare
            // identifier (how the typed language's export indirections
            // work, paper §6.2)
            Some(Binding::Macro(transformer)) => {
                let out = self.apply_hosted_macro(&transformer, id)?;
                self.expand_expr(&out)
            }
            Some(Binding::Native(native)) => {
                match (native.expand)(self, id.clone(), ExpandCtx::Expression)? {
                    Expanded::Core(core) => Ok(core),
                    Expanded::Surface(s) => self.expand_expr(&s),
                }
            }
            None => Err(
                RtError::new(Kind::Unbound, format!("{}: unbound identifier", id))
                    .with_span(id.span()),
            ),
        }
    }

    fn expand_core(&self, kind: CoreFormKind, stx: &Syntax) -> Result<Syntax, RtError> {
        let items = stx
            .as_list()
            .ok_or_else(|| syntax_error("bad core form", stx))?;
        match kind {
            CoreFormKind::Quote => {
                if items.len() != 2 {
                    return Err(syntax_error("quote: expects one form", stx));
                }
                Ok(stx.with_data(SynData::List(vec![
                    crate::build::id("quote"),
                    items[1].clone(),
                ])))
            }
            CoreFormKind::QuoteSyntax => {
                if items.len() != 2 {
                    return Err(syntax_error("quote-syntax: expects one form", stx));
                }
                Ok(stx.with_data(SynData::List(vec![
                    crate::build::id("quote-syntax"),
                    items[1].clone(),
                ])))
            }
            CoreFormKind::If => {
                if items.len() != 4 {
                    return Err(syntax_error("if: expects three subexpressions", stx));
                }
                Ok(stx.with_data(SynData::List(vec![
                    crate::build::id("if"),
                    self.expand_expr(&items[1])?,
                    self.expand_expr(&items[2])?,
                    self.expand_expr(&items[3])?,
                ])))
            }
            CoreFormKind::Begin => {
                if items.len() < 2 {
                    return Err(syntax_error("begin: expects at least one form", stx));
                }
                let mut out = vec![crate::build::id("begin")];
                for item in &items[1..] {
                    out.push(self.expand_expr(item)?);
                }
                Ok(stx.with_data(SynData::List(out)))
            }
            CoreFormKind::Lambda => self.expand_lambda(stx),
            CoreFormKind::LetValues => self.expand_let(stx, false),
            CoreFormKind::LetrecValues => self.expand_let(stx, true),
            CoreFormKind::Set => {
                if items.len() != 3 {
                    return Err(syntax_error("set!: expects identifier and value", stx));
                }
                let target = match self.resolve(&items[1])? {
                    Some(Binding::Variable(name)) => Syntax::ident(name, items[1].span()),
                    Some(_) => return Err(syntax_error("set!: not a variable", &items[1])),
                    None => {
                        return Err(RtError::new(
                            Kind::Unbound,
                            format!("set!: unbound identifier {}", items[1]),
                        )
                        .with_span(items[1].span()))
                    }
                };
                Ok(stx.with_data(SynData::List(vec![
                    crate::build::id("set!"),
                    target,
                    self.expand_expr(&items[2])?,
                ])))
            }
            CoreFormKind::App => {
                if items.len() < 2 {
                    return Err(syntax_error("#%plain-app: expects a procedure", stx));
                }
                let mut out = vec![crate::build::id("#%plain-app")];
                for item in &items[1..] {
                    out.push(self.expand_expr(item)?);
                }
                Ok(stx.with_data(SynData::List(out)))
            }
            CoreFormKind::PlainModuleBegin => {
                let forms = items[1..].to_vec();
                let out = self.expand_module_forms(forms)?;
                let mut body = vec![crate::build::id("#%plain-module-begin")];
                body.extend(out);
                Ok(stx.with_data(SynData::List(body)))
            }
            CoreFormKind::DefineValues | CoreFormKind::DefineSyntaxes => Err(syntax_error(
                "definition used in an expression context",
                stx,
            )),
            CoreFormKind::BeginForSyntax | CoreFormKind::Provide | CoreFormKind::Require => Err(
                syntax_error("module-level form used in an expression context", stx),
            ),
        }
    }

    fn expand_lambda(&self, stx: &Syntax) -> Result<Syntax, RtError> {
        let items = stx
            .as_list()
            .ok_or_else(|| syntax_error("malformed lambda", stx))?;
        if items.len() < 3 {
            return Err(syntax_error("lambda: expects formals and a body", stx));
        }
        let sc = Scope::fresh();
        let formals = items[1].add_scope(sc);
        let formals_out = match formals.e() {
            SynData::List(ids) => {
                let out = ids
                    .iter()
                    .map(|id| self.fresh_binder(id))
                    .collect::<Result<Vec<_>, _>>()?;
                formals.with_data(SynData::List(out))
            }
            SynData::Improper(ids, tail) => {
                let out = ids
                    .iter()
                    .map(|id| self.fresh_binder(id))
                    .collect::<Result<Vec<_>, _>>()?;
                let tail_out = self.fresh_binder(tail)?;
                formals.with_data(SynData::Improper(out, Box::new(tail_out)))
            }
            SynData::Atom(Datum::Symbol(_)) => self.fresh_binder(&formals)?,
            _ => return Err(syntax_error("lambda: malformed formals", &items[1])),
        };
        let body: Vec<Syntax> = items[2..].iter().map(|f| f.add_scope(sc)).collect();
        let body_core = self.expand_body(&body)?;
        Ok(stx.with_data(SynData::List(vec![
            crate::build::id("#%plain-lambda"),
            formals_out,
            body_core,
        ])))
    }

    fn expand_let(&self, stx: &Syntax, rec: bool) -> Result<Syntax, RtError> {
        let items = stx
            .as_list()
            .ok_or_else(|| syntax_error("malformed let-values", stx))?;
        if items.len() < 3 {
            return Err(syntax_error("let-values: expects bindings and a body", stx));
        }
        let clauses = items[1]
            .as_list()
            .ok_or_else(|| syntax_error("let-values: malformed bindings", &items[1]))?;
        let mut raw = Vec::new();
        let mut multi = false;
        for clause in clauses {
            let parts = clause
                .as_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| syntax_error("let-values: malformed clause", clause))?;
            let ids = parts[0]
                .as_list()
                .ok_or_else(|| syntax_error("let-values: malformed clause", clause))?;
            for id in ids {
                if !id.is_identifier() {
                    return Err(syntax_error("let-values: expected an identifier", id));
                }
            }
            multi |= ids.len() != 1;
            raw.push((ids.to_vec(), parts[1].clone()));
        }
        if multi {
            // clauses binding zero or several identifiers desugar through
            // the multiple-values helpers into all-single clauses, then
            // re-expand (the rewritten head is the original identifier, so
            // it resolves back here)
            let rewritten = desugar_let_values(&items[0], &raw, &items[2..], rec);
            return self.expand_expr(&rewritten);
        }
        let sc = Scope::fresh();
        let parsed: Vec<(Syntax, Syntax)> = raw
            .into_iter()
            .map(|(ids, rhs)| (ids[0].clone(), rhs))
            .collect();
        let mut out_clauses = Vec::new();
        if rec {
            // bind first, expand right-hand sides under the scope
            let binders = parsed
                .iter()
                .map(|(id, _)| self.fresh_binder(&id.add_scope(sc)))
                .collect::<Result<Vec<_>, _>>()?;
            for ((_, rhs), binder) in parsed.iter().zip(binders) {
                let rhs_core = self.expand_expr(&rhs.add_scope(sc))?;
                out_clauses.push(crate::build::lst(vec![
                    crate::build::lst(vec![binder]),
                    rhs_core,
                ]));
            }
        } else {
            for (id, rhs) in &parsed {
                let rhs_core = self.expand_expr(rhs)?;
                let binder = self.fresh_binder(&id.add_scope(sc))?;
                out_clauses.push(crate::build::lst(vec![
                    crate::build::lst(vec![binder]),
                    rhs_core,
                ]));
            }
        }
        let body: Vec<Syntax> = items[2..].iter().map(|f| f.add_scope(sc)).collect();
        let body_core = self.expand_body(&body)?;
        Ok(stx.with_data(SynData::List(vec![
            crate::build::id(if rec { "letrec-values" } else { "let-values" }),
            crate::build::lst(out_clauses),
            body_core,
        ])))
    }

    /// Expands an internal-definition context (a lambda/let body that may
    /// mix definitions and expressions) into a single core expression.
    ///
    /// # Errors
    ///
    /// Returns syntax errors for bodies with no expressions or malformed
    /// definitions.
    pub fn expand_body(&self, forms: &[Syntax]) -> Result<Syntax, RtError> {
        enum Item {
            Def(Syntax, Syntax),
            Expr(Syntax),
            Done(Syntax),
        }
        let mut items: Vec<Item> = Vec::new();
        let mut work: std::collections::VecDeque<Syntax> = forms.iter().cloned().collect();
        while let Some(form) = work.pop_front() {
            match self.classify(form, ExpandCtx::InternalDefine)? {
                Classified::Done(core) => items.push(Item::Done(core)),
                Classified::Core(CoreFormKind::Begin, stx) => {
                    let inner = stx
                        .as_list()
                        .ok_or_else(|| syntax_error("malformed begin", &stx))?;
                    for f in inner[1..].iter().rev() {
                        work.push_front(f.clone());
                    }
                }
                Classified::Core(CoreFormKind::DefineValues, stx) => {
                    let (ids, rhs) = parse_define_values_ids(&stx)?;
                    if let [id] = ids.as_slice() {
                        let binder = self.fresh_binder(id)?;
                        items.push(Item::Def(binder, rhs));
                    } else {
                        for f in desugar_define_values(&stx, &ids, &rhs)?.into_iter().rev() {
                            work.push_front(f);
                        }
                    }
                }
                Classified::Core(CoreFormKind::DefineSyntaxes, stx) => {
                    self.handle_define_syntaxes(&stx)?;
                }
                Classified::Core(_, stx) | Classified::Other(stx) => items.push(Item::Expr(stx)),
            }
        }
        let has_defs = items.iter().any(|i| matches!(i, Item::Def(_, _)));
        let mut clauses = Vec::new();
        let mut exprs = Vec::new();
        for item in items {
            match item {
                Item::Def(binder, rhs) => {
                    let rhs_core = self.expand_expr(&rhs)?;
                    clauses.push(crate::build::lst(vec![
                        crate::build::lst(vec![binder]),
                        rhs_core,
                    ]));
                }
                Item::Expr(e) => exprs.push(self.expand_expr(&e)?),
                Item::Done(core) => exprs.push(core),
            }
        }
        if exprs.is_empty() {
            return Err(RtError::user("body has no expression"));
        }
        if has_defs {
            let mut out = vec![
                crate::build::id("letrec-values"),
                crate::build::lst(clauses),
            ];
            out.extend(exprs);
            Ok(crate::build::lst(out))
        } else {
            Ok(crate::build::begin(exprs))
        }
    }

    fn handle_define_syntaxes(&self, stx: &Syntax) -> Result<(), RtError> {
        let (id, rhs) = parse_define_syntaxes(stx)?;
        let transformer = self.eval_phase1(&rhs)?;
        if !transformer.is_procedure() {
            return Err(syntax_error(
                "define-syntax: transformer is not a procedure",
                stx,
            ));
        }
        self.table
            .bind_id(&id, Binding::Macro(Rc::new(transformer)));
        Ok(())
    }

    /// Expands a module body (a sequence of module-level forms) to core
    /// module forms: the definition-context pass of paper §4.2's driver.
    ///
    /// First pass: expand macro heads, splice `begin`, register
    /// `define-values` binders, evaluate `define-syntaxes` /
    /// `begin-for-syntax`, process `#%require`, record `#%provide`.
    /// Second pass: fully expand deferred right-hand sides and
    /// expressions.
    ///
    /// # Errors
    ///
    /// Returns expansion errors from either pass.
    pub fn expand_module_forms(&self, forms: Vec<Syntax>) -> Result<Vec<Syntax>, RtError> {
        enum Item {
            Def(Syntax, Syntax, Syntax),
            Expr(Syntax),
            Done(Syntax),
        }
        let mut items: Vec<Item> = Vec::new();
        let mut work: std::collections::VecDeque<Syntax> = forms.into_iter().collect();
        while let Some(form) = work.pop_front() {
            match self.classify(form, ExpandCtx::ModuleBegin)? {
                Classified::Done(core) => items.push(Item::Done(core)),
                Classified::Core(CoreFormKind::Begin, stx) => {
                    let inner = stx
                        .as_list()
                        .ok_or_else(|| syntax_error("malformed begin", &stx))?;
                    for f in inner[1..].iter().rev() {
                        work.push_front(f.clone());
                    }
                }
                Classified::Core(CoreFormKind::DefineValues, stx) => {
                    let (ids, rhs) = parse_define_values_ids(&stx)?;
                    if let [id] = ids.as_slice() {
                        let binder = self.fresh_binder(id)?;
                        items.push(Item::Def(binder, rhs, stx));
                    } else {
                        for f in desugar_define_values(&stx, &ids, &rhs)?.into_iter().rev() {
                            work.push_front(f);
                        }
                    }
                }
                Classified::Core(CoreFormKind::DefineSyntaxes, stx) => {
                    self.handle_define_syntaxes(&stx)?;
                }
                Classified::Core(CoreFormKind::BeginForSyntax, stx) => {
                    let inner = stx
                        .as_list()
                        .ok_or_else(|| syntax_error("malformed begin-for-syntax", &stx))?;
                    for f in &inner[1..] {
                        self.eval_phase1_form(f)?;
                    }
                }
                Classified::Core(CoreFormKind::Require, stx) => {
                    self.handle_require(&stx)?;
                }
                Classified::Core(CoreFormKind::Provide, stx) => {
                    self.handle_provide(&stx)?;
                }
                Classified::Core(_, stx) | Classified::Other(stx) => items.push(Item::Expr(stx)),
            }
        }
        let mut out = Vec::new();
        for item in items {
            match item {
                Item::Def(binder, rhs, orig) => {
                    let _t = form_trace_span(binder.sym(), &orig);
                    let rhs_core = self.expand_expr(&rhs)?;
                    out.push(orig.with_data(SynData::List(vec![
                        crate::build::id("define-values"),
                        crate::build::lst(vec![binder]),
                        rhs_core,
                    ])));
                }
                Item::Expr(e) => {
                    let _t = form_trace_span(head_sym(&e), &e);
                    out.push(self.expand_expr(&e)?);
                }
                Item::Done(core) => out.push(core),
            }
        }
        Ok(out)
    }

    fn handle_require(&self, stx: &Syntax) -> Result<(), RtError> {
        let items = stx
            .as_list()
            .ok_or_else(|| syntax_error("malformed require", stx))?;
        for spec in &items[1..] {
            let name = spec
                .sym()
                .ok_or_else(|| syntax_error("require: expected a module name", spec))?;
            let registry = self
                .registry
                .upgrade()
                .ok_or_else(|| RtError::new(Kind::Internal, "module registry is gone"))?;
            registry.import_into(self, name, spec.span())?;
        }
        Ok(())
    }

    fn handle_provide(&self, stx: &Syntax) -> Result<(), RtError> {
        let items = stx
            .as_list()
            .ok_or_else(|| syntax_error("malformed provide", stx))?;
        for spec in &items[1..] {
            if let Some(external) = spec.sym().filter(|_| spec.is_identifier()) {
                self.provides.borrow_mut().push(ProvideItem {
                    internal: spec.clone(),
                    external,
                });
            } else if let Some(parts) = spec.as_list() {
                // (rename internal external)
                if let (3, Some(rename), true, Some(external)) = (
                    parts.len(),
                    parts.first().and_then(|p| p.sym()),
                    parts.get(1).is_some_and(|p| p.is_identifier()),
                    parts.get(2).and_then(|p| p.sym()),
                ) {
                    if rename != Symbol::intern("rename") {
                        return Err(syntax_error("malformed provide spec", spec));
                    }
                    self.provides.borrow_mut().push(ProvideItem {
                        internal: parts[1].clone(),
                        external,
                    });
                } else {
                    return Err(syntax_error("provide: malformed spec", spec));
                }
            } else {
                return Err(syntax_error("provide: malformed spec", spec));
            }
        }
        Ok(())
    }

    /// Expands a `(#%module-begin form …)` wrapper: resolves the head in
    /// the module's language (the whole-module hook of paper §2.3) and
    /// drives it to a `(#%plain-module-begin core-form …)` result.
    ///
    /// # Errors
    ///
    /// Returns expansion errors, or an error if the language's
    /// `#%module-begin` does not produce a `#%plain-module-begin` form.
    pub fn expand_module_begin(&self, stx: Syntax) -> Result<Syntax, RtError> {
        match self.classify(stx, ExpandCtx::ModuleBegin)? {
            Classified::Done(core) => {
                if crate::build::headed_by(&core, "#%plain-module-begin") {
                    Ok(core)
                } else {
                    Err(syntax_error(
                        "#%module-begin did not produce a #%plain-module-begin form",
                        &core,
                    ))
                }
            }
            Classified::Core(CoreFormKind::PlainModuleBegin, stx) => {
                self.expand_core(CoreFormKind::PlainModuleBegin, &stx)
            }
            Classified::Core(_, stx) | Classified::Other(stx) => Err(syntax_error(
                "module body must be wrapped by #%module-begin",
                &stx,
            )),
        }
    }
}

/// Builds a syntax error at `stx`.
pub fn syntax_error(message: impl std::fmt::Display, stx: &Syntax) -> RtError {
    RtError::user(format!("{message} in: {stx}")).with_span(stx.span())
}

/// The head identifier of a compound form (`(define …)` → `define`),
/// or the symbol itself for a bare identifier.
fn head_sym(stx: &Syntax) -> Option<Symbol> {
    match stx.as_list() {
        Some(items) => items.first().and_then(|h| h.sym()),
        None => stx.sym(),
    }
}

/// Opens a per-top-level-form trace span labeled with the form's
/// defining (or head) identifier and carrying its source location —
/// the file:line attribution `lagoon run --trace` shows under each
/// module's expand span. Inert (one flag read) when no tracer is
/// installed.
fn form_trace_span(name: Option<Symbol>, stx: &Syntax) -> lagoon_diag::trace::SpanGuard {
    if !lagoon_diag::trace::active() {
        return lagoon_diag::trace::start("form", "");
    }
    let label = match name {
        Some(sym) => sym.with_str(|n| lagoon_syntax::strip_gensym(n).to_string()),
        None => "<form>".to_string(),
    };
    lagoon_diag::trace::start_at("form", &label, stx.span())
}

/// Builds the surface application `(#%values-check rhs n)` — at run
/// time it verifies `rhs` produced exactly `n` values.
fn values_check(rhs: Syntax, n: usize) -> Syntax {
    crate::build::lst(vec![
        crate::build::id("#%values-check"),
        rhs,
        crate::build::int(n as i64),
    ])
}

/// Builds the surface application `(#%values-ref tmp i n)` — extracts
/// the `i`-th of `n` values from a checked values package.
fn values_ref(tmp: &Syntax, i: usize, n: usize) -> Syntax {
    crate::build::lst(vec![
        crate::build::id("#%values-ref"),
        tmp.clone(),
        crate::build::int(i as i64),
        crate::build::int(n as i64),
    ])
}

/// Rewrites a `let-values`/`letrec-values` form with clauses binding a
/// number of identifiers other than one into all-single clauses over the
/// `values` runtime helpers. Temporaries are uninterned gensyms with no
/// scopes, so user code cannot capture (or shadow) them.
///
/// Non-recursive: the checked packages bind in an outer `let-values`
/// (right-hand sides still see only the surrounding environment) and the
/// destructured identifiers bind in an inner one wrapping the body.
/// Recursive: everything stays one flat `letrec-values`, whose
/// sequential semantics make each package available to its refs.
fn desugar_let_values(
    head: &Syntax,
    clauses: &[(Vec<Syntax>, Syntax)],
    body: &[Syntax],
    rec: bool,
) -> Syntax {
    let mut outer: Vec<Syntax> = Vec::new();
    let mut inner: Vec<Syntax> = Vec::new();
    for (ids, rhs) in clauses {
        if let [id] = ids.as_slice() {
            outer.push(crate::build::lst(vec![
                crate::build::lst(vec![id.clone()]),
                rhs.clone(),
            ]));
            continue;
        }
        let n = ids.len();
        let tmp = Syntax::ident(Symbol::fresh("mv"), rhs.span());
        outer.push(crate::build::lst(vec![
            crate::build::lst(vec![tmp.clone()]),
            values_check(rhs.clone(), n),
        ]));
        let refs = ids.iter().enumerate().map(|(i, id)| {
            crate::build::lst(vec![
                crate::build::lst(vec![id.clone()]),
                values_ref(&tmp, i, n),
            ])
        });
        if rec {
            outer.extend(refs);
        } else {
            inner.extend(refs);
        }
    }
    let mut out = vec![head.clone(), crate::build::lst(outer)];
    if inner.is_empty() {
        out.extend(body.iter().cloned());
    } else {
        let mut inner_form = vec![head.clone(), crate::build::lst(inner)];
        inner_form.extend(body.iter().cloned());
        out.push(crate::build::lst(inner_form));
    }
    crate::build::lst(out)
}

/// Splits `(define-values (id ...) rhs)` binding a number of identifiers
/// other than one into a temporary define of the checked values package
/// plus one single-identifier define per bound name. Each emitted form
/// reuses the original head identifier, so re-classification routes it
/// back to the `DefineValues` core form.
fn desugar_define_values(
    stx: &Syntax,
    ids: &[Syntax],
    rhs: &Syntax,
) -> Result<Vec<Syntax>, RtError> {
    let items = stx
        .as_list()
        .ok_or_else(|| syntax_error("malformed define-values", stx))?;
    let head = items[0].clone();
    let n = ids.len();
    let tmp = Syntax::ident(Symbol::fresh("mv"), stx.span());
    let mut out = vec![stx.with_data(SynData::List(vec![
        head.clone(),
        crate::build::lst(vec![tmp.clone()]),
        values_check(rhs.clone(), n),
    ]))];
    for (i, id) in ids.iter().enumerate() {
        out.push(stx.with_data(SynData::List(vec![
            head.clone(),
            crate::build::lst(vec![id.clone()]),
            values_ref(&tmp, i, n),
        ])));
    }
    Ok(out)
}

/// Parses `(define-values (id ...) rhs)`, allowing any number of bound
/// identifiers (the desugaring above handles n != 1).
fn parse_define_values_ids(stx: &Syntax) -> Result<(Vec<Syntax>, Syntax), RtError> {
    let items = stx
        .as_list()
        .ok_or_else(|| syntax_error("malformed define-values", stx))?;
    if items.len() != 3 {
        return Err(syntax_error(
            "define-values: expects (id ...) and a value",
            stx,
        ));
    }
    let ids = items[1]
        .as_list()
        .filter(|ids| ids.iter().all(|id| id.is_identifier()))
        .ok_or_else(|| syntax_error("define-values: expects identifiers", &items[1]))?;
    Ok((ids.to_vec(), items[2].clone()))
}

fn parse_define_values(stx: &Syntax) -> Result<(Syntax, Syntax), RtError> {
    let items = stx
        .as_list()
        .ok_or_else(|| syntax_error("malformed define-values", stx))?;
    if items.len() != 3 {
        return Err(syntax_error("define-values: expects (id) and a value", stx));
    }
    let ids = items[1]
        .as_list()
        .filter(|ids| ids.len() == 1 && ids[0].is_identifier())
        .ok_or_else(|| {
            syntax_error(
                "define-values: Lagoon supports single identifiers",
                &items[1],
            )
        })?;
    Ok((ids[0].clone(), items[2].clone()))
}

fn parse_define_syntaxes(stx: &Syntax) -> Result<(Syntax, Syntax), RtError> {
    let items = stx
        .as_list()
        .ok_or_else(|| syntax_error("malformed define-syntaxes", stx))?;
    if items.len() != 3 {
        return Err(syntax_error(
            "define-syntaxes: expects (id) and a transformer",
            stx,
        ));
    }
    let ids = items[1]
        .as_list()
        .filter(|ids| ids.len() == 1 && ids[0].is_identifier())
        .ok_or_else(|| syntax_error("define-syntaxes: expects a single identifier", &items[1]))?;
    Ok((ids[0].clone(), items[2].clone()))
}
