//! Modules, languages, and separate compilation.
//!
//! A [`ModuleRegistry`] is the world: module sources, compiled modules,
//! and per-engine instances. Each module names its language on the `#lang`
//! line (paper §2.3); a *language* is just a set of exported bindings —
//! crucially including `#%module-begin`, the hook that gives the language
//! implementation control over the whole module.
//!
//! Compilation follows the paper's architecture:
//!
//! 1. read → wrap the body in `(#%module-begin …)` resolved against the
//!    module's language;
//! 2. expand (which runs the language's whole-module transformer — for the
//!    typed language, that's where typechecking and optimization happen);
//! 3. compile the resulting core forms to bytecode;
//! 4. record exports, runtime requires, and *persisted compile-time
//!    declarations* (paper §5) in the [`CompiledModule`].
//!
//! Each compilation gets a fresh [`Expander`] — a fresh compile-time store
//! — over the shared binding table, which is how the `typed-context?` flag
//! trick of paper §6.2 stays sound.

use crate::binding::{Binding, BindingTable, CoreFormKind, NativeMacro};
use crate::expander::Expander;
use crate::store;
use lagoon_runtime::{Kind, RtError, Value};
use lagoon_syntax::{read_module_recover, Datum, ScopeSet, Span, Symbol, Syntax};
use lagoon_vm::{parse_form, Compiler, CoreForm, Env, Globals, Interp, Vm};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::rc::Rc;

/// Which execution engine to instantiate a module on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The tree-walking reference interpreter.
    Interp,
    /// The bytecode VM.
    Vm,
}

/// A compiled module: the persistent result of compilation (paper §5).
pub struct CompiledModule {
    /// The module's name.
    pub name: Symbol,
    /// The language it was written in.
    pub lang: Symbol,
    /// Exports: external name → binding.
    pub exports: Vec<(Symbol, Binding)>,
    /// The expanded module body (kept for tooling and tests).
    pub expanded: Vec<Syntax>,
    /// Parsed core forms (for the interpreter engine).
    pub forms: Vec<CoreForm>,
    /// Compiled bytecode (for the VM engine).
    pub code: lagoon_vm::bytecode::ModuleCode,
    /// Modules required at runtime.
    pub requires: Vec<Symbol>,
    /// Compile-time declarations to replay when this module is required
    /// during a later compilation (serialized as S-expression data).
    pub persisted: Vec<(Symbol, Symbol, Datum)>,
}

/// A language usable on a `#lang` line: a bundle of bindings (and, for
/// variable bindings backed by natives, their runtime values).
pub struct Language {
    /// The language's name.
    pub name: Symbol,
    /// Bindings importers receive.
    pub exports: Vec<(Symbol, Binding)>,
    /// Runtime values for exported [`Binding::Variable`]s that are not
    /// backed by a module (e.g. native helpers of the typed language).
    pub values: HashMap<Symbol, Value>,
}

/// The world: sources, languages, compiled modules, instances.
pub struct ModuleRegistry {
    /// The shared binding table.
    pub table: Rc<BindingTable>,
    /// Phase-1 base environment (primitives + matcher/expander natives +
    /// the hosted prelude).
    pub phase1_base: RefCell<Rc<Env>>,
    sources: RefCell<HashMap<Symbol, String>>,
    compiled: RefCell<HashMap<Symbol, Rc<CompiledModule>>>,
    languages: RefCell<HashMap<Symbol, Rc<Language>>>,
    compiling: RefCell<HashSet<Symbol>>,
    /// Values for base-environment variables, per engine.
    interp_base: RefCell<Rc<Env>>,
    vm_base: RefCell<HashMap<Symbol, Value>>,
    instances_interp: RefCell<HashMap<Symbol, (Rc<Env>, Value)>>,
    instances_vm: RefCell<HashMap<Symbol, (Rc<Globals>, Value)>>,
    instantiating: RefCell<HashSet<Symbol>>,
    self_ref: RefCell<std::rc::Weak<ModuleRegistry>>,
    /// Where `.lagc` artifacts live; `None` disables the compiled store.
    store_dir: RefCell<Option<PathBuf>>,
    /// Lazy source resolver: consulted (and memoized into `sources`) when
    /// a required module has no registered source.
    #[allow(clippy::type_complexity)]
    loader: RefCell<Option<Box<dyn Fn(Symbol) -> Option<String>>>>,
    /// Rehydrators for persisted native-transformer exports, by recipe tag.
    #[allow(clippy::type_complexity)]
    rehydrators: RefCell<HashMap<Symbol, Rc<dyn Fn(&Datum) -> Option<Rc<NativeMacro>>>>>,
    /// Per-module artifact digests this session: (digest of the artifact
    /// bytes, whether the module was *loaded* from the store rather than
    /// compiled fresh). Importers may only hit the cache when every
    /// dependency was itself loaded with a matching digest — fresh
    /// compiles use live gensyms a decoded importer cannot reference.
    artifact_digests: RefCell<HashMap<Symbol, (u64, bool)>>,
    /// Digest of the base environment's global names (see `store`).
    env_digest: Cell<u64>,
}

impl std::fmt::Debug for ModuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#<module-registry>")
    }
}

/// How a `compile` request interacted with the compiled store.
enum CacheOutcome {
    /// Loaded from a valid artifact — skip compilation entirely.
    Hit(Rc<CompiledModule>),
    /// Compile from source; `reported` says whether a stale/corrupt
    /// cache event already explained why.
    Miss {
        /// A diagnostic event for this module was already emitted.
        reported: bool,
    },
}

/// Module names that map to a file inside the store directory. Names
/// with path separators (or traversal) are compiled but never stored.
fn cacheable_name(name: Symbol) -> bool {
    name.with_str(|s| !s.is_empty() && !s.contains(['/', '\\']) && !s.contains(".."))
}

fn artifact_path(dir: &std::path::Path, name: Symbol) -> PathBuf {
    dir.join(format!("{name}.lagc"))
}

/// Writes `bytes` to `path` via a uniquely named `*.tmp` sibling and an
/// atomic `rename`, so concurrent readers of the store never observe a
/// half-written artifact and concurrent writers racing on the same key
/// each land a complete file (last rename wins — harmless, because
/// deterministic compilation makes racing writers produce identical
/// bytes; even a divergent winner is caught by the artifact's content
/// digest and validity checks on load, as staleness, never corruption).
fn write_atomically(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "lagc.{}.{}.tmp",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // never leave a stray tmp file behind a failed publish
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The deterministic gensym-scope digest for compiling a module: a hash
/// of its name and source text. Including the name keeps two modules
/// with identical sources from freshening identical (colliding) names.
fn module_fresh_digest(name: Symbol, source: &str) -> u64 {
    let mut bytes = Vec::with_capacity(source.len() + 16);
    name.with_str(|s| bytes.extend_from_slice(s.as_bytes()));
    bytes.push(0);
    bytes.extend_from_slice(source.as_bytes());
    lagoon_syntax::fnv1a(&bytes)
}

fn core_form_bindings() -> Vec<(&'static str, CoreFormKind)> {
    use CoreFormKind::*;
    vec![
        ("quote", Quote),
        ("quote-syntax", QuoteSyntax),
        ("if", If),
        ("begin", Begin),
        ("lambda", Lambda),
        ("λ", Lambda),
        ("#%plain-lambda", Lambda),
        ("let-values", LetValues),
        ("letrec-values", LetrecValues),
        ("set!", Set),
        ("#%plain-app", App),
        ("define-values", DefineValues),
        ("define-syntaxes", DefineSyntaxes),
        ("begin-for-syntax", BeginForSyntax),
        ("#%provide", Provide),
        ("#%require", Require),
        ("#%plain-module-begin", PlainModuleBegin),
    ]
}

impl ModuleRegistry {
    /// Bootstraps a registry: binds the base environment (core forms,
    /// primitives, surface macros), compiles the hosted prelude, and
    /// prepares per-engine base instances.
    ///
    /// # Panics
    ///
    /// Panics if the built-in prelude fails to compile — a Lagoon bug.
    /// (This is deterministic init-time code, exercised by every test, so
    /// the expects below are deliberate rather than error-converted.)
    #[allow(clippy::expect_used)]
    pub fn new() -> Rc<ModuleRegistry> {
        // Registry bootstrap freshens names (pattern-variable markers,
        // prelude alpha-renaming) inside a deterministic gensym scope
        // keyed on the prelude source: every registry — across threads
        // and across processes — builds a base environment with the
        // *same* global names, which is what lets parallel build
        // workers exchange `.lagc` artifacts (the artifact's
        // env-digest check) and keeps those artifacts byte-identical
        // to a serial build's.
        let _fresh = lagoon_syntax::fresh_scope(lagoon_syntax::fnv1a(
            crate::prelude::PRELUDE_SOURCE.as_bytes(),
        ));
        let table = Rc::new(BindingTable::new());

        // 1. core forms at the empty scope set (the base environment)
        for (name, kind) in core_form_bindings() {
            table.bind(Symbol::intern(name), ScopeSet::new(), Binding::Core(kind));
        }
        // 2. primitives and phase-1 natives as base variables
        let phase1_values = crate::stxparse::phase1_natives();
        for (name, _) in &phase1_values {
            table.bind(*name, ScopeSet::new(), Binding::Variable(*name));
        }
        // 3. surface macros
        for (name, mac) in crate::prelude::surface_macros() {
            table.bind(Symbol::intern(name), ScopeSet::new(), Binding::Native(mac));
        }

        let registry = Rc::new(ModuleRegistry {
            table: table.clone(),
            phase1_base: RefCell::new(Env::root()),
            sources: RefCell::new(HashMap::new()),
            compiled: RefCell::new(HashMap::new()),
            languages: RefCell::new(HashMap::new()),
            compiling: RefCell::new(HashSet::new()),
            interp_base: RefCell::new(Env::root()),
            vm_base: RefCell::new(HashMap::new()),
            instances_interp: RefCell::new(HashMap::new()),
            instances_vm: RefCell::new(HashMap::new()),
            instantiating: RefCell::new(HashSet::new()),
            self_ref: RefCell::new(std::rc::Weak::new()),
            store_dir: RefCell::new(None),
            loader: RefCell::new(None),
            rehydrators: RefCell::new(HashMap::new()),
            artifact_digests: RefCell::new(HashMap::new()),
            env_digest: Cell::new(0),
        });
        *registry.self_ref.borrow_mut() = Rc::downgrade(&registry);

        // 4. compile the hosted prelude with a minimal phase-1 env
        let phase1_tmp = Env::root();
        phase1_tmp.install(phase1_values.iter().cloned());
        *registry.phase1_base.borrow_mut() = phase1_tmp.clone();
        let exp = Expander::new(
            table.clone(),
            &phase1_tmp,
            Symbol::intern("lagoon/prelude"),
            Rc::downgrade(&registry),
        );
        let body = lagoon_syntax::read_all(crate::prelude::PRELUDE_SOURCE, "lagoon/prelude")
            .expect("prelude parses");
        let scoped: Vec<Syntax> = body.iter().map(|f| f.add_scope(exp.module_scope)).collect();
        let core = exp.expand_module_forms(scoped).expect("prelude expands");
        let forms: Vec<CoreForm> = core
            .iter()
            .map(parse_form)
            .collect::<Result<_, _>>()
            .expect("prelude parses to core forms");

        // 5. publish the prelude's provides into the base environment
        for item in exp.provides.borrow().iter() {
            let binding = table
                .resolve(&item.internal)
                .expect("prelude provide resolves")
                .expect("prelude provide is bound");
            table.bind(item.external, ScopeSet::new(), binding);
        }

        // 6. per-engine base instances
        let interp_base = Env::root();
        interp_base.install(phase1_values.iter().cloned());
        Interp
            .eval_forms(&forms, &interp_base)
            .expect("prelude evaluates (interp)");
        *registry.interp_base.borrow_mut() = interp_base.clone();

        let code = Compiler::compile_module(&forms).expect("prelude compiles");
        let value_map: HashMap<Symbol, Value> = phase1_values.iter().cloned().collect();
        let (_, globals) = Vm
            .run_module(&code, |name| value_map.get(&name).cloned())
            .expect("prelude evaluates (vm)");
        let mut vm_base = value_map;
        vm_base.extend(globals.snapshot());

        // 6.5 the compiled store re-interns symbol names on load, but the
        // prelude's globals are alpha-renamed gensyms that interning cannot
        // reach; alias each such global under its interned twin so decoded
        // bytecode resolves the same base environment, and digest the
        // resulting name set so artifacts compiled against a different
        // base read as stale.
        let twins: Vec<(Symbol, Symbol)> = vm_base
            .keys()
            .filter_map(|sym| {
                let interned = sym.with_str(Symbol::intern);
                (interned != *sym).then_some((*sym, interned))
            })
            .collect();
        for (orig, twin) in &twins {
            if let Some(v) = vm_base.get(orig).cloned() {
                vm_base.insert(*twin, v);
            }
            if let Some(v) = interp_base.lookup(*orig) {
                interp_base.define(*twin, v);
            }
        }
        // as_str (allocating) is intentional: the digest input needs
        // owned, sortable strings regardless
        let mut names: Vec<String> = vm_base.keys().map(|s| s.as_str()).collect();
        names.sort();
        names.dedup();
        let mut digest_input = Vec::new();
        for n in &names {
            digest_input.extend_from_slice(n.as_bytes());
            digest_input.push(0);
        }
        registry.env_digest.set(lagoon_syntax::fnv1a(&digest_input));
        *registry.vm_base.borrow_mut() = vm_base;

        // 7. the real phase-1 base: primitives + natives over the interp
        //    base (so transformers can call prelude functions)
        let phase1_base = Env::child(&interp_base);
        phase1_base.install(phase1_values);
        *registry.phase1_base.borrow_mut() = phase1_base;

        // 8. the base language itself
        registry.register_language(Language {
            name: Symbol::intern("lagoon"),
            exports: Vec::new(), // the base environment is ambient
            values: HashMap::new(),
        });

        registry
    }

    fn me(&self) -> std::rc::Weak<ModuleRegistry> {
        self.self_ref.borrow().clone()
    }

    /// Registers (or replaces) a module's source text.
    pub fn add_module(&self, name: &str, source: &str) {
        let name = Symbol::intern(name);
        self.sources.borrow_mut().insert(name, source.to_owned());
        self.compiled.borrow_mut().remove(&name);
        self.instances_interp.borrow_mut().remove(&name);
        self.instances_vm.borrow_mut().remove(&name);
    }

    /// Removes a module entirely: its source, compiled form, instances,
    /// and artifact-digest record (the on-disk artifact, if any, is left
    /// alone). The evaluation daemon uses this to drop per-request
    /// scratch modules so a long-lived worker's registry does not grow
    /// without bound.
    pub fn remove_module(&self, name: &str) {
        let name = Symbol::intern(name);
        self.sources.borrow_mut().remove(&name);
        self.compiled.borrow_mut().remove(&name);
        self.instances_interp.borrow_mut().remove(&name);
        self.instances_vm.borrow_mut().remove(&name);
        self.artifact_digests.borrow_mut().remove(&name);
    }

    /// Drops all cached module instances (compiled modules are kept).
    /// Benchmarks use this to re-run a module's body from scratch.
    pub fn reset_instances(&self) {
        self.instances_interp.borrow_mut().clear();
        self.instances_vm.borrow_mut().clear();
    }

    /// A cheap fingerprint of the registry's *persistent* contents:
    /// registered sources, compiled modules, and languages. The daemon
    /// compares it across a request — when unchanged (the request only
    /// touched inline scratch modules, which `remove_module` already
    /// dropped), everything the request interned or bound is garbage,
    /// and the worker can truncate its symbol epoch and sweep the
    /// binding table. When it changed (the request warmed a new named
    /// module), the worker skips reclamation for that request; growth
    /// then converges to the named-module working set.
    pub fn persistent_footprint(&self) -> (usize, usize, usize) {
        (
            self.sources.borrow().len(),
            self.compiled.borrow().len(),
            self.languages.borrow().len(),
        )
    }

    /// Sweeps binding-table entries created by a discarded request
    /// world (see [`BindingTable::sweep`]); returns the number removed.
    /// Callers truncate the symbol epoch *first* so dead-symbol checks
    /// observe the truncation.
    pub fn sweep_ephemeral(&self, scope_watermark: u32) -> usize {
        self.table.sweep(scope_watermark)
    }

    /// Registers a language (a bundle of bindings for `#lang` lines).
    pub fn register_language(&self, lang: Language) {
        self.languages.borrow_mut().insert(lang.name, Rc::new(lang));
    }

    // ----- the compiled-module store -----

    /// Points the registry at a directory of `.lagc` artifacts, or
    /// disables the store with `None` (the default). See [`store`].
    pub fn set_store_dir(&self, dir: Option<PathBuf>) {
        *self.store_dir.borrow_mut() = dir;
    }

    /// Installs a lazy source resolver: when a required module has no
    /// registered source, the loader is consulted and its result
    /// memoized. Because `require` triggers compilation *during
    /// expansion*, this resolves macro-generated requires that no
    /// pre-scan of the source text could have seen.
    pub fn set_loader(&self, f: impl Fn(Symbol) -> Option<String> + 'static) {
        *self.loader.borrow_mut() = Some(Box::new(f));
    }

    /// Registers a rehydrator for persisted native-transformer exports
    /// carrying recipe tag `tag` (see
    /// [`NativeMacro::recipe`](crate::binding::NativeMacro::recipe)).
    pub fn register_rehydrator(
        &self,
        tag: &str,
        f: impl Fn(&Datum) -> Option<Rc<NativeMacro>> + 'static,
    ) {
        self.rehydrators
            .borrow_mut()
            .insert(Symbol::intern(tag), Rc::new(f));
    }

    /// Drops compiled modules and instances (sources, languages, and the
    /// binding table survive). The next `run` re-resolves every module —
    /// through the compiled store, when one is configured.
    pub fn reset_compiled(&self) {
        self.compiled.borrow_mut().clear();
        self.instances_interp.borrow_mut().clear();
        self.instances_vm.borrow_mut().clear();
    }

    /// The module's source text, consulting the lazy loader on a miss.
    fn source_of(&self, name: Symbol) -> Option<String> {
        if let Some(s) = self.sources.borrow().get(&name) {
            return Some(s.clone());
        }
        let loaded = {
            let loader = self.loader.borrow();
            loader.as_ref().and_then(|l| l(name))
        }?;
        self.sources.borrow_mut().insert(name, loaded.clone());
        Some(loaded)
    }

    /// Attempts to satisfy `compile(name)` from the on-disk store.
    ///
    /// # Errors
    ///
    /// Propagates dependency compilation failures; every *artifact*
    /// problem (corrupt bytes, stale digests) degrades to a cache miss
    /// with a diagnostic event, never an error or a panic.
    fn try_load_cached(&self, name: Symbol) -> Result<CacheOutcome, RtError> {
        use lagoon_diag::CacheStatus;
        let quiet = CacheOutcome::Miss { reported: false };
        let Some(dir) = self.store_dir.borrow().clone() else {
            return Ok(quiet);
        };
        if !cacheable_name(name) {
            return Ok(quiet);
        }
        let Ok(bytes) = std::fs::read(artifact_path(&dir, name)) else {
            return Ok(quiet);
        };
        let _t = lagoon_diag::time(lagoon_diag::Phase::Load, name);
        let stale = |detail: String| {
            lagoon_diag::cache_event(name, CacheStatus::Stale, detail);
            Ok(CacheOutcome::Miss { reported: true })
        };
        let rehydrators = self.rehydrators.borrow().clone();
        let artifact = match store::decode(&bytes, &|tag, datum| {
            rehydrators.get(&tag).and_then(|f| f(datum))
        }) {
            Ok(a) => a,
            Err(store::DecodeError::Version { found }) => {
                return stale(format!("format version {found}"));
            }
            Err(store::DecodeError::Corrupt(e)) => {
                lagoon_diag::cache_event(name, CacheStatus::Corrupt, e.to_string());
                return Ok(CacheOutcome::Miss { reported: true });
            }
        };
        if artifact.name != name {
            return stale(format!("artifact names module {}", artifact.name));
        }
        if artifact.peephole != lagoon_vm::peephole::enabled() {
            return stale(format!(
                "compiled with peephole {}, session runs with it {}",
                if artifact.peephole { "on" } else { "off" },
                if lagoon_vm::peephole::enabled() {
                    "on"
                } else {
                    "off"
                },
            ));
        }
        if artifact.env_digest != self.env_digest.get() {
            return stale("base environment changed".to_owned());
        }
        let Some(source) = self.source_of(name) else {
            return stale("module source unavailable".to_owned());
        };
        if artifact.source_digest != store::source_digest(&source) {
            return stale("source changed".to_owned());
        }
        // dependencies: registered languages by constant digest; module
        // dependencies must themselves have come from the store, with the
        // digest this artifact was compiled against (a freshly compiled
        // dep uses live gensyms a decoded importer cannot reference)
        for (dep, recorded) in &artifact.dep_digests {
            if self.languages.borrow().contains_key(dep) {
                if *recorded != store::language_digest(*dep) {
                    return stale(format!("language {dep} changed"));
                }
                continue;
            }
            self.compile(*dep)?;
            match self.artifact_digests.borrow().get(dep) {
                Some((digest, true)) if digest == recorded => {}
                _ => return stale(format!("dependency {dep} recompiled")),
            }
        }
        // collision guard: decoding re-interns gensym names, so a global
        // this module defines must not collide with any name visible to
        // it — the base environment or a dependency's exports
        let mut visible: HashSet<Symbol> = self
            .vm_base
            .borrow()
            .keys()
            .map(|s| s.with_str(Symbol::intern))
            .collect();
        for (dep, _) in &artifact.dep_digests {
            if let Some(language) = self.languages.borrow().get(dep).cloned() {
                visible.extend(language.values.keys().map(|s| s.with_str(Symbol::intern)));
                continue;
            }
            if let Some(dep_compiled) = self.compiled.borrow().get(dep) {
                for (_, binding) in &dep_compiled.exports {
                    if let Binding::Variable(rt) = binding {
                        visible.insert(*rt);
                    }
                }
            }
        }
        for idx in &artifact.code.defined {
            if let Some(sym) = artifact.code.global_names.get(*idx as usize) {
                if visible.contains(sym) {
                    return stale(format!("symbol collision on {sym}"));
                }
            }
        }
        self.artifact_digests
            .borrow_mut()
            .insert(name, (store::artifact_digest(&bytes), true));
        lagoon_diag::cache_event(name, CacheStatus::Hit, format!("{} bytes", bytes.len()));
        Ok(CacheOutcome::Hit(Rc::new(artifact.into_compiled())))
    }

    /// Best-effort write of a fresh compile's artifact. Emits this
    /// compile's cache event unless the load side already `reported` why
    /// the module had to be recompiled. Write failures only disable
    /// caching — they never fail the compile.
    fn store_artifact(&self, compiled: &CompiledModule, reported: bool) {
        use lagoon_diag::CacheStatus;
        let miss = |detail: String| {
            if !reported {
                lagoon_diag::cache_event(compiled.name, CacheStatus::Miss, detail);
            }
        };
        let Some(dir) = self.store_dir.borrow().clone() else {
            return;
        };
        let name = compiled.name;
        if !cacheable_name(name) {
            miss("not cached: unstorable module name".to_owned());
            return;
        }
        // this compile supersedes any digest recorded for an older artifact
        self.artifact_digests.borrow_mut().remove(&name);
        let mut dep_digests = Vec::with_capacity(compiled.requires.len());
        for dep in &compiled.requires {
            if self.languages.borrow().contains_key(dep) {
                dep_digests.push((*dep, store::language_digest(*dep)));
                continue;
            }
            match self.artifact_digests.borrow().get(dep) {
                Some((digest, _)) => dep_digests.push((*dep, *digest)),
                None => {
                    miss(format!("not cached: dependency {dep} is uncacheable"));
                    let _ = std::fs::remove_file(artifact_path(&dir, name));
                    return;
                }
            }
        }
        let Some(source) = self.source_of(name) else {
            miss("not cached: module source unavailable".to_owned());
            return;
        };
        let encoded = store::encode(
            compiled,
            self.env_digest.get(),
            store::source_digest(&source),
            &dep_digests,
        );
        let bytes = match encoded {
            Ok(b) => b,
            Err(e) => {
                miss(format!("not cached: {e}"));
                let _ = std::fs::remove_file(artifact_path(&dir, name));
                return;
            }
        };
        let path = artifact_path(&dir, name);
        match std::fs::create_dir_all(&dir).and_then(|()| write_atomically(&path, &bytes)) {
            Ok(()) => {
                self.artifact_digests
                    .borrow_mut()
                    .insert(name, (store::artifact_digest(&bytes), false));
                miss("compiled and stored".to_owned());
            }
            Err(e) => miss(format!("not cached: {e}")),
        }
    }

    /// The compiled form of `name`, compiling it (and its dependencies)
    /// on demand.
    ///
    /// # Errors
    ///
    /// Returns errors for unknown modules, cyclic requires, and any
    /// read/expand/typecheck/compile failure.
    pub fn compile(&self, name: Symbol) -> Result<Rc<CompiledModule>, RtError> {
        if let Some(m) = self.compiled.borrow().get(&name) {
            return Ok(m.clone());
        }
        if !self.compiling.borrow_mut().insert(name) {
            return Err(RtError::user(format!(
                "cycle in module requires involving {name}"
            )));
        }
        let result: Result<Rc<CompiledModule>, RtError> = (|| match self.try_load_cached(name)? {
            CacheOutcome::Hit(m) => Ok(m),
            CacheOutcome::Miss { reported } => {
                let compiled = self.compile_inner(name)?;
                self.store_artifact(&compiled, reported);
                Ok(compiled)
            }
        })();
        self.compiling.borrow_mut().remove(&name);
        let compiled = result?;
        self.compiled.borrow_mut().insert(name, compiled.clone());
        Ok(compiled)
    }

    fn compile_inner(&self, name: Symbol) -> Result<Rc<CompiledModule>, RtError> {
        let source = self
            .source_of(name)
            .ok_or_else(|| RtError::user(format!("unknown module: {name}")))?;
        // Freshened names (expander renames, macro gensyms, typed
        // defensive wrappers) are a pure function of the module's name
        // and source text: any worker — thread or process — compiling
        // this module emits the same names, so parallel builds produce
        // byte-identical artifacts and names from different modules
        // cannot collide in serialized form. Scopes nest, so compiling
        // a dependency mid-expansion restores this module's counter.
        let _fresh = lagoon_syntax::fresh_scope(module_fresh_digest(name, &source));
        let module = {
            let _t = lagoon_diag::time(lagoon_diag::Phase::Read, name);
            let (module, read_errors) = name
                .with_str(|n| read_module_recover(&source, n))
                .map_err(|e| RtError::user(e.to_string()).with_span(e.span))?;
            if !read_errors.is_empty() {
                // the reader resynchronized at top-level form boundaries,
                // so report every problem in one go instead of the first
                let mut msg = if read_errors.len() == 1 {
                    read_errors[0].message.clone()
                } else {
                    format!("{} read errors in module {name}", read_errors.len())
                };
                if read_errors.len() > 1 {
                    for e in &read_errors {
                        msg.push_str(&format!("\n  {e}"));
                    }
                }
                return Err(RtError::user(msg).with_span(read_errors[0].span));
            }
            module
        };

        let exp = Expander::new(
            self.table.clone(),
            &self.phase1_base.borrow(),
            name,
            self.me(),
        );

        // import the language's bindings at the module scope
        self.import_language(&exp, module.lang, Span::synthetic())?;

        // wrap the body in (#%module-begin …) and expand
        let msc = exp.module_scope;
        let mut mb_items =
            vec![Syntax::ident(Symbol::intern("#%module-begin"), Span::synthetic()).add_scope(msc)];
        mb_items.extend(module.body.iter().map(|f| f.add_scope(msc)));
        let mb = Syntax::list(mb_items, Span::synthetic());
        let core = {
            let _t = lagoon_diag::time(lagoon_diag::Phase::Expand, name);
            exp.expand_module_begin(mb)?
        };

        let expanded: Vec<Syntax> = core
            .as_list()
            .map(|items| items[1..].to_vec())
            .unwrap_or_default();
        let (forms, code) = {
            let _t = lagoon_diag::time(lagoon_diag::Phase::Compile, name);
            let forms: Vec<CoreForm> = expanded.iter().map(parse_form).collect::<Result<_, _>>()?;
            let code = Compiler::compile_module(&forms)?;
            let peep = lagoon_vm::peephole::last_stats();
            if peep.fused > 0 {
                lagoon_diag::count("peephole-fused", name, peep.fused);
                lagoon_diag::count("peephole-removed", name, peep.removed);
            }
            (forms, code)
        };

        // resolve provides into exports
        let mut exports: Vec<(Symbol, Binding)> = exp.extra_exports.borrow().clone();
        for item in exp.provides.borrow().iter() {
            let binding = self.table.resolve(&item.internal)?.ok_or_else(|| {
                RtError::new(
                    Kind::Unbound,
                    format!("provide: unbound identifier {}", item.internal),
                )
                .with_span(item.internal.span())
            })?;
            exports.push((item.external, binding));
        }

        let requires = exp.requires.borrow().clone();
        Ok(Rc::new(CompiledModule {
            name,
            lang: module.lang,
            exports,
            expanded,
            forms,
            code,
            requires,
            persisted: exp.persisted(),
        }))
    }

    fn import_language(&self, exp: &Expander, lang: Symbol, span: Span) -> Result<(), RtError> {
        let language = self.languages.borrow().get(&lang).cloned();
        if let Some(language) = language {
            let msc = ScopeSet::new().with(exp.module_scope);
            for (name, binding) in &language.exports {
                exp.table.bind(*name, msc.clone(), binding.clone());
            }
            // language-provided native values are runtime dependencies
            if !language.values.is_empty() {
                exp.requires.borrow_mut().push(lang);
            }
            return Ok(());
        }
        // a module-backed language: import its exports
        if self.source_of(lang).is_some() {
            return self.import_into(exp, lang, span);
        }
        Err(RtError::user(format!("unknown language: {lang}")).with_span(span))
    }

    /// Imports module `dep`'s exports into the module being expanded by
    /// `exp`: binds the exports at the module scope, replays persisted
    /// compile-time declarations, and records the runtime dependency.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors for `dep`.
    pub fn import_into(&self, exp: &Expander, dep: Symbol, span: Span) -> Result<(), RtError> {
        let compiled = self.compile(dep).map_err(|e| e.with_span(span))?;
        let msc = ScopeSet::new().with(exp.module_scope);
        for (name, binding) in &compiled.exports {
            exp.table.bind(*name, msc.clone(), binding.clone());
        }
        exp.replay(&compiled.persisted);
        let mut requires = exp.requires.borrow_mut();
        if !requires.contains(&dep) {
            requires.push(dep);
        }
        Ok(())
    }

    // ----- instantiation -----

    /// Runs module `name` on the chosen engine, returning the value of the
    /// last top-level expression. Instances are cached per engine;
    /// dependencies are instantiated first.
    ///
    /// # Errors
    ///
    /// Propagates compilation and runtime errors.
    pub fn run(&self, name: &str, engine: EngineKind) -> Result<Value, RtError> {
        let name = Symbol::intern(name);
        match engine {
            EngineKind::Interp => self.instantiate_interp(name).map(|(_, v)| v),
            EngineKind::Vm => self.instantiate_vm(name).map(|(_, v)| v),
        }
    }

    fn guard_instantiation(&self, name: Symbol) -> Result<(), RtError> {
        if !self.instantiating.borrow_mut().insert(name) {
            return Err(RtError::user(format!(
                "cycle while instantiating module {name}"
            )));
        }
        Ok(())
    }

    fn instantiate_interp(&self, name: Symbol) -> Result<(Rc<Env>, Value), RtError> {
        if let Some((env, v)) = self.instances_interp.borrow().get(&name) {
            return Ok((env.clone(), v.clone()));
        }
        let compiled = self.compile(name)?;
        self.guard_instantiation(name)?;
        let result = (|| -> Result<(Rc<Env>, Value), RtError> {
            let env = Env::child(&self.interp_base.borrow());
            for dep in &compiled.requires {
                // a language registered with native values?
                if let Some(language) = self.languages.borrow().get(dep).cloned() {
                    env.install(language.values.iter().map(|(k, v)| (*k, v.clone())));
                    continue;
                }
                let (dep_env, _) = self.instantiate_interp(*dep)?;
                let dep_compiled = self.compile(*dep)?;
                for (_, binding) in &dep_compiled.exports {
                    if let Binding::Variable(rt) = binding {
                        if let Some(v) = dep_env.lookup(*rt) {
                            env.define(*rt, v);
                        }
                    }
                }
            }
            let value = Interp.eval_forms(&compiled.forms, &env)?;
            Ok((env, value))
        })();
        self.instantiating.borrow_mut().remove(&name);
        let (env, value) = result?;
        self.instances_interp
            .borrow_mut()
            .insert(name, (env.clone(), value.clone()));
        Ok((env, value))
    }

    fn instantiate_vm(&self, name: Symbol) -> Result<(Rc<Globals>, Value), RtError> {
        if let Some((g, v)) = self.instances_vm.borrow().get(&name) {
            return Ok((g.clone(), v.clone()));
        }
        let compiled = self.compile(name)?;
        self.guard_instantiation(name)?;
        let result = (|| -> Result<(Rc<Globals>, Value), RtError> {
            // gather import values: dependency exports + language natives
            let mut imports: HashMap<Symbol, Value> = HashMap::new();
            for dep in &compiled.requires {
                if let Some(language) = self.languages.borrow().get(dep).cloned() {
                    imports.extend(language.values.iter().map(|(k, v)| (*k, v.clone())));
                    continue;
                }
                let (dep_globals, _) = self.instantiate_vm(*dep)?;
                let dep_compiled = self.compile(*dep)?;
                for (_, binding) in &dep_compiled.exports {
                    if let Binding::Variable(rt) = binding {
                        if let Some(v) = dep_globals.get(*rt) {
                            imports.insert(*rt, v);
                        }
                    }
                }
            }
            let vm_base = self.vm_base.borrow();
            let (value, globals) = Vm.run_module(&compiled.code, |sym| {
                imports
                    .get(&sym)
                    .cloned()
                    .or_else(|| vm_base.get(&sym).cloned())
            })?;
            Ok((globals, value))
        })();
        self.instantiating.borrow_mut().remove(&name);
        let (globals, value) = result?;
        self.instances_vm
            .borrow_mut()
            .insert(name, (globals.clone(), value.clone()));
        Ok((globals, value))
    }

    /// Looks up an exported value from an instantiated module.
    ///
    /// # Errors
    ///
    /// Returns an error if the module does not export `export` as a
    /// runtime variable.
    pub fn exported_value(
        &self,
        module: &str,
        export: &str,
        engine: EngineKind,
    ) -> Result<Value, RtError> {
        let name = Symbol::intern(module);
        let export = Symbol::intern(export);
        let compiled = self.compile(name)?;
        let contracted_alias = Symbol::intern(&format!("{export}#contracted"));
        let rt = compiled
            .exports
            .iter()
            .find_map(|(ext, b)| match (ext, b) {
                (e, Binding::Variable(rt)) if *e == export => Some(*rt),
                _ => None,
            })
            .or_else(|| {
                // typed modules export an indirection macro under the
                // plain name; Rust embedders are untyped clients and get
                // the contract-protected variant
                compiled.exports.iter().find_map(|(ext, b)| match (ext, b) {
                    (e, Binding::Variable(rt)) if *e == contracted_alias => Some(*rt),
                    _ => None,
                })
            })
            .ok_or_else(|| {
                RtError::user(format!(
                    "{module} does not export a variable named {export}"
                ))
            })?;
        match engine {
            EngineKind::Interp => {
                let (env, _) = self.instantiate_interp(name)?;
                env.lookup(rt).ok_or_else(|| RtError::unbound(rt))
            }
            EngineKind::Vm => {
                let (globals, _) = self.instantiate_vm(name)?;
                globals.get(rt).ok_or_else(|| RtError::unbound(rt))
            }
        }
    }

    /// The expanded body of a module (compiling it if needed) — for tests
    /// and tools that inspect core forms.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn expanded_body(&self, module: &str) -> Result<Vec<Syntax>, RtError> {
        Ok(self.compile(Symbol::intern(module))?.expanded.clone())
    }
}
