//! Helpers for constructing core syntax from Rust.
//!
//! Native transformers (the compiled-library analogue of Racket macros)
//! build their output with these combinators. Identifiers built with
//! [`id`] carry no scopes, so they resolve to the base environment — the
//! right default for references to primitives and core forms.

use lagoon_syntax::{Datum, Span, Symbol, Syntax};

/// A scopeless identifier (resolves against the base environment).
pub fn id(name: &str) -> Syntax {
    Syntax::ident(Symbol::intern(name), Span::synthetic())
}

/// An identifier for an existing symbol.
pub fn id_sym(sym: Symbol) -> Syntax {
    Syntax::ident(sym, Span::synthetic())
}

/// A list form.
pub fn lst(items: Vec<Syntax>) -> Syntax {
    Syntax::list(items, Span::synthetic())
}

/// `(#%plain-app f args…)`.
pub fn app(f: Syntax, args: Vec<Syntax>) -> Syntax {
    let mut items = vec![id("#%plain-app"), f];
    items.extend(args);
    lst(items)
}

/// `(quote datum)`.
pub fn quote_datum(d: Datum) -> Syntax {
    lst(vec![
        id("quote"),
        Syntax::from_datum(&d, Span::synthetic(), &Default::default()),
    ])
}

/// `(quote sym)`.
pub fn quote_sym(sym: Symbol) -> Syntax {
    lst(vec![id("quote"), id_sym(sym)])
}

/// `(quote-syntax stx)`.
pub fn quote_syntax(stx: Syntax) -> Syntax {
    lst(vec![id("quote-syntax"), stx])
}

/// `(let-values ([(name) rhs]) body…)` (core form).
pub fn let1(name: Symbol, rhs: Syntax, body: Vec<Syntax>) -> Syntax {
    let clause = lst(vec![lst(vec![id_sym(name)]), rhs]);
    let mut items = vec![id("let-values"), lst(vec![clause])];
    items.extend(body);
    lst(items)
}

/// `(if c t e)`.
pub fn if3(c: Syntax, t: Syntax, e: Syntax) -> Syntax {
    lst(vec![id("if"), c, t, e])
}

/// `(begin e…)`.
pub fn begin(mut exprs: Vec<Syntax>) -> Syntax {
    if exprs.len() == 1 {
        if let Some(only) = exprs.pop() {
            return only;
        }
    }
    let mut items = vec![id("begin")];
    items.extend(exprs);
    lst(items)
}

/// `(#%plain-lambda (formals…) body…)`.
pub fn lambda(formals: Vec<Symbol>, body: Vec<Syntax>) -> Syntax {
    let mut items = vec![
        id("#%plain-lambda"),
        lst(formals.into_iter().map(id_sym).collect()),
    ];
    items.extend(body);
    lst(items)
}

/// An integer literal.
pub fn int(n: i64) -> Syntax {
    Syntax::atom(Datum::Int(n), Span::synthetic())
}

/// A string literal.
pub fn string(s: &str) -> Syntax {
    Syntax::atom(Datum::string(s), Span::synthetic())
}

/// True when `stx` is a list whose head is the identifier `name`
/// (symbol comparison — used on fully-expanded core syntax).
pub fn headed_by(stx: &Syntax, name: &str) -> bool {
    stx.as_list()
        .and_then(|items| items.first())
        .and_then(Syntax::sym)
        .map(|s| s == Symbol::intern(name))
        .unwrap_or(false)
}

/// The elements of a list form headed by `name`, if it is one.
pub fn match_head<'a>(stx: &'a Syntax, name: &str) -> Option<&'a [Syntax]> {
    let items = stx.as_list()?;
    if items.first()?.sym()? == Symbol::intern(name) {
        Some(items)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        assert_eq!(
            app(id("f"), vec![int(1)]).to_datum().to_string(),
            "(#%plain-app f 1)"
        );
        assert_eq!(
            quote_sym(Symbol::from("x")).to_datum().to_string(),
            "(quote x)"
        );
        assert_eq!(
            let1(Symbol::from("t"), int(1), vec![id("t")])
                .to_datum()
                .to_string(),
            "(let-values (((t) 1)) t)"
        );
        assert_eq!(begin(vec![int(1)]).to_datum().to_string(), "1");
        assert_eq!(
            begin(vec![int(1), int(2)]).to_datum().to_string(),
            "(begin 1 2)"
        );
        assert_eq!(
            lambda(vec![Symbol::from("x")], vec![id("x")])
                .to_datum()
                .to_string(),
            "(#%plain-lambda (x) x)"
        );
    }

    #[test]
    fn head_matching() {
        let s = app(id("f"), vec![]);
        assert!(headed_by(&s, "#%plain-app"));
        assert!(!headed_by(&s, "quote"));
        assert_eq!(match_head(&s, "#%plain-app").unwrap().len(), 2);
        assert!(match_head(&int(3), "quote").is_none());
    }
}
