//! Binding tables and identifier resolution.
//!
//! The expander records, for every binding form it encounters, an entry
//! mapping *(symbol, scope set)* to a [`Binding`]. Resolving a reference
//! finds the candidate entries for its symbol whose scope sets are subsets
//! of the reference's scope set and picks the largest — the sets-of-scopes
//! hygiene discipline.
//!
//! Resolution also implements `free-identifier=?` (paper §2.2): two
//! identifiers are `free-identifier=?` when they resolve to the same
//! binding.

use lagoon_runtime::{RtError, Value};
use lagoon_syntax::{ScopeSet, Symbol, Syntax};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// The core forms the expander itself understands (paper figure 1 plus
/// the handful of structural forms every Racket-family expander needs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreFormKind {
    /// `(quote datum)`.
    Quote,
    /// `(quote-syntax stx)`.
    QuoteSyntax,
    /// `(if c t e)`.
    If,
    /// `(begin e …)`.
    Begin,
    /// `(#%plain-lambda formals body …)` and surface `lambda`/`λ`.
    Lambda,
    /// `(let-values ([(x) e] …) body …)`.
    LetValues,
    /// `(letrec-values ([(x) e] …) body …)`.
    LetrecValues,
    /// `(set! x e)`.
    Set,
    /// `(#%plain-app f e …)`.
    App,
    /// `(define-values (x) e)` — definition contexts only.
    DefineValues,
    /// `(define-syntaxes (x) e)` — definition contexts only.
    DefineSyntaxes,
    /// `(begin-for-syntax e …)` — module level only.
    BeginForSyntax,
    /// `(#%provide spec …)` — module level only.
    Provide,
    /// `(#%require spec …)` — module level only.
    Require,
    /// `(#%plain-module-begin form …)`.
    PlainModuleBegin,
}

impl CoreFormKind {
    /// Stable tag used by the compiled-module store. Order is frozen —
    /// append only (the store's format version covers incompatible
    /// changes).
    pub fn wire_tag(self) -> u8 {
        match self {
            CoreFormKind::Quote => 0,
            CoreFormKind::QuoteSyntax => 1,
            CoreFormKind::If => 2,
            CoreFormKind::Begin => 3,
            CoreFormKind::Lambda => 4,
            CoreFormKind::LetValues => 5,
            CoreFormKind::LetrecValues => 6,
            CoreFormKind::Set => 7,
            CoreFormKind::App => 8,
            CoreFormKind::DefineValues => 9,
            CoreFormKind::DefineSyntaxes => 10,
            CoreFormKind::BeginForSyntax => 11,
            CoreFormKind::Provide => 12,
            CoreFormKind::Require => 13,
            CoreFormKind::PlainModuleBegin => 14,
        }
    }

    /// Inverse of [`CoreFormKind::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<CoreFormKind> {
        Some(match tag {
            0 => CoreFormKind::Quote,
            1 => CoreFormKind::QuoteSyntax,
            2 => CoreFormKind::If,
            3 => CoreFormKind::Begin,
            4 => CoreFormKind::Lambda,
            5 => CoreFormKind::LetValues,
            6 => CoreFormKind::LetrecValues,
            7 => CoreFormKind::Set,
            8 => CoreFormKind::App,
            9 => CoreFormKind::DefineValues,
            10 => CoreFormKind::DefineSyntaxes,
            11 => CoreFormKind::BeginForSyntax,
            12 => CoreFormKind::Provide,
            13 => CoreFormKind::Require,
            14 => CoreFormKind::PlainModuleBegin,
            _ => return None,
        })
    }
}

/// What a native (Rust-implemented) transformer returns.
pub enum Expanded {
    /// Surface syntax the expander should keep expanding.
    Surface(Syntax),
    /// Fully-expanded core syntax; the expander takes it as-is.
    Core(Syntax),
}

/// Expansion context passed to native transformers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpandCtx {
    /// Ordinary expression position.
    Expression,
    /// Module-body definition context.
    ModuleBegin,
    /// Internal definition context (lambda/let body).
    InternalDefine,
}

/// The Rust signature of a native transformer. Native transformers are
/// the compiled-library analogue of Racket macros: they receive the whole
/// use-site form plus access to the expander (for `local-expand`, fresh
/// scopes, binding installation, …).
pub type NativeFn =
    dyn Fn(&crate::expander::Expander, Syntax, ExpandCtx) -> Result<Expanded, RtError>;

/// A named native transformer.
pub struct NativeMacro {
    /// Diagnostic name.
    pub name: Symbol,
    /// The transformer.
    pub expand: Box<NativeFn>,
    /// Serialization recipe for the compiled-module store: a registered
    /// rehydrator tag plus the datum it reconstructs this transformer
    /// from. `None` means the transformer (and so any module exporting
    /// it) is uncacheable.
    pub recipe: Option<(Symbol, lagoon_syntax::Datum)>,
}

impl fmt::Debug for NativeMacro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#<native-macro:{}>", self.name)
    }
}

/// What an identifier can resolve to.
#[derive(Clone, Debug)]
pub enum Binding {
    /// A runtime variable, under its globally unique runtime name.
    Variable(Symbol),
    /// A syntax-parse pattern variable: runtime name + ellipsis depth.
    PatternVar(Symbol, usize),
    /// A core form.
    Core(CoreFormKind),
    /// A hosted macro: a phase-1 procedure from syntax to syntax.
    Macro(Rc<Value>),
    /// A native (Rust) transformer.
    Native(Rc<NativeMacro>),
}

impl Binding {
    /// Whether two resolutions denote the same binding
    /// (`free-identifier=?` on resolved identifiers).
    pub fn same(&self, other: &Binding) -> bool {
        match (self, other) {
            (Binding::Variable(a), Binding::Variable(b)) => a == b,
            (Binding::PatternVar(a, _), Binding::PatternVar(b, _)) => a == b,
            (Binding::Core(a), Binding::Core(b)) => a == b,
            (Binding::Macro(a), Binding::Macro(b)) => Rc::ptr_eq(a, b),
            (Binding::Native(a), Binding::Native(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// The per-expansion binding store.
#[derive(Debug, Default)]
pub struct BindingTable {
    entries: RefCell<HashMap<Symbol, Vec<(ScopeSet, Binding)>>>,
}

impl BindingTable {
    /// An empty table.
    pub fn new() -> BindingTable {
        BindingTable::default()
    }

    /// Records that `sym` with exactly `scopes` refers to `binding`.
    pub fn bind(&self, sym: Symbol, scopes: ScopeSet, binding: Binding) {
        let mut entries = self.entries.borrow_mut();
        let bucket = entries.entry(sym).or_default();
        // replace an existing entry for the identical scope set (e.g.
        // redefinition at a REPL-like top level)
        if let Some(slot) = bucket.iter_mut().find(|(ss, _)| *ss == scopes) {
            slot.1 = binding;
            return;
        }
        bucket.push((scopes, binding));
    }

    /// Convenience: binds using an identifier's own symbol and scopes.
    /// Silently ignores non-identifiers (callers check first).
    pub fn bind_id(&self, id: &Syntax, binding: Binding) {
        if let Some(sym) = id.sym() {
            self.bind(sym, id.scopes().clone(), binding);
        }
    }

    /// Number of `(scope set, binding)` entries across all buckets — a
    /// growth gauge for long-lived tables (the daemon's leak tests).
    pub fn entry_count(&self) -> usize {
        self.entries.borrow().values().map(Vec::len).sum()
    }

    /// Sweeps entries belonging to a discarded request world: any entry
    /// whose key symbol is no longer live on this thread (its epoch was
    /// truncated), whose scope set references a scope allocated at or
    /// after `scope_watermark`, or whose binding targets a dead symbol.
    ///
    /// The scope check is sound because a binding table is thread-
    /// private (registries are `Rc`-based): scopes at or above the
    /// watermark that appear *in this table* were necessarily created
    /// by this thread during the swept request. Without the sweep, the
    /// table grows per request even with the interner fixed — e.g.
    /// `import_into` binds dependency exports under a fresh per-request
    /// module scope, keyed by persistent export symbols.
    ///
    /// Returns the number of entries removed.
    pub fn sweep(&self, scope_watermark: u32) -> usize {
        let dead_scopes = |ss: &ScopeSet| ss.iter().any(|sc| sc.id() >= scope_watermark);
        let dead_binding = |b: &Binding| match b {
            Binding::Variable(s) | Binding::PatternVar(s, _) => !s.is_live(),
            Binding::Core(_) | Binding::Macro(_) | Binding::Native(_) => false,
        };
        let mut entries = self.entries.borrow_mut();
        let mut removed = 0;
        entries.retain(|sym, bucket| {
            if !sym.is_live() {
                removed += bucket.len();
                return false;
            }
            bucket.retain(|(ss, b)| {
                let keep = !dead_scopes(ss) && !dead_binding(b);
                if !keep {
                    removed += 1;
                }
                keep
            });
            !bucket.is_empty()
        });
        removed
    }

    /// Resolves a reference: the binding whose scope set is the largest
    /// subset of `id`'s scopes.
    ///
    /// # Errors
    ///
    /// Returns an ambiguity error if two candidate scope sets are maximal
    /// but incomparable.
    pub fn resolve(&self, id: &Syntax) -> Result<Option<Binding>, RtError> {
        let Some(sym) = id.sym() else {
            return Ok(None);
        };
        let entries = self.entries.borrow();
        let Some(bucket) = entries.get(&sym) else {
            return Ok(None);
        };
        let mut best: Option<&(ScopeSet, Binding)> = None;
        for cand in bucket {
            if !cand.0.is_subset(id.scopes()) {
                continue;
            }
            match best {
                None => best = Some(cand),
                Some(b) if b.0.len() < cand.0.len() => best = Some(cand),
                Some(_) => {}
            }
        }
        // ambiguity check: every candidate subset must itself be a subset
        // of the winner
        if let Some((best_ss, _)) = best {
            for cand in bucket {
                if cand.0.is_subset(id.scopes())
                    && !cand.0.is_subset(best_ss)
                    && cand.0.len() == best_ss.len()
                {
                    return Err(
                        RtError::user(format!("{sym}: identifier's binding is ambiguous"))
                            .with_span(id.span()),
                    );
                }
            }
        }
        Ok(best.map(|(_, b)| b.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_syntax::{Scope, Span};

    fn id(name: &str, scopes: &ScopeSet) -> Syntax {
        let mut s = Syntax::ident(Symbol::from(name), Span::synthetic());
        for sc in scopes.iter() {
            s = s.add_scope(sc);
        }
        s
    }

    #[test]
    fn resolves_largest_subset() {
        let t = BindingTable::new();
        let a = Scope::fresh();
        let b = Scope::fresh();
        let outer = ScopeSet::from_scopes(vec![a]);
        let inner = ScopeSet::from_scopes(vec![a, b]);
        t.bind(
            Symbol::from("x"),
            outer.clone(),
            Binding::Variable(Symbol::from("x-outer")),
        );
        t.bind(
            Symbol::from("x"),
            inner.clone(),
            Binding::Variable(Symbol::from("x-inner")),
        );

        // reference with both scopes sees the inner binding
        match t.resolve(&id("x", &inner)).unwrap().unwrap() {
            Binding::Variable(v) => assert_eq!(v.as_str(), "x-inner"),
            _ => panic!(),
        }
        // reference with only the outer scope sees the outer binding
        match t.resolve(&id("x", &outer)).unwrap().unwrap() {
            Binding::Variable(v) => assert_eq!(v.as_str(), "x-outer"),
            _ => panic!(),
        }
    }

    #[test]
    fn unbound_is_none() {
        let t = BindingTable::new();
        assert!(t.resolve(&id("nope", &ScopeSet::new())).unwrap().is_none());
    }

    #[test]
    fn macro_introduction_scope_separates_bindings() {
        // models the hygiene example of paper §2.1: a macro-introduced `i`
        // does not capture the user's `i`
        let t = BindingTable::new();
        let module = Scope::fresh();
        let intro = Scope::fresh();
        let user_scopes = ScopeSet::from_scopes(vec![module]);
        let macro_scopes = ScopeSet::from_scopes(vec![module, intro]);
        t.bind(
            Symbol::from("i"),
            user_scopes.clone(),
            Binding::Variable(Symbol::from("i-user")),
        );
        t.bind(
            Symbol::from("i"),
            macro_scopes.clone(),
            Binding::Variable(Symbol::from("i-macro")),
        );

        match t.resolve(&id("i", &user_scopes)).unwrap().unwrap() {
            Binding::Variable(v) => assert_eq!(v.as_str(), "i-user"),
            _ => panic!(),
        }
        match t.resolve(&id("i", &macro_scopes)).unwrap().unwrap() {
            Binding::Variable(v) => assert_eq!(v.as_str(), "i-macro"),
            _ => panic!(),
        }
    }

    #[test]
    fn ambiguous_resolution_errors() {
        let t = BindingTable::new();
        let a = Scope::fresh();
        let b = Scope::fresh();
        let c = Scope::fresh();
        t.bind(
            Symbol::from("y"),
            ScopeSet::from_scopes(vec![a, b]),
            Binding::Variable(Symbol::from("y1")),
        );
        t.bind(
            Symbol::from("y"),
            ScopeSet::from_scopes(vec![a, c]),
            Binding::Variable(Symbol::from("y2")),
        );
        let both = ScopeSet::from_scopes(vec![a, b, c]);
        assert!(t.resolve(&id("y", &both)).is_err());
    }

    #[test]
    fn rebinding_same_scopes_replaces() {
        let t = BindingTable::new();
        let ss = ScopeSet::from_scopes(vec![Scope::fresh()]);
        t.bind(
            Symbol::from("z"),
            ss.clone(),
            Binding::Variable(Symbol::from("z1")),
        );
        t.bind(
            Symbol::from("z"),
            ss.clone(),
            Binding::Variable(Symbol::from("z2")),
        );
        match t.resolve(&id("z", &ss)).unwrap().unwrap() {
            Binding::Variable(v) => assert_eq!(v.as_str(), "z2"),
            _ => panic!(),
        }
    }

    #[test]
    fn binding_same() {
        let v1 = Binding::Variable(Symbol::from("a"));
        let v2 = Binding::Variable(Symbol::from("a"));
        assert!(v1.same(&v2));
        assert!(!v1.same(&Binding::Variable(Symbol::from("b"))));
        assert!(Binding::Core(CoreFormKind::If).same(&Binding::Core(CoreFormKind::If)));
        assert!(!Binding::Core(CoreFormKind::If).same(&Binding::Core(CoreFormKind::Begin)));
    }
}
