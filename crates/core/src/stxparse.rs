//! `syntax-parse`, `syntax` templates, `with-syntax`, `syntax-rules`, and
//! `define-syntax` — the macro-writing layer (paper §2.1).
//!
//! `syntax-parse` compiles each clause into phase-1 code that calls the
//! runtime matcher ([`crate::template::match_pattern`]); its pattern
//! variables become [`Binding::PatternVar`] bindings scoped to the clause
//! body. A `#'template` form compiles into a call to the runtime
//! instantiator with the template's pattern-variable occurrences replaced
//! by unique markers, so substitution is exact even under shadowing.

use crate::binding::{Binding, Expanded, NativeMacro};
use crate::build::{self, id, id_sym, lst, quote_sym, quote_syntax};
use crate::expander::{syntax_error, Expander};
use crate::template::{match_pattern, pattern_vars};
use lagoon_runtime::prim::primitives;
use lagoon_runtime::value::{Arity, Native};
use lagoon_runtime::{RtError, Value};
use lagoon_syntax::{Datum, Scope, Symbol, SynData, Syntax};
use std::collections::HashMap;
use std::rc::Rc;

/// Builds a native macro.
pub fn native(
    name: &str,
    f: impl Fn(&Expander, Syntax, crate::binding::ExpandCtx) -> Result<Expanded, RtError> + 'static,
) -> Rc<NativeMacro> {
    Rc::new(NativeMacro {
        name: Symbol::intern(name),
        expand: Box::new(f),
        recipe: None,
    })
}

/// Builds a native macro that the compiled-module store can persist:
/// `tag` names a rehydrator registered on the module registry, and
/// `datum` is what that rehydrator rebuilds the transformer from.
pub fn native_with_recipe(
    name: &str,
    tag: &str,
    datum: lagoon_syntax::Datum,
    f: impl Fn(&Expander, Syntax, crate::binding::ExpandCtx) -> Result<Expanded, RtError> + 'static,
) -> Rc<NativeMacro> {
    Rc::new(NativeMacro {
        name: Symbol::intern(name),
        expand: Box::new(f),
        recipe: Some((Symbol::intern(tag), datum)),
    })
}

fn items_of(stx: &Syntax, who: &str) -> Result<Vec<Syntax>, RtError> {
    stx.to_list()
        .ok_or_else(|| syntax_error(format!("{who}: bad syntax"), stx))
}

// ---------------------------------------------------------------------
// templates: (syntax tmpl) and (quasisyntax tmpl)
// ---------------------------------------------------------------------

/// Replaces pattern-variable occurrences in a template with fresh marker
/// symbols; returns the marked template and `(marker, runtime-name)`
/// pairs.
fn mark_pattern_vars(
    exp: &Expander,
    tmpl: &Syntax,
    out: &mut Vec<(Symbol, Symbol)>,
) -> Result<Syntax, RtError> {
    match tmpl.e() {
        SynData::Atom(Datum::Symbol(_)) => {
            if let Some(Binding::PatternVar(runtime, _)) = exp.resolve(tmpl)? {
                let marker = Symbol::fresh("pv");
                out.push((marker, runtime));
                return Ok(Syntax::ident(marker, tmpl.span()));
            }
            Ok(tmpl.clone())
        }
        SynData::Atom(_) => Ok(tmpl.clone()),
        SynData::List(items) => {
            let items = items
                .iter()
                .map(|s| mark_pattern_vars(exp, s, out))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(tmpl.with_data(SynData::List(items)))
        }
        SynData::Improper(items, tail) => {
            let items = items
                .iter()
                .map(|s| mark_pattern_vars(exp, s, out))
                .collect::<Result<Vec<_>, _>>()?;
            let tail = mark_pattern_vars(exp, tail, out)?;
            Ok(tmpl.with_data(SynData::Improper(items, Box::new(tail))))
        }
        SynData::Vector(items) => {
            let items = items
                .iter()
                .map(|s| mark_pattern_vars(exp, s, out))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(tmpl.with_data(SynData::Vector(items)))
        }
    }
}

/// Emits `(instantiate-template (quote-syntax tmpl) (list (cons 'k v) …))`.
fn template_call(tmpl: Syntax, bindings: Vec<(Symbol, Syntax)>) -> Syntax {
    let pairs = bindings
        .into_iter()
        .map(|(marker, value_expr)| build::app(id("cons"), vec![quote_sym(marker), value_expr]))
        .collect();
    build::app(
        id("instantiate-template"),
        vec![quote_syntax(tmpl), build::app(id("list"), pairs)],
    )
}

/// The `(syntax tmpl)` native macro (reader shorthand `#'tmpl`).
pub fn syntax_macro() -> Rc<NativeMacro> {
    native("syntax", |exp, stx, _| {
        let items = items_of(&stx, "syntax")?;
        if items.len() != 2 {
            return Err(syntax_error("syntax: expects one template", &stx));
        }
        let mut markers = Vec::new();
        let marked = mark_pattern_vars(exp, &items[1], &mut markers)?;
        let bindings = markers
            .into_iter()
            .map(|(marker, runtime)| (marker, id_sym(runtime)))
            .collect();
        Ok(Expanded::Core(template_call(marked, bindings)))
    })
}

/// The `(quasisyntax tmpl)` native macro (reader shorthand `` #`tmpl ``),
/// supporting `(unsyntax e)` / `#,e` and `(unsyntax-splicing e)` / `#,@e`.
pub fn quasisyntax_macro() -> Rc<NativeMacro> {
    native("quasisyntax", |exp, stx, _| {
        let items = items_of(&stx, "quasisyntax")?;
        if items.len() != 2 {
            return Err(syntax_error("quasisyntax: expects one template", &stx));
        }
        let mut bindings: Vec<(Symbol, Syntax)> = Vec::new();
        let marked = quasi_walk(exp, &items[1], &mut bindings)?;
        let mut markers = Vec::new();
        let marked = mark_pattern_vars(exp, &marked, &mut markers)?;
        bindings.extend(
            markers
                .into_iter()
                .map(|(marker, runtime)| (marker, id_sym(runtime))),
        );
        Ok(Expanded::Core(template_call(marked, bindings)))
    })
}

fn quasi_walk(
    exp: &Expander,
    tmpl: &Syntax,
    bindings: &mut Vec<(Symbol, Syntax)>,
) -> Result<Syntax, RtError> {
    if let Some(items) = tmpl.as_list() {
        // (unsyntax e)
        if items.len() == 2 && items[0].sym() == Some(Symbol::intern("unsyntax")) {
            let marker = Symbol::fresh("us");
            let e_core = exp.expand_expr(&items[1])?;
            bindings.push((marker, build::app(id("coerce-syntax"), vec![e_core])));
            return Ok(Syntax::ident(marker, tmpl.span()));
        }
        let mut out = Vec::new();
        for item in items {
            // element (unsyntax-splicing e) → marker followed by ellipsis
            if let Some(parts) = item.as_list() {
                if parts.len() == 2 && parts[0].sym() == Some(Symbol::intern("unsyntax-splicing")) {
                    let marker = Symbol::fresh("uss");
                    let e_core = exp.expand_expr(&parts[1])?;
                    bindings.push((marker, build::app(id("coerce-syntax-list"), vec![e_core])));
                    out.push(Syntax::ident(marker, item.span()));
                    out.push(id("..."));
                    continue;
                }
            }
            out.push(quasi_walk(exp, item, bindings)?);
        }
        return Ok(tmpl.with_data(SynData::List(out)));
    }
    Ok(tmpl.clone())
}

// ---------------------------------------------------------------------
// syntax-parse and with-syntax
// ---------------------------------------------------------------------

/// Finds the identifier occurrence of pattern variable `name` within a
/// pattern (for scope information when binding it).
fn find_occurrence(pat: &Syntax, name: Symbol) -> Option<Syntax> {
    match pat.e() {
        SynData::Atom(Datum::Symbol(sym)) => {
            let stripped = sym.with_str(|s| match s.rfind(':') {
                Some(i) if i > 0 && i < s.len() - 1 => Symbol::intern(&s[..i]),
                _ => *sym,
            });
            (stripped == name).then(|| pat.clone())
        }
        SynData::Atom(_) => None,
        SynData::List(items) | SynData::Vector(items) => {
            items.iter().find_map(|s| find_occurrence(s, name))
        }
        SynData::Improper(items, tail) => items
            .iter()
            .find_map(|s| find_occurrence(s, name))
            .or_else(|| find_occurrence(tail, name)),
    }
}

/// Binds the pattern variables of `pat` under `scope` and returns
/// `(source-name, runtime-name)` pairs.
fn bind_pattern_vars(
    exp: &Expander,
    pat: &Syntax,
    scope: Scope,
) -> Result<Vec<(Symbol, Symbol)>, RtError> {
    let mut out = Vec::new();
    for (name, depth) in pattern_vars(pat, &[]) {
        let occurrence = find_occurrence(pat, name)
            .ok_or_else(|| syntax_error("pattern variable occurrence not found", pat))?;
        let runtime = name.with_str(Symbol::fresh);
        exp.table.bind(
            name,
            occurrence.add_scope(scope).scopes().clone(),
            Binding::PatternVar(runtime, depth),
        );
        out.push((name, runtime));
    }
    Ok(out)
}

/// Emits nested `let-values` binding each runtime name to
/// `(match-lookup m 'source-name)`, around `body`.
fn bind_lookups(m: Symbol, vars: &[(Symbol, Symbol)], body: Syntax) -> Syntax {
    let mut out = body;
    for (source, runtime) in vars.iter().rev() {
        out = build::let1(
            *runtime,
            build::app(id("match-lookup"), vec![id_sym(m), quote_sym(*source)]),
            vec![out],
        );
    }
    out
}

/// The `syntax-parse` native macro.
///
/// `(syntax-parse scrutinee [pattern body …+] …)` — clauses are tried in
/// order; the first whose pattern matches runs its body with the pattern
/// variables bound. No match raises a syntax error.
pub fn syntax_parse_macro() -> Rc<NativeMacro> {
    native("syntax-parse", |exp, stx, _| {
        let items = items_of(&stx, "syntax-parse")?;
        if items.len() < 3 {
            return Err(syntax_error(
                "syntax-parse: expects a scrutinee and clauses",
                &stx,
            ));
        }
        let scrut_core = exp.expand_expr(&items[1])?;
        let e = Symbol::fresh("stx");
        let mut chain = build::app(
            id("raise-syntax-error"),
            vec![
                quote_sym(Symbol::intern("syntax-parse")),
                build::string("no matching clause"),
                id_sym(e),
            ],
        );
        for clause in items[2..].iter().rev() {
            let parts = clause
                .to_list()
                .filter(|p| p.len() >= 2)
                .ok_or_else(|| syntax_error("syntax-parse: malformed clause", clause))?;
            let pat = parts[0].clone();
            let sc = Scope::fresh();
            let vars = bind_pattern_vars(exp, &pat, sc)?;
            let body: Vec<Syntax> = parts[1..].iter().map(|f| f.add_scope(sc)).collect();
            let body_core = exp.expand_expr(&crate::build::begin(body))?;
            let m = Symbol::fresh("m");
            let matched = bind_lookups(m, &vars, body_core);
            chain = build::let1(
                m,
                build::app(id("match-pattern"), vec![quote_syntax(pat), id_sym(e)]),
                vec![build::if3(
                    build::app(id("not"), vec![id_sym(m)]),
                    chain,
                    matched,
                )],
            );
        }
        Ok(Expanded::Core(build::let1(e, scrut_core, vec![chain])))
    })
}

/// The `with-syntax` native macro (paper §2.1): matches each pattern
/// against the *value* of its expression (coerced to syntax), then runs
/// the body with the pattern variables bound.
pub fn with_syntax_macro() -> Rc<NativeMacro> {
    native("with-syntax", |exp, stx, _| {
        let items = items_of(&stx, "with-syntax")?;
        if items.len() < 3 {
            return Err(syntax_error(
                "with-syntax: expects bindings and a body",
                &stx,
            ));
        }
        let clauses = items[1]
            .to_list()
            .ok_or_else(|| syntax_error("with-syntax: malformed bindings", &items[1]))?;
        let sc = Scope::fresh();
        let mut all_vars = Vec::new();
        let mut matches: Vec<(Symbol, Syntax)> = Vec::new();
        for clause in &clauses {
            let parts = clause
                .to_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| syntax_error("with-syntax: malformed clause", clause))?;
            let pat = parts[0].clone();
            let expr_core = exp.expand_expr(&parts[1])?;
            let vars = bind_pattern_vars(exp, &pat, sc)?;
            let m = Symbol::fresh("wm");
            matches.push((
                m,
                build::app(id("with-syntax-match"), vec![quote_syntax(pat), expr_core]),
            ));
            all_vars.push((m, vars));
        }
        let body: Vec<Syntax> = items[2..].iter().map(|f| f.add_scope(sc)).collect();
        let body_core = exp.expand_expr(&crate::build::begin(body))?;
        let mut out = body_core;
        for (m, vars) in all_vars.iter().rev() {
            out = bind_lookups(*m, vars, out);
        }
        for (m, call) in matches.into_iter().rev() {
            out = build::let1(m, call, vec![out]);
        }
        Ok(Expanded::Core(out))
    })
}

/// The `define-syntax` native macro: both `(define-syntax (name stx)
/// body …)` and `(define-syntax name transformer)` shapes, rewritten to
/// the `define-syntaxes` core form.
pub fn define_syntax_macro() -> Rc<NativeMacro> {
    native("define-syntax", |_exp, stx, _| {
        let items = items_of(&stx, "define-syntax")?;
        if items.len() < 3 {
            return Err(syntax_error("define-syntax: bad syntax", &stx));
        }
        let (name, transformer) = if items[1].is_identifier() {
            if items.len() != 3 {
                return Err(syntax_error("define-syntax: bad syntax", &stx));
            }
            (items[1].clone(), items[2].clone())
        } else {
            let header = items[1]
                .to_list()
                .filter(|h| h.len() == 2 && h[0].is_identifier() && h[1].is_identifier())
                .ok_or_else(|| syntax_error("define-syntax: expected (name stx)", &items[1]))?;
            let mut lam = vec![id("lambda"), lst(vec![header[1].clone()])];
            lam.extend(items[2..].iter().cloned());
            (header[0].clone(), lst(lam))
        };
        Ok(Expanded::Surface(lst(vec![
            id("define-syntaxes"),
            lst(vec![name]),
            transformer,
        ])))
    })
}

/// The `syntax-rules` native macro: produces a phase-1 transformer value
/// that matches clauses and instantiates templates at runtime.
pub fn syntax_rules_macro() -> Rc<NativeMacro> {
    native("syntax-rules", |_exp, stx, _| {
        let items = items_of(&stx, "syntax-rules")?;
        if items.len() < 2 {
            return Err(syntax_error(
                "syntax-rules: expects literals and clauses",
                &stx,
            ));
        }
        let lits = items[1]
            .to_list()
            .ok_or_else(|| syntax_error("syntax-rules: expected a literals list", &items[1]))?;
        let lit_datum = Datum::List(
            lits.iter()
                .map(|l| Datum::Symbol(l.sym().unwrap_or_else(|| Symbol::intern("?"))))
                .collect(),
        );
        let mut clause_syntax = Vec::new();
        for clause in &items[2..] {
            let parts = clause
                .to_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| syntax_error("syntax-rules: malformed clause", clause))?;
            clause_syntax.push(lst(vec![parts[0].clone(), parts[1].clone()]));
        }
        Ok(Expanded::Core(build::app(
            id("make-rules-transformer"),
            vec![
                quote_syntax(lst(clause_syntax)),
                build::quote_datum(lit_datum),
            ],
        )))
    })
}

// ---------------------------------------------------------------------
// phase-1 natives
// ---------------------------------------------------------------------

fn expect_syntax_arg(who: &str, v: &Value) -> Result<Syntax, RtError> {
    match v.as_syntax() {
        Some(s) => Ok(s.clone()),
        None => Err(RtError::type_error(format!(
            "{who}: expected syntax, got {}",
            v.write_string()
        ))),
    }
}

fn assoc_to_map(v: &Value) -> Result<HashMap<Symbol, Value>, RtError> {
    let items = v
        .list_to_vec()
        .ok_or_else(|| RtError::type_error("expected an association list"))?;
    let mut map = HashMap::new();
    for item in items {
        match item.as_pair() {
            Some(p) => match p.0.as_symbol() {
                Some(k) => {
                    map.insert(k, p.1.clone());
                }
                None => return Err(RtError::type_error("association key must be a symbol")),
            },
            None => return Err(RtError::type_error("expected an association list of pairs")),
        }
    }
    Ok(map)
}

/// The phase-1 primitive environment: the runtime primitives plus the
/// matcher/template/expander operations macro transformers need.
pub fn phase1_natives() -> Vec<(Symbol, Value)> {
    let mut out: Vec<(Symbol, Value)> = primitives();
    out.push(lagoon_vm::apply_placeholder());
    out.push(lagoon_vm::cwv_placeholder());

    type PrimFn = Box<dyn Fn(&[Value]) -> Result<Value, RtError>>;
    let mut def = |name: &str, arity: Arity, f: PrimFn| {
        out.push((
            Symbol::intern(name),
            Value::Native(Rc::new(Native {
                name: Symbol::intern(name),
                arity,
                f,
            })),
        ));
    };

    def(
        "match-pattern",
        Arity::at_least(2),
        Box::new(|args| {
            let pat = expect_syntax_arg("match-pattern", &args[0])?;
            let input = expect_syntax_arg("match-pattern", &args[1])?;
            let lits: Vec<Symbol> = match args.get(2) {
                Some(v) => v
                    .list_to_vec()
                    .unwrap_or_default()
                    .into_iter()
                    .filter_map(|x| x.as_symbol())
                    .collect(),
                None => Vec::new(),
            };
            Ok(match match_pattern(&pat, &input, &lits) {
                Some(bindings) => Value::list(
                    bindings
                        .into_iter()
                        .map(|(k, v)| Value::cons(Value::Symbol(k), v))
                        .collect::<Vec<_>>(),
                ),
                None => Value::Bool(false),
            })
        }),
    );

    def(
        "match-lookup",
        Arity::exactly(2),
        Box::new(|args| {
            let map = assoc_to_map(&args[0])?;
            match args[1].as_symbol() {
                Some(k) => map.get(&k).cloned().ok_or_else(|| {
                    RtError::type_error(format!("match-lookup: no binding for {k}"))
                }),
                None => Err(RtError::type_error(format!(
                    "match-lookup: expected symbol, got {}",
                    args[1].write_string()
                ))),
            }
        }),
    );

    def(
        "instantiate-template",
        Arity::exactly(2),
        Box::new(|args| {
            let tmpl = expect_syntax_arg("instantiate-template", &args[0])?;
            let bindings = assoc_to_map(&args[1])?;
            Ok(Value::Syntax(crate::template::instantiate_template(
                &tmpl, &bindings,
            )?))
        }),
    );

    def(
        "coerce-syntax",
        Arity::exactly(1),
        Box::new(|args| match args[0].as_syntax() {
            Some(s) => Ok(Value::Syntax(s.clone())),
            None => {
                let ctx = Syntax::ident(Symbol::intern("ctx"), lagoon_syntax::Span::synthetic());
                Ok(Value::Syntax(lagoon_runtime::prim::value_to_syntax(
                    &ctx, &args[0],
                )?))
            }
        }),
    );

    def(
        "coerce-syntax-list",
        Arity::exactly(1),
        Box::new(|args| {
            let items = args[0]
                .list_to_vec()
                .ok_or_else(|| RtError::type_error("unsyntax-splicing: expected a list"))?;
            let ctx = Syntax::ident(Symbol::intern("ctx"), lagoon_syntax::Span::synthetic());
            let coerced = items
                .into_iter()
                .map(|v| {
                    if v.as_syntax().is_some() {
                        Ok(v)
                    } else {
                        Ok(Value::Syntax(lagoon_runtime::prim::value_to_syntax(
                            &ctx, &v,
                        )?))
                    }
                })
                .collect::<Result<Vec<_>, RtError>>()?;
            Ok(Value::list(coerced))
        }),
    );

    def(
        "with-syntax-match",
        Arity::exactly(2),
        Box::new(|args| {
            let pat = expect_syntax_arg("with-syntax", &args[0])?;
            let ctx = Syntax::ident(Symbol::intern("ctx"), lagoon_syntax::Span::synthetic());
            let input = match args[1].as_syntax() {
                Some(s) => s.clone(),
                None => lagoon_runtime::prim::value_to_syntax(&ctx, &args[1])?,
            };
            match match_pattern(&pat, &input, &[]) {
                Some(bindings) => Ok(Value::list(
                    bindings
                        .into_iter()
                        .map(|(k, v)| Value::cons(Value::Symbol(k), v))
                        .collect::<Vec<_>>(),
                )),
                None => Err(RtError::user(format!(
                    "with-syntax: pattern {pat} did not match {input}"
                ))),
            }
        }),
    );

    def(
        "make-rules-transformer",
        Arity::exactly(2),
        Box::new(|args| {
            let clauses_stx = expect_syntax_arg("make-rules-transformer", &args[0])?;
            let lits: Vec<Symbol> = args[1]
                .list_to_vec()
                .unwrap_or_default()
                .into_iter()
                .filter_map(|v| v.as_symbol())
                .collect();
            let clauses: Vec<(Syntax, Syntax)> = clauses_stx
                .as_list()
                .map(|cs| {
                    cs.iter()
                        .filter_map(|c| {
                            let parts = c.as_list()?;
                            Some((parts[0].clone(), parts[1].clone()))
                        })
                        .collect()
                })
                .unwrap_or_default();
            Ok(Native::value(
                "rules-transformer",
                Arity::exactly(1),
                move |args| {
                    let input = expect_syntax_arg("rules-transformer", &args[0])?;
                    for (pat, tmpl) in &clauses {
                        // the head of a syntax-rules pattern matches the
                        // macro name: replace it with a wildcard
                        let pat = relax_head(pat);
                        if let Some(bindings) = match_pattern(&pat, &input, &lits) {
                            let map: HashMap<Symbol, Value> = bindings.into_iter().collect();
                            return Ok(Value::Syntax(crate::template::instantiate_template(
                                tmpl, &map,
                            )?));
                        }
                    }
                    Err(RtError::user(format!(
                        "syntax-rules: no matching clause for {input}"
                    )))
                },
            ))
        }),
    );

    def(
        "local-expand",
        Arity::at_least(1),
        Box::new(|args| {
            let stx = expect_syntax_arg("local-expand", &args[0])?;
            let exp = crate::expander::current_expander()
                .ok_or_else(|| RtError::user("local-expand: not currently expanding"))?;
            lagoon_diag::count("local-expand", exp.module_name, 1);
            let module_begin = args
                .get(1)
                .and_then(Value::as_symbol)
                .is_some_and(|s| s.with_str(|ctx| ctx == "module-begin"));
            let out = if module_begin {
                exp.expand_module_begin(stx)?
            } else {
                exp.expand_expr(&stx)?
            };
            Ok(Value::Syntax(out))
        }),
    );

    def(
        "free-identifier=?",
        Arity::exactly(2),
        Box::new(|args| {
            let a = expect_syntax_arg("free-identifier=?", &args[0])?;
            let b = expect_syntax_arg("free-identifier=?", &args[1])?;
            if !a.is_identifier() || !b.is_identifier() {
                return Err(RtError::type_error(
                    "free-identifier=?: expected identifiers",
                ));
            }
            let exp = crate::expander::current_expander()
                .ok_or_else(|| RtError::user("free-identifier=?: not currently expanding"))?;
            let ra = exp.resolve(&a)?;
            let rb = exp.resolve(&b)?;
            Ok(Value::Bool(match (ra, rb) {
                (Some(x), Some(y)) => x.same(&y),
                (None, None) => a.sym() == b.sym(),
                _ => false,
            }))
        }),
    );

    out
}

fn relax_head(pat: &Syntax) -> Syntax {
    match pat.e() {
        SynData::List(items) if !items.is_empty() && items[0].is_identifier() => {
            let mut out = items.clone();
            out[0] = Syntax::ident(Symbol::intern("_"), items[0].span());
            pat.with_data(SynData::List(out))
        }
        _ => pat.clone(),
    }
}
