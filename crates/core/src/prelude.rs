//! The base language's surface forms and library.
//!
//! Everything here is implemented *on top of* the core forms — the surface
//! macros are native transformers (the compiled-library analogue of
//! `racket/base`'s macros), and the library functions are hosted Lagoon
//! code compiled by the ordinary pipeline. “Most forms can be reduced to
//! simpler forms via rewrite rules implemented as macros” (paper §3.1).

use crate::binding::{Expanded, NativeMacro};
use crate::build::{self, id, lst};
use crate::expander::syntax_error;
use crate::stxparse::native;
use lagoon_syntax::{Symbol, Syntax};
use std::rc::Rc;

/// The hosted portion of the base library, compiled during bootstrap.
pub const PRELUDE_SOURCE: &str = r#"
(define (map1 f lst)
  (if (null? lst) '() (cons (f (car lst)) (map1 f (cdr lst)))))
(define (map2 f a b)
  (if (null? a) '() (cons (f (car a) (car b)) (map2 f (cdr a) (cdr b)))))
(define (map f lst . more)
  (if (null? more) (map1 f lst) (map2 f lst (car more))))
(define (for-each f lst)
  (if (null? lst) (void) (begin (f (car lst)) (for-each f (cdr lst)))))
(define (filter p lst)
  (cond [(null? lst) '()]
        [(p (car lst)) (cons (car lst) (filter p (cdr lst)))]
        [else (filter p (cdr lst))]))
(define (foldl f init lst)
  (if (null? lst) init (foldl f (f (car lst) init) (cdr lst))))
(define (foldr f init lst)
  (if (null? lst) init (f (car lst) (foldr f init (cdr lst)))))
(define (andmap p lst)
  (if (null? lst) #t (if (p (car lst)) (andmap p (cdr lst)) #f)))
(define (ormap p lst)
  (if (null? lst) #f (let ([r (p (car lst))]) (if r r (ormap p (cdr lst))))))
(define (build-list n f)
  (letrec ([go (lambda (i) (if (= i n) '() (cons (f i) (go (+ i 1)))))])
    (go 0)))
(define (list-copy lst) (map1 (lambda (x) x) lst))
(define (vector-map f v)
  (let ([n (vector-length v)])
    (let ([out (make-vector n 0)])
      (letrec ([go (lambda (i)
                     (if (= i n)
                         out
                         (begin (vector-set! out i (f (vector-ref v i)))
                                (go (+ i 1)))))])
        (go 0)))))
(define (vector-for-each f v)
  (let ([n (vector-length v)])
    (letrec ([go (lambda (i)
                   (if (= i n) (void)
                       (begin (f (vector-ref v i)) (go (+ i 1)))))])
      (go 0))))
(define (assoc-ref alist key default)
  (let ([hit (assoc key alist)])
    (if hit (cdr hit) default)))
(define (iota n) (build-list n (lambda (i) i)))
(define (range a b)
  (if (>= a b) '() (cons a (range (+ a 1) b))))
(define (sum lst) (foldl + 0 lst))
(define (list-max lst) (foldl max (car lst) (cdr lst)))
(define (take lst n)
  (if (or (= n 0) (null? lst)) '() (cons (car lst) (take (cdr lst) (- n 1)))))
(define (drop lst n)
  (if (or (= n 0) (null? lst)) lst (drop (cdr lst) (- n 1))))
(define (list-index p lst)
  (letrec ([go (lambda (l i)
                 (cond [(null? l) -1]
                       [(p (car l)) i]
                       [else (go (cdr l) (+ i 1))]))])
    (go lst 0)))
(define (merge-sorted a b less?)
  (cond [(null? a) b]
        [(null? b) a]
        [(less? (car b) (car a)) (cons (car b) (merge-sorted a (cdr b) less?))]
        [else (cons (car a) (merge-sorted (cdr a) b less?))]))
(define (sort lst less?)
  (if (or (null? lst) (null? (cdr lst)))
      lst
      (letrec ([split (lambda (l a b)
                        (if (null? l)
                            (merge-sorted (sort a less?) (sort b less?) less?)
                            (split (cdr l) (cons (car l) b) a)))])
        (split lst '() '()))))
(define (string-join strs sep)
  (cond [(null? strs) ""]
        [(null? (cdr strs)) (car strs)]
        [else (string-append (car strs) sep (string-join (cdr strs) sep))]))
(define (string-repeat s n)
  (if (= n 0) "" (string-append s (string-repeat s (- n 1)))))
(define (flatten lst)
  (cond [(null? lst) '()]
        [(pair? (car lst)) (append (flatten (car lst)) (flatten (cdr lst)))]
        [(null? (car lst)) (flatten (cdr lst))]
        [else (cons (car lst) (flatten (cdr lst)))]))
(define (count-if p lst)
  (foldl (lambda (x acc) (if (p x) (+ acc 1) acc)) 0 lst))
(define (remove-if p lst) (filter (lambda (x) (not (p x))) lst))
(define (zip a b) (map2 (lambda (x y) (list x y)) a b))
(define (in-range a . maybe-b)
  (if (null? maybe-b) (range 0 a) (range a (car maybe-b))))
(define-syntax for
  (syntax-rules ()
    [(_ ([x seq]) body ...)
     (for-each (lambda (x) body ...) seq)]))
(define-syntax for/list
  (syntax-rules ()
    [(_ ([x seq]) body ...)
     (map (lambda (x) (begin body ...)) seq)]))
(define-syntax for/sum
  (syntax-rules ()
    [(_ ([x seq]) body ...)
     (foldl (lambda (x acc) (+ acc (begin body ...))) 0 seq)]))
(define-syntax while
  (syntax-rules ()
    [(_ test body ...)
     (letrec ([loop (lambda ()
                      (when test body ... (loop)))])
       (loop))]))
(provide for for/list for/sum while in-range)
(provide map map1 map2 for-each filter foldl foldr andmap ormap
         build-list list-copy vector-map vector-for-each assoc-ref
         iota range sum list-max take drop list-index merge-sorted sort
         string-join string-repeat flatten count-if remove-if zip)
"#;

fn define_macro() -> Rc<NativeMacro> {
    native("define", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("define: bad syntax", &stx))?;
        if items.len() < 3 {
            return Err(syntax_error("define: expects a name and a value", &stx));
        }
        if items[1].is_identifier() {
            if items.len() != 3 {
                return Err(syntax_error(
                    "define: multiple expressions after identifier",
                    &stx,
                ));
            }
            return Ok(Expanded::Surface(lst(vec![
                id("define-values"),
                lst(vec![items[1].clone()]),
                items[2].clone(),
            ])));
        }
        // function shorthand: (define (f arg …) body …) — the header may
        // be improper for rest arguments
        let (name, formals) = match items[1].e() {
            lagoon_syntax::SynData::List(header) if !header.is_empty() => (
                header[0].clone(),
                items[1].with_data(lagoon_syntax::SynData::List(header[1..].to_vec())),
            ),
            lagoon_syntax::SynData::Improper(header, tail) if !header.is_empty() => (
                header[0].clone(),
                if header.len() == 1 {
                    (**tail).clone()
                } else {
                    items[1].with_data(lagoon_syntax::SynData::Improper(
                        header[1..].to_vec(),
                        tail.clone(),
                    ))
                },
            ),
            _ => return Err(syntax_error("define: malformed header", &items[1])),
        };
        let mut lam = vec![id("lambda"), formals];
        lam.extend(items[2..].iter().cloned());
        Ok(Expanded::Surface(lst(vec![
            id("define-values"),
            lst(vec![name]),
            lst(lam),
        ])))
    })
}

fn let_macro() -> Rc<NativeMacro> {
    native("let", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("let: bad syntax", &stx))?;
        if items.len() < 3 {
            return Err(syntax_error("let: expects bindings and a body", &stx));
        }
        // named let: (let loop ([x e] …) body …)
        if items[1].is_identifier() {
            if items.len() < 4 {
                return Err(syntax_error(
                    "let: named let expects bindings and a body",
                    &stx,
                ));
            }
            let name = items[1].clone();
            let clauses = parse_let_clauses(&items[2])?;
            let formals: Vec<Syntax> = clauses.iter().map(|(x, _)| x.clone()).collect();
            let inits: Vec<Syntax> = clauses.iter().map(|(_, e)| e.clone()).collect();
            let mut lam = vec![id("lambda"), lst(formals)];
            lam.extend(items[3..].iter().cloned());
            let rec = lst(vec![
                id("letrec-values"),
                lst(vec![lst(vec![lst(vec![name.clone()]), lst(lam)])]),
                name,
            ]);
            let mut call = vec![rec];
            call.extend(inits);
            return Ok(Expanded::Surface(lst(call)));
        }
        let clauses = parse_let_clauses(&items[1])?;
        let core_clauses = clauses
            .into_iter()
            .map(|(x, e)| lst(vec![lst(vec![x]), e]))
            .collect();
        let mut out = vec![id("let-values"), lst(core_clauses)];
        out.extend(items[2..].iter().cloned());
        Ok(Expanded::Surface(lst(out)))
    })
}

fn parse_let_clauses(stx: &Syntax) -> Result<Vec<(Syntax, Syntax)>, lagoon_runtime::RtError> {
    stx.to_list()
        .ok_or_else(|| syntax_error("let: malformed bindings", stx))?
        .iter()
        .map(|clause| {
            clause
                .to_list()
                .filter(|p| p.len() == 2 && p[0].is_identifier())
                .map(|p| (p[0].clone(), p[1].clone()))
                .ok_or_else(|| syntax_error("let: malformed clause", clause))
        })
        .collect()
}

fn let_star_macro() -> Rc<NativeMacro> {
    native("let*", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("let*: bad syntax", &stx))?;
        if items.len() < 3 {
            return Err(syntax_error("let*: expects bindings and a body", &stx));
        }
        let clauses = parse_let_clauses(&items[1])?;
        let mut out = build::begin(items[2..].to_vec());
        for (x, e) in clauses.into_iter().rev() {
            out = lst(vec![id("let"), lst(vec![lst(vec![x, e])]), out]);
        }
        Ok(Expanded::Surface(out))
    })
}

fn letrec_macro() -> Rc<NativeMacro> {
    native("letrec", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("letrec: bad syntax", &stx))?;
        if items.len() < 3 {
            return Err(syntax_error("letrec: expects bindings and a body", &stx));
        }
        let clauses = parse_let_clauses(&items[1])?;
        let core_clauses = clauses
            .into_iter()
            .map(|(x, e)| lst(vec![lst(vec![x]), e]))
            .collect();
        let mut out = vec![id("letrec-values"), lst(core_clauses)];
        out.extend(items[2..].iter().cloned());
        Ok(Expanded::Surface(lst(out)))
    })
}

fn cond_macro() -> Rc<NativeMacro> {
    native("cond", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("cond: bad syntax", &stx))?;
        let mut out = build::app(id("void"), vec![]);
        for clause in items[1..].iter().rev() {
            let parts = clause
                .to_list()
                .filter(|p| !p.is_empty())
                .ok_or_else(|| syntax_error("cond: malformed clause", clause))?;
            let is_else = parts[0].sym() == Some(Symbol::intern("else"));
            if is_else {
                if parts.len() < 2 {
                    return Err(syntax_error("cond: else clause needs a body", clause));
                }
                out = build::begin(parts[1..].to_vec());
            } else if parts.len() == 1 {
                // (cond [test]) — the test's value when true
                let t = Symbol::fresh("t");
                out = build::let1(
                    t,
                    parts[0].clone(),
                    vec![build::if3(build::id_sym(t), build::id_sym(t), out)],
                );
            } else {
                out = build::if3(parts[0].clone(), build::begin(parts[1..].to_vec()), out);
            }
        }
        Ok(Expanded::Surface(out))
    })
}

fn case_macro() -> Rc<NativeMacro> {
    native("case", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("case: bad syntax", &stx))?;
        if items.len() < 2 {
            return Err(syntax_error("case: expects a scrutinee", &stx));
        }
        let t = Symbol::fresh("case-t");
        let mut out = build::app(id("void"), vec![]);
        for clause in items[2..].iter().rev() {
            let parts = clause
                .to_list()
                .filter(|p| p.len() >= 2)
                .ok_or_else(|| syntax_error("case: malformed clause", clause))?;
            if parts[0].sym() == Some(Symbol::intern("else")) {
                out = build::begin(parts[1..].to_vec());
            } else {
                let data = parts[0].clone();
                let test = build::app(
                    id("memv"),
                    vec![build::id_sym(t), lst(vec![id("quote"), data])],
                );
                out = build::if3(test, build::begin(parts[1..].to_vec()), out);
            }
        }
        Ok(Expanded::Surface(build::let1(
            t,
            items[1].clone(),
            vec![out],
        )))
    })
}

fn when_macro() -> Rc<NativeMacro> {
    native("when", |_exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() >= 3)
            .ok_or_else(|| syntax_error("when: expects a test and a body", &stx))?;
        Ok(Expanded::Surface(build::if3(
            items[1].clone(),
            build::begin(items[2..].to_vec()),
            build::app(id("void"), vec![]),
        )))
    })
}

fn unless_macro() -> Rc<NativeMacro> {
    native("unless", |_exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() >= 3)
            .ok_or_else(|| syntax_error("unless: expects a test and a body", &stx))?;
        Ok(Expanded::Surface(build::if3(
            items[1].clone(),
            build::app(id("void"), vec![]),
            build::begin(items[2..].to_vec()),
        )))
    })
}

fn and_macro() -> Rc<NativeMacro> {
    native("and", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("and: bad syntax", &stx))?;
        let out = match items.len() {
            1 => Syntax::atom(lagoon_syntax::Datum::Bool(true), stx.span()),
            2 => items[1].clone(),
            _ => {
                let mut rest = vec![id("and")];
                rest.extend(items[2..].iter().cloned());
                build::if3(
                    items[1].clone(),
                    lst(rest),
                    Syntax::atom(lagoon_syntax::Datum::Bool(false), stx.span()),
                )
            }
        };
        Ok(Expanded::Surface(out))
    })
}

fn or_macro() -> Rc<NativeMacro> {
    native("or", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("or: bad syntax", &stx))?;
        let out = match items.len() {
            1 => Syntax::atom(lagoon_syntax::Datum::Bool(false), stx.span()),
            2 => items[1].clone(),
            _ => {
                let t = Symbol::fresh("or-t");
                let mut rest = vec![id("or")];
                rest.extend(items[2..].iter().cloned());
                build::let1(
                    t,
                    items[1].clone(),
                    vec![build::if3(build::id_sym(t), build::id_sym(t), lst(rest))],
                )
            }
        };
        Ok(Expanded::Surface(out))
    })
}

fn quasiquote_macro() -> Rc<NativeMacro> {
    native("quasiquote", |_exp, stx, _| {
        let items = stx
            .to_list()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| syntax_error("quasiquote: expects one template", &stx))?;
        Ok(Expanded::Surface(qq_expand(&items[1])))
    })
}

/// Rewrites a quasiquote template to `cons`/`append`/`quote` calls.
fn qq_expand(tmpl: &Syntax) -> Syntax {
    if let Some(items) = tmpl.as_list() {
        if items.len() == 2 && items[0].sym() == Some(Symbol::intern("unquote")) {
            return items[1].clone();
        }
        // build the list right-to-left
        let mut out = lst(vec![id("quote"), lst(vec![])]);
        for item in items.iter().rev() {
            if let Some(parts) = item.as_list() {
                if parts.len() == 2 && parts[0].sym() == Some(Symbol::intern("unquote-splicing")) {
                    out = build::app(id("append"), vec![parts[1].clone(), out]);
                    continue;
                }
            }
            out = build::app(id("cons"), vec![qq_expand(item), out]);
        }
        return out;
    }
    lst(vec![id("quote"), tmpl.clone()])
}

fn provide_macro() -> Rc<NativeMacro> {
    native("provide", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("provide: bad syntax", &stx))?;
        let mut out = vec![id("#%provide")];
        for spec in &items[1..] {
            if spec.is_identifier() {
                out.push(spec.clone());
            } else if let Some(parts) = spec.as_list() {
                // (rename-out [int ext] …)
                if parts
                    .first()
                    .and_then(Syntax::sym)
                    .map(|s| s == Symbol::intern("rename-out"))
                    .unwrap_or(false)
                {
                    for pair in &parts[1..] {
                        let p = pair
                            .to_list()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| syntax_error("provide: malformed rename-out", pair))?;
                        out.push(lst(vec![id("rename"), p[0].clone(), p[1].clone()]));
                    }
                } else {
                    return Err(syntax_error("provide: unknown spec", spec));
                }
            } else {
                return Err(syntax_error("provide: unknown spec", spec));
            }
        }
        Ok(Expanded::Surface(lst(out)))
    })
}

fn require_macro() -> Rc<NativeMacro> {
    native("require", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("require: bad syntax", &stx))?;
        let mut out = vec![id("#%require")];
        out.extend(items[1..].iter().cloned());
        Ok(Expanded::Surface(lst(out)))
    })
}

/// The base language's `#%module-begin`: no extra whole-module semantics,
/// just the plain wrapper (paper §2.3).
fn default_module_begin() -> Rc<NativeMacro> {
    native("#%module-begin", |_exp, stx, _| {
        let items = stx
            .to_list()
            .ok_or_else(|| syntax_error("#%module-begin: bad syntax", &stx))?;
        let mut out = vec![id("#%plain-module-begin")];
        out.extend(items[1..].iter().cloned());
        Ok(Expanded::Surface(lst(out)))
    })
}

/// All surface macros of the base language, as `(name, transformer)`
/// pairs ready to bind in the base environment.
pub fn surface_macros() -> Vec<(&'static str, Rc<NativeMacro>)> {
    vec![
        ("define", define_macro()),
        ("let", let_macro()),
        ("let*", let_star_macro()),
        ("letrec", letrec_macro()),
        ("cond", cond_macro()),
        ("case", case_macro()),
        ("when", when_macro()),
        ("unless", unless_macro()),
        ("and", and_macro()),
        ("or", or_macro()),
        ("quasiquote", quasiquote_macro()),
        ("provide", provide_macro()),
        ("require", require_macro()),
        ("#%module-begin", default_module_begin()),
        ("define-syntax", crate::stxparse::define_syntax_macro()),
        ("syntax", crate::stxparse::syntax_macro()),
        ("quasisyntax", crate::stxparse::quasisyntax_macro()),
        ("syntax-parse", crate::stxparse::syntax_parse_macro()),
        ("with-syntax", crate::stxparse::with_syntax_macro()),
        ("syntax-rules", crate::stxparse::syntax_rules_macro()),
    ]
}
