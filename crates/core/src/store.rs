//! The on-disk compiled-module store: serialization of
//! [`CompiledModule`]s to content-addressed `.lagc` artifacts.
//!
//! This is the paper's §5 separate-compilation story made persistent: a
//! compiled module — exports, bytecode, core forms, runtime requires,
//! and the *persisted compile-time declarations* that must replay when
//! the module is imported — survives the process, so a later `lagoon
//! run` deserializes it straight into the registry and skips
//! read→expand→typecheck→compile entirely.
//!
//! ## Validity
//!
//! An artifact is *valid* (a cache hit) only when all of these match:
//!
//! * the `"LAGC"` magic and [`FORMAT_VERSION`];
//! * the **environment digest** — a hash of the base environment's
//!   global names. The prelude's definitions are alpha-renamed with a
//!   process-global counter, so artifacts only make sense against a
//!   base environment whose (deterministic) names they were compiled
//!   for;
//! * the **source digest** — a hash of the module's current source
//!   text (which includes its `#lang` line);
//! * the **peephole flag** — whether the superinstruction pass was on
//!   when the artifact was compiled. A session running with
//!   `--no-peephole` must not reuse fused bytecode (and vice versa);
//! * every **dependency digest** — a hash of the dependency's own
//!   artifact *bytes*, and the dependency must itself have been loaded
//!   from the store this session. A freshly compiled dependency uses
//!   live gensyms that a decoded importer (whose symbols were
//!   re-interned by name) cannot see, so a fresh dep always forces the
//!   importer to recompile. This rule is also what makes editing one
//!   module invalidate its dependents.
//!
//! Failing the version or digest checks is *stale*; bytes that cannot
//! be decoded are *corrupt*. Both fall back to recompilation with a
//! structured diagnostic — never a panic (the wire layer is fully
//! bounds-checked).
//!
//! ## What cannot be cached
//!
//! Exports that close over live compile-time state — hosted macros,
//! pattern variables, and native transformers without a registered
//! [rehydration recipe](crate::binding::NativeMacro::recipe) — and
//! constants with no datum form make a module *uncacheable*: encoding
//! returns an error, the module is compiled from source every run, and
//! so is everything that imports it.

use crate::binding::{Binding, CoreFormKind, NativeMacro};
use crate::module::CompiledModule;
use lagoon_syntax::{fnv1a, Datum, Symbol, WireError, WireReader, WireWriter};
use lagoon_vm::codec;
use lagoon_vm::CoreForm;
use std::rc::Rc;

/// Bumped whenever the artifact layout (or anything it embeds, like the
/// opcode table) changes incompatibly. Old artifacts read as stale.
///
/// History: 2 added the peephole superinstruction opcodes and the
/// artifact's `peephole` flag. 3 switched [`Value`](lagoon_runtime::Value)
/// to the tagged word representation, changing constant encoding (NaN
/// canonicalization means float constants round-trip through one bit
/// pattern per NaN) and the opcode operand layout.
pub const FORMAT_VERSION: u32 = 3;

const MAGIC: &[u8; 4] = b"LAGC";

/// Why an artifact could not be used.
#[derive(Debug)]
pub enum DecodeError {
    /// The artifact was written by a different format version — stale,
    /// not corrupt.
    Version {
        /// The version found in the header.
        found: u32,
    },
    /// The bytes are structurally invalid.
    Corrupt(WireError),
}

impl From<WireError> for DecodeError {
    fn from(e: WireError) -> DecodeError {
        DecodeError::Corrupt(e)
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Version { found } => {
                write!(f, "format version {found} (expected {FORMAT_VERSION})")
            }
            DecodeError::Corrupt(e) => write!(f, "{e}"),
        }
    }
}

/// A decoded artifact: everything in a [`CompiledModule`] plus the
/// digests the registry validates before trusting it.
pub struct Artifact {
    /// Digest of the base environment the artifact was compiled against.
    pub env_digest: u64,
    /// Digest of the module's source text at compile time.
    pub source_digest: u64,
    /// Whether the peephole superinstruction pass was enabled when the
    /// module was compiled. Bytecode with (or without) fused ops is
    /// only a cache hit for a session running the same configuration.
    pub peephole: bool,
    /// The module's name.
    pub name: Symbol,
    /// The module's language.
    pub lang: Symbol,
    /// Runtime requires, each with the digest of the dependency's own
    /// artifact bytes (or [`language_digest`] for registered languages).
    pub dep_digests: Vec<(Symbol, u64)>,
    /// Exports: external name → binding.
    pub exports: Vec<(Symbol, Binding)>,
    /// Persisted compile-time declarations to replay on import.
    pub persisted: Vec<(Symbol, Symbol, Datum)>,
    /// Core forms (interpreter engine).
    pub forms: Vec<CoreForm>,
    /// Bytecode (VM engine).
    pub code: lagoon_vm::bytecode::ModuleCode,
}

impl Artifact {
    /// Converts into a registry-ready [`CompiledModule`]. The expanded
    /// syntax is not persisted (it exists only for tooling on fresh
    /// compiles).
    pub fn into_compiled(self) -> CompiledModule {
        CompiledModule {
            name: self.name,
            lang: self.lang,
            exports: self.exports,
            expanded: Vec::new(),
            forms: self.forms,
            code: self.code,
            requires: self.dep_digests.iter().map(|(dep, _)| *dep).collect(),
            persisted: self.persisted,
        }
    }
}

/// The dependency digest used for registered (Rust-implemented)
/// languages, which have no artifact bytes of their own: their
/// compatibility is tracked by [`FORMAT_VERSION`].
pub fn language_digest(name: Symbol) -> u64 {
    let mut bytes = Vec::new();
    name.with_str(|s| bytes.extend_from_slice(s.as_bytes()));
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    fnv1a(&bytes)
}

/// Digest of a module's source text.
pub fn source_digest(source: &str) -> u64 {
    fnv1a(source.as_bytes())
}

/// Digest of an artifact's encoded bytes (the dependency digest its
/// importers embed).
pub fn artifact_digest(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

fn encode_binding(w: &mut WireWriter, binding: &Binding) -> Result<(), WireError> {
    match binding {
        Binding::Variable(sym) => {
            w.u8(0);
            w.symbol(*sym);
            Ok(())
        }
        Binding::Core(kind) => {
            w.u8(1);
            w.u8(kind.wire_tag());
            Ok(())
        }
        Binding::Native(native) => match &native.recipe {
            Some((tag, datum)) => {
                w.u8(2);
                w.symbol(native.name);
                w.symbol(*tag);
                w.datum(datum);
                Ok(())
            }
            None => Err(WireError::new(
                format!(
                    "export {} is a native transformer without a rehydration recipe",
                    native.name
                ),
                w.bytes().len(),
            )),
        },
        Binding::Macro(_) => Err(WireError::new(
            "hosted macros cannot be persisted",
            w.bytes().len(),
        )),
        Binding::PatternVar(..) => Err(WireError::new(
            "pattern variables cannot be persisted",
            w.bytes().len(),
        )),
    }
}

fn decode_binding(
    r: &mut WireReader,
    rehydrate: &dyn Fn(Symbol, &Datum) -> Option<Rc<NativeMacro>>,
) -> Result<Binding, DecodeError> {
    let at = r.position();
    match r.u8()? {
        0 => Ok(Binding::Variable(r.symbol()?)),
        1 => {
            let tag = r.u8()?;
            CoreFormKind::from_wire_tag(tag)
                .map(Binding::Core)
                .ok_or_else(|| {
                    DecodeError::Corrupt(WireError::new(format!("unknown core-form tag {tag}"), at))
                })
        }
        2 => {
            let name = r.symbol()?;
            let tag = r.symbol()?;
            let datum = r.datum()?;
            rehydrate(tag, &datum).map(Binding::Native).ok_or_else(|| {
                DecodeError::Corrupt(WireError::new(
                    format!("no rehydrator registered for {tag} (export {name})"),
                    at,
                ))
            })
        }
        t => Err(DecodeError::Corrupt(WireError::new(
            format!("unknown binding tag {t}"),
            at,
        ))),
    }
}

/// Encodes a compiled module as artifact bytes.
///
/// # Errors
///
/// Fails when the module is uncacheable: an export without a serialized
/// form, or a bytecode constant with no datum representation.
pub fn encode(
    module: &CompiledModule,
    env_digest: u64,
    src_digest: u64,
    dep_digests: &[(Symbol, u64)],
) -> Result<Vec<u8>, WireError> {
    let mut w = WireWriter::new();
    w.uint(env_digest);
    w.uint(src_digest);
    w.bool(lagoon_vm::peephole::enabled());
    w.symbol(module.name);
    w.symbol(module.lang);
    w.len(dep_digests.len());
    for (dep, digest) in dep_digests {
        w.symbol(*dep);
        w.uint(*digest);
    }
    w.len(module.exports.len());
    for (external, binding) in &module.exports {
        w.symbol(*external);
        encode_binding(&mut w, binding)?;
    }
    w.len(module.persisted.len());
    for (tag, key, datum) in &module.persisted {
        w.symbol(*tag);
        w.symbol(*key);
        w.datum(datum);
    }
    w.len(module.forms.len());
    for form in &module.forms {
        codec::encode_form(&mut w, form)?;
    }
    codec::encode_module_code(&mut w, &module.code)?;
    // frame the body behind a content digest so any byte flip is caught
    // here, as corruption, rather than reaching the engines as silently
    // mutated bytecode
    let body = w.into_bytes();
    let mut framed = WireWriter::new();
    framed.raw(MAGIC);
    framed.u32(FORMAT_VERSION);
    framed.uint(fnv1a(&body));
    framed.raw(&body);
    Ok(framed.into_bytes())
}

/// Decodes artifact bytes. `rehydrate` maps a recipe tag + datum back
/// to a live native transformer (see
/// [`ModuleRegistry::register_rehydrator`](crate::module::ModuleRegistry::register_rehydrator)).
///
/// # Errors
///
/// [`DecodeError::Version`] for a format-version mismatch (stale);
/// [`DecodeError::Corrupt`] for anything structurally invalid.
pub fn decode(
    bytes: &[u8],
    rehydrate: &dyn Fn(Symbol, &Datum) -> Option<Rc<NativeMacro>>,
) -> Result<Artifact, DecodeError> {
    let mut outer = WireReader::new(bytes);
    let magic = outer.raw(4)?;
    if magic != MAGIC {
        return Err(DecodeError::Corrupt(WireError::new(
            "bad magic (not a .lagc artifact)",
            0,
        )));
    }
    let found = outer.u32()?;
    if found != FORMAT_VERSION {
        return Err(DecodeError::Version { found });
    }
    let content_digest = outer.uint()?;
    let body = outer.raw(outer.remaining())?;
    if fnv1a(body) != content_digest {
        return Err(DecodeError::Corrupt(WireError::new(
            "content digest mismatch (artifact bytes were altered)",
            0,
        )));
    }
    let mut r = WireReader::new(body);
    let env_digest = r.uint()?;
    let source_digest = r.uint()?;
    let peephole = r.bool()?;
    let name = r.symbol()?;
    let lang = r.symbol()?;
    let ndeps = r.len()?;
    let mut dep_digests = Vec::with_capacity(ndeps);
    for _ in 0..ndeps {
        let dep = r.symbol()?;
        let digest = r.uint()?;
        dep_digests.push((dep, digest));
    }
    let nexports = r.len()?;
    let mut exports = Vec::with_capacity(nexports);
    for _ in 0..nexports {
        let external = r.symbol()?;
        let binding = decode_binding(&mut r, rehydrate)?;
        exports.push((external, binding));
    }
    let npersisted = r.len()?;
    let mut persisted = Vec::with_capacity(npersisted);
    for _ in 0..npersisted {
        let tag = r.symbol()?;
        let key = r.symbol()?;
        let datum = r.datum()?;
        persisted.push((tag, key, datum));
    }
    let nforms = r.len()?;
    let mut forms = Vec::with_capacity(nforms);
    for _ in 0..nforms {
        forms.push(codec::decode_form(&mut r)?);
    }
    let code = codec::decode_module_code(&mut r)?;
    if !r.is_empty() {
        return Err(DecodeError::Corrupt(WireError::new(
            format!("{} trailing bytes after artifact", r.remaining()),
            r.position(),
        )));
    }
    Ok(Artifact {
        env_digest,
        source_digest,
        peephole,
        name,
        lang,
        dep_digests,
        exports,
        persisted,
        forms,
        code,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_runtime::{Arity, Value};
    use lagoon_syntax::Span;
    use lagoon_vm::bytecode::{ModuleCode, Op, Proto};
    use lagoon_vm::CoreExpr;

    fn sample_module(exports: Vec<(Symbol, Binding)>) -> CompiledModule {
        CompiledModule {
            name: Symbol::intern("m"),
            lang: Symbol::intern("lagoon"),
            exports,
            expanded: Vec::new(),
            forms: vec![CoreForm::Define(
                Symbol::intern("x~1"),
                CoreExpr::Quote(Value::Int(42)),
                Span::synthetic(),
            )],
            code: ModuleCode {
                top: Rc::new(Proto {
                    name: None,
                    arity: Arity::exactly(0),
                    nlocals: 0,
                    captures: vec![],
                    code: vec![Op::Const(0), Op::StoreGlobal(0), Op::Void, Op::Return],
                    consts: vec![Value::Int(42)],
                    protos: vec![],
                }),
                global_names: vec![Symbol::intern("x~1")],
                defined: vec![0],
            },
            requires: vec![Symbol::intern("dep")],
            persisted: vec![(
                Symbol::intern("typed-type"),
                Symbol::intern("x"),
                Datum::sym("Integer"),
            )],
        }
    }

    fn no_rehydrate(_: Symbol, _: &Datum) -> Option<Rc<NativeMacro>> {
        None
    }

    #[test]
    fn round_trips_a_module() {
        let m = sample_module(vec![(
            Symbol::intern("x"),
            Binding::Variable(Symbol::intern("x~1")),
        )]);
        let deps = vec![(Symbol::intern("dep"), 77u64)];
        let bytes = encode(&m, 11, 22, &deps).unwrap();
        let a = decode(&bytes, &no_rehydrate).unwrap();
        assert_eq!(a.env_digest, 11);
        assert_eq!(a.source_digest, 22);
        assert_eq!(a.peephole, lagoon_vm::peephole::enabled());
        assert_eq!(a.name, m.name);
        assert_eq!(a.lang, m.lang);
        assert_eq!(a.dep_digests, deps);
        assert_eq!(a.persisted, m.persisted);
        let back = a.into_compiled();
        assert_eq!(back.requires, m.requires);
        assert_eq!(back.exports.len(), 1);
        assert_eq!(back.code.global_names, m.code.global_names);
    }

    #[test]
    fn version_mismatch_is_stale_not_corrupt() {
        let m = sample_module(vec![]);
        let mut bytes = encode(&m, 0, 0, &[]).unwrap();
        bytes[4] = bytes[4].wrapping_add(1); // varint version bump
        match decode(&bytes, &no_rehydrate) {
            Err(DecodeError::Version { .. }) => {}
            other => panic!("expected version error, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn corruption_is_an_error_never_a_panic() {
        let m = sample_module(vec![(
            Symbol::intern("x"),
            Binding::Variable(Symbol::intern("x~1")),
        )]);
        let bytes = encode(&m, 1, 2, &[(Symbol::intern("dep"), 3)]).unwrap();
        // truncations
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], &no_rehydrate).is_err());
        }
        // single-byte flips: the content digest guarantees every one is
        // rejected (no flip can silently mutate the decoded artifact)
        for i in 0..bytes.len() {
            let mut dup = bytes.clone();
            dup[i] ^= 0x55;
            assert!(decode(&dup, &no_rehydrate).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn uncacheable_exports_fail_encoding() {
        let mac =
            crate::stxparse::native("m", |_, stx, _| Ok(crate::binding::Expanded::Surface(stx)));
        let m = sample_module(vec![(Symbol::intern("m"), Binding::Native(mac))]);
        assert!(encode(&m, 0, 0, &[]).is_err());
    }

    #[test]
    fn recipes_rehydrate() {
        let mac = crate::stxparse::native_with_recipe(
            "m",
            "test-recipe",
            Datum::sym("payload"),
            |_, stx, _| Ok(crate::binding::Expanded::Surface(stx)),
        );
        let m = sample_module(vec![(Symbol::intern("m"), Binding::Native(mac))]);
        let bytes = encode(&m, 0, 0, &[]).unwrap();
        // without a rehydrator: corrupt
        assert!(decode(&bytes, &no_rehydrate).is_err());
        // with one: the recipe datum comes back
        let a = decode(&bytes, &|tag, d| {
            assert_eq!(tag, Symbol::intern("test-recipe"));
            assert_eq!(d, &Datum::sym("payload"));
            Some(crate::stxparse::native("m", |_, stx, _| {
                Ok(crate::binding::Expanded::Surface(stx))
            }))
        })
        .unwrap();
        assert!(matches!(a.exports[0].1, Binding::Native(_)));
    }

    #[test]
    fn language_digest_is_stable_per_name() {
        assert_eq!(
            language_digest(Symbol::intern("typed/lagoon")),
            language_digest(Symbol::intern("typed/lagoon"))
        );
        assert_ne!(
            language_digest(Symbol::intern("typed/lagoon")),
            language_digest(Symbol::intern("typed/no-opt"))
        );
    }
}
