//! Runtime pattern matching and template instantiation.
//!
//! `syntax-parse` (paper §2.1) compiles into calls to [`match_pattern`];
//! `#'template` forms compile into calls to [`instantiate_template`]. Both
//! run at phase 1 (macro-expansion time) as ordinary hosted computation.
//!
//! ## Pattern grammar
//!
//! | pattern | matches |
//! |---------|---------|
//! | `_` | anything, binds nothing |
//! | `name` | anything, binds `name` |
//! | `name:class` | anything satisfying `class` (`expr`, `id`, `number`, `str`, `boolean`, `keyword`), binds `name` |
//! | literal identifier (from the literals list; `:` is always literal) | that exact identifier |
//! | atom | an `equal?` atom |
//! | `(p … pk ooo q …)` (`ooo` = `...`) | a list with `pk` repeated |
//! | `(p … . r)` | an improper list |

use lagoon_runtime::{RtError, Value};
use lagoon_syntax::{Datum, Symbol, SynData, Syntax};
use std::collections::HashMap;

fn ellipsis() -> Symbol {
    Symbol::intern("...")
}

fn is_ellipsis(s: &Syntax) -> bool {
    s.sym() == Some(ellipsis())
}

fn is_wildcard(s: &Syntax) -> bool {
    s.sym().map(|s| s.with_str(|n| n == "_")).unwrap_or(false)
}

/// Splits `name:class` annotations.
fn split_annotation(sym: Symbol) -> Option<(Symbol, Symbol)> {
    sym.with_str(|s| {
        let idx = s.rfind(':')?;
        if idx == 0 || idx == s.len() - 1 {
            return None;
        }
        Some((Symbol::intern(&s[..idx]), Symbol::intern(&s[idx + 1..])))
    })
}

fn class_accepts(class: Symbol, input: &Syntax) -> bool {
    class.with_str(|class| match class {
        "expr" => !matches!(input.e(), SynData::Atom(Datum::Keyword(_))),
        "id" => input.is_identifier(),
        "number" => matches!(
            input.e(),
            SynData::Atom(Datum::Int(_) | Datum::Float(_) | Datum::Complex(_, _))
        ),
        "str" => matches!(input.e(), SynData::Atom(Datum::Str(_))),
        "boolean" => matches!(input.e(), SynData::Atom(Datum::Bool(_))),
        "keyword" => matches!(input.e(), SynData::Atom(Datum::Keyword(_))),
        _ => true, // unknown classes accept anything
    })
}

/// Lists the pattern variables of `pat` with their ellipsis depths.
pub fn pattern_vars(pat: &Syntax, literals: &[Symbol]) -> Vec<(Symbol, usize)> {
    let mut out = Vec::new();
    collect_vars(pat, literals, 0, &mut out);
    out
}

fn collect_vars(pat: &Syntax, literals: &[Symbol], depth: usize, out: &mut Vec<(Symbol, usize)>) {
    match pat.e() {
        SynData::Atom(Datum::Symbol(sym)) => {
            if is_wildcard(pat) || is_ellipsis(pat) || literals.contains(sym) {
                return;
            }
            let name = split_annotation(*sym).map(|(n, _)| n).unwrap_or(*sym);
            if !out.iter().any(|(n, _)| *n == name) {
                out.push((name, depth));
            }
        }
        SynData::Atom(_) => {}
        SynData::List(items) => {
            let mut i = 0;
            while i < items.len() {
                let rep = items.get(i + 1).map(is_ellipsis).unwrap_or(false);
                collect_vars(&items[i], literals, depth + usize::from(rep), out);
                i += if rep { 2 } else { 1 };
            }
        }
        SynData::Improper(items, tail) => {
            for item in items {
                collect_vars(item, literals, depth, out);
            }
            collect_vars(tail, literals, depth, out);
        }
        SynData::Vector(items) => {
            for item in items {
                collect_vars(item, literals, depth, out);
            }
        }
    }
}

/// Matches `input` against `pat`. Returns the bindings (pattern variable →
/// matched syntax, nested in lists per ellipsis depth), or `None` on
/// mismatch.
pub fn match_pattern(
    pat: &Syntax,
    input: &Syntax,
    literals: &[Symbol],
) -> Option<Vec<(Symbol, Value)>> {
    let mut out = Vec::new();
    match_into(pat, input, literals, &mut out)?;
    Some(out)
}

fn match_into(
    pat: &Syntax,
    input: &Syntax,
    literals: &[Symbol],
    out: &mut Vec<(Symbol, Value)>,
) -> Option<()> {
    match pat.e() {
        SynData::Atom(Datum::Symbol(sym)) => {
            if is_wildcard(pat) {
                return Some(());
            }
            if *sym == Symbol::intern(":") || literals.contains(sym) {
                return if input.sym() == Some(*sym) {
                    Some(())
                } else {
                    None
                };
            }
            match split_annotation(*sym) {
                Some((name, class)) => {
                    if class_accepts(class, input) {
                        out.push((name, Value::Syntax(input.clone())));
                        Some(())
                    } else {
                        None
                    }
                }
                None => {
                    out.push((*sym, Value::Syntax(input.clone())));
                    Some(())
                }
            }
        }
        SynData::Atom(d) => {
            if let SynData::Atom(di) = input.e() {
                if d == di {
                    return Some(());
                }
            }
            None
        }
        SynData::List(pitems) => {
            let iitems = input.as_list()?;
            match_list(pitems, iitems, literals, out)
        }
        SynData::Improper(pitems, ptail) => {
            // match a prefix, then the tail pattern against the remainder
            let iitems = match input.e() {
                SynData::List(items) => items.clone(),
                SynData::Improper(items, _) => items.clone(),
                _ => return None,
            };
            if iitems.len() < pitems.len() {
                return None;
            }
            for (p, i) in pitems.iter().zip(&iitems) {
                match_into(p, i, literals, out)?;
            }
            let remainder = match input.e() {
                SynData::List(items) => {
                    input.with_data(SynData::List(items[pitems.len()..].to_vec()))
                }
                SynData::Improper(items, tail) => {
                    let rest = items[pitems.len()..].to_vec();
                    if rest.is_empty() {
                        (**tail).clone()
                    } else {
                        input.with_data(SynData::Improper(rest, tail.clone()))
                    }
                }
                _ => return None,
            };
            match_into(ptail, &remainder, literals, out)
        }
        SynData::Vector(pitems) => match input.e() {
            SynData::Vector(iitems) => match_list(pitems, iitems, literals, out),
            _ => None,
        },
    }
}

fn match_list(
    pitems: &[Syntax],
    iitems: &[Syntax],
    literals: &[Symbol],
    out: &mut Vec<(Symbol, Value)>,
) -> Option<()> {
    // find a single ellipsis position
    let ell = pitems.iter().position(is_ellipsis).filter(|&j| j > 0);
    match ell {
        None => {
            if pitems.len() != iitems.len() {
                return None;
            }
            for (p, i) in pitems.iter().zip(iitems) {
                match_into(p, i, literals, out)?;
            }
            Some(())
        }
        Some(j) => {
            let rep = &pitems[j - 1];
            let pre = &pitems[..j - 1];
            let post = &pitems[j + 1..];
            if post.iter().any(is_ellipsis) {
                // one ellipsis per list level
                return None;
            }
            if iitems.len() < pre.len() + post.len() {
                return None;
            }
            for (p, i) in pre.iter().zip(iitems) {
                match_into(p, i, literals, out)?;
            }
            let mid = &iitems[pre.len()..iitems.len() - post.len()];
            let vars = pattern_vars(rep, literals);
            let mut collected: Vec<(Symbol, Vec<Value>)> =
                vars.iter().map(|(n, _)| (*n, Vec::new())).collect();
            for item in mid {
                let mut sub = Vec::new();
                match_into(rep, item, literals, &mut sub)?;
                for (name, v) in sub {
                    if let Some(slot) = collected.iter_mut().find(|(n, _)| *n == name) {
                        slot.1.push(v);
                    }
                }
            }
            for (name, vs) in collected {
                out.push((name, Value::list(vs)));
            }
            for (p, i) in post.iter().zip(&iitems[iitems.len() - post.len()..]) {
                match_into(p, i, literals, out)?;
            }
            Some(())
        }
    }
}

/// Instantiates a template against pattern-variable `bindings`.
///
/// Identifiers whose symbol appears in `bindings` are replaced by the
/// matched syntax; elements followed by `...` iterate over list-valued
/// bindings. `(... escaped)` yields `escaped` without substitution.
///
/// # Errors
///
/// Returns an error when ellipsis depths don't line up (a variable used at
/// the wrong depth, or no iteration variable under an `...`).
pub fn instantiate_template(
    tmpl: &Syntax,
    bindings: &HashMap<Symbol, Value>,
) -> Result<Syntax, RtError> {
    match tmpl.e() {
        SynData::Atom(Datum::Symbol(sym)) => match bindings.get(sym) {
            Some(v) => match v.as_syntax() {
                Some(s) => Ok(s.clone()),
                None => Err(RtError::user(format!(
                    "syntax template: pattern variable {sym} used at the wrong ellipsis depth"
                ))
                .with_span(tmpl.span())),
            },
            None => Ok(tmpl.clone()),
        },
        SynData::Atom(_) => Ok(tmpl.clone()),
        SynData::List(items) => {
            // (... escaped) escape
            if items.len() == 2 && is_ellipsis(&items[0]) {
                return Ok(items[1].clone());
            }
            let mut out = Vec::new();
            let mut i = 0;
            while i < items.len() {
                let elem = &items[i];
                let mut reps = 0usize;
                while items.get(i + 1 + reps).map(is_ellipsis).unwrap_or(false) {
                    reps += 1;
                }
                if reps == 0 {
                    out.push(instantiate_template(elem, bindings)?);
                    i += 1;
                } else {
                    let expanded = expand_ellipsis(elem, bindings, reps)?;
                    out.extend(expanded);
                    i += 1 + reps;
                }
            }
            Ok(tmpl.with_data(SynData::List(out)))
        }
        SynData::Improper(items, tail) => {
            let items = items
                .iter()
                .map(|s| instantiate_template(s, bindings))
                .collect::<Result<Vec<_>, _>>()?;
            let tail = instantiate_template(tail, bindings)?;
            Ok(tmpl.with_data(SynData::Improper(items, Box::new(tail))))
        }
        SynData::Vector(items) => {
            let items = items
                .iter()
                .map(|s| instantiate_template(s, bindings))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(tmpl.with_data(SynData::Vector(items)))
        }
    }
}

/// Expands `elem ...` (with `reps` ellipses): iterates list-valued
/// bindings one level per ellipsis, flattening.
fn expand_ellipsis(
    elem: &Syntax,
    bindings: &HashMap<Symbol, Value>,
    reps: usize,
) -> Result<Vec<Syntax>, RtError> {
    // variables in elem that are bound to lists drive the iteration
    let mut driver_names = Vec::new();
    collect_template_vars(elem, bindings, &mut driver_names);
    let drivers: Vec<(Symbol, Vec<Value>)> = driver_names
        .iter()
        .filter_map(|n| match bindings.get(n) {
            Some(v) => v.list_to_vec().map(|items| (*n, items)),
            None => None,
        })
        .collect();
    if drivers.is_empty() {
        return Err(RtError::user(
            "syntax template: no pattern variable to iterate under ellipsis",
        )
        .with_span(elem.span()));
    }
    let len = drivers[0].1.len();
    if drivers.iter().any(|(_, items)| items.len() != len) {
        return Err(
            RtError::user("syntax template: ellipsis variables have mismatched lengths")
                .with_span(elem.span()),
        );
    }
    let mut out = Vec::new();
    for i in 0..len {
        let mut sub = bindings.clone();
        for (name, items) in &drivers {
            sub.insert(*name, items[i].clone());
        }
        if reps == 1 {
            out.push(instantiate_template(elem, &sub)?);
        } else {
            out.extend(expand_ellipsis(elem, &sub, reps - 1)?);
        }
    }
    Ok(out)
}

fn collect_template_vars(tmpl: &Syntax, bindings: &HashMap<Symbol, Value>, out: &mut Vec<Symbol>) {
    match tmpl.e() {
        SynData::Atom(Datum::Symbol(sym)) => {
            if bindings.contains_key(sym) && !out.contains(sym) {
                out.push(*sym);
            }
        }
        SynData::Atom(_) => {}
        SynData::List(items) | SynData::Vector(items) => {
            for item in items {
                collect_template_vars(item, bindings, out);
            }
        }
        SynData::Improper(items, tail) => {
            for item in items {
                collect_template_vars(item, bindings, out);
            }
            collect_template_vars(tail, bindings, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_syntax::read_syntax;

    fn stx(src: &str) -> Syntax {
        read_syntax(src, "<t>").unwrap()
    }

    fn m(pat: &str, input: &str) -> Option<Vec<(Symbol, Value)>> {
        match_pattern(&stx(pat), &stx(input), &[])
    }

    fn binding<'a>(bs: &'a [(Symbol, Value)], name: &str) -> &'a Value {
        &bs.iter().find(|(n, _)| *n == Symbol::from(name)).unwrap().1
    }

    #[test]
    fn simple_variable_match() {
        let bs = m("x", "(+ 1 2)").unwrap();
        let s = binding(&bs, "x").as_syntax().unwrap();
        assert_eq!(s.to_datum().to_string(), "(+ 1 2)");
    }

    #[test]
    fn wildcard_and_literals() {
        assert!(m("_", "anything").is_some());
        assert!(m("_", "anything").unwrap().is_empty());
        // `:` always matches literally
        let bs = m("(_ name : ty)", "(define: x : Integer)").unwrap();
        assert_eq!(bs.len(), 2);
        assert!(m("(_ name : ty)", "(define: x = Integer)").is_none());
    }

    #[test]
    fn annotated_classes() {
        let bs = m("(f x:id n:number)", "(g y 3)").unwrap();
        let s = binding(&bs, "x").as_syntax().unwrap();
        assert_eq!(s.sym().unwrap().as_str(), "y");
        assert!(m("(f x:id)", "(g 3)").is_none());
        assert!(m("(f n:number)", "(g z)").is_none());
        assert!(m("(f s:str)", "(g \"hi\")").is_some());
    }

    #[test]
    fn atom_patterns() {
        assert!(m("42", "42").is_some());
        assert!(m("42", "43").is_none());
        assert!(m("#t", "#t").is_some());
    }

    #[test]
    fn fixed_list_patterns() {
        assert!(m("(a b)", "(1 2)").is_some());
        assert!(m("(a b)", "(1 2 3)").is_none());
        assert!(m("(a (b c))", "(1 (2 3))").is_some());
        assert!(m("(a (b c))", "(1 2)").is_none());
    }

    #[test]
    fn ellipsis_matching() {
        let bs = m("(f body ...)", "(do-it 1 2 3)").unwrap();
        let body = binding(&bs, "body").list_to_vec().unwrap();
        assert_eq!(body.len(), 3);
        // empty repetition
        let bs = m("(f body ...)", "(do-it)").unwrap();
        assert_eq!(binding(&bs, "body").list_to_vec().unwrap().len(), 0);
        // trailing fixed elements after the ellipsis
        let bs = m("(f x ... last)", "(g 1 2 3)").unwrap();
        assert_eq!(binding(&bs, "x").list_to_vec().unwrap().len(), 2);
        let s = binding(&bs, "last").as_syntax().unwrap();
        assert_eq!(s.to_datum().to_string(), "3");
    }

    #[test]
    fn nested_ellipsis_depth() {
        let pat = stx("(let ([x v] ...) body ...)");
        let vars = pattern_vars(&pat, &[]);
        let depth = |name: &str| vars.iter().find(|(n, _)| n.as_str() == name).unwrap().1;
        assert_eq!(depth("x"), 1);
        assert_eq!(depth("v"), 1);
        assert_eq!(depth("body"), 1);
        assert_eq!(depth("let"), 0);

        let bs = m("(let ([x v] ...) body)", "(let ([a 1] [b 2]) (+ a b))").unwrap();
        assert_eq!(binding(&bs, "x").list_to_vec().unwrap().len(), 2);
    }

    #[test]
    fn improper_patterns() {
        let bs = m("(a . rest)", "(1 2 3)").unwrap();
        let s = binding(&bs, "rest").as_syntax().unwrap();
        assert_eq!(s.to_datum().to_string(), "(2 3)");
        assert!(m("(a b . rest)", "(1)").is_none());
    }

    #[test]
    fn template_substitution() {
        let bs: HashMap<Symbol, Value> = m("(f a b)", "(g 1 2)").unwrap().into_iter().collect();
        let out = instantiate_template(&stx("(+ a b)"), &bs).unwrap();
        assert_eq!(out.to_datum().to_string(), "(+ 1 2)");
    }

    #[test]
    fn template_ellipsis() {
        let bs: HashMap<Symbol, Value> = m("(f body ...)", "(g 1 2 3)")
            .unwrap()
            .into_iter()
            .collect();
        let out = instantiate_template(&stx("(begin body ...)"), &bs).unwrap();
        assert_eq!(out.to_datum().to_string(), "(begin 1 2 3)");
        let out = instantiate_template(&stx("(list (q body) ...)"), &bs).unwrap();
        assert_eq!(out.to_datum().to_string(), "(list (q 1) (q 2) (q 3))");
    }

    #[test]
    fn template_nested_ellipsis() {
        let bs: HashMap<Symbol, Value> = m("(let ([x v] ...) body ...)", "(let ([a 1] [b 2]) a b)")
            .unwrap()
            .into_iter()
            .collect();
        let out = instantiate_template(&stx("((lambda (x ...) body ...) v ...)"), &bs).unwrap();
        assert_eq!(out.to_datum().to_string(), "((lambda (a b) a b) 1 2)");
    }

    #[test]
    fn template_depth_errors() {
        let bs: HashMap<Symbol, Value> =
            m("(f body ...)", "(g 1 2)").unwrap().into_iter().collect();
        // body at depth 1 used without ellipsis
        assert!(instantiate_template(&stx("body"), &bs).is_err());
        // ellipsis with no driver
        assert!(instantiate_template(&stx("(q ...)"), &bs).is_err());
    }

    #[test]
    fn template_escape() {
        let bs = HashMap::new();
        let out = instantiate_template(&stx("(... (x ...))"), &bs).unwrap();
        assert_eq!(out.to_datum().to_string(), "(x ...)");
    }

    #[test]
    fn mismatched_ellipsis_lengths_error() {
        let mut bs = HashMap::new();
        bs.insert(
            Symbol::from("a"),
            Value::list(vec![Value::Syntax(stx("1"))]),
        );
        bs.insert(
            Symbol::from("b"),
            Value::list(vec![Value::Syntax(stx("1")), Value::Syntax(stx("2"))]),
        );
        assert!(instantiate_template(&stx("((a b) ...)"), &bs).is_err());
    }
}
