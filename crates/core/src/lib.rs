//! # lagoon-core
//!
//! The language-extension substrate of Lagoon — the machinery the paper
//! *Languages as Libraries* (PLDI 2011) describes:
//!
//! * a sets-of-scopes **hygienic macro expander** ([`expander`]) with
//!   alpha-renaming to globally unique names;
//! * **binding tables** and `free-identifier=?` resolution ([`binding`]);
//! * `syntax-parse`, `#'` templates, `with-syntax`, `syntax-rules`, and
//!   `define-syntax` ([`stxparse`], [`template`]);
//! * `local-expand` to the core-forms grammar (paper §2.2);
//! * a **module system** with `#lang` languages, `#%module-begin` hooks,
//!   separate compilation, and persisted compile-time declarations
//!   ([`module`]);
//! * the base language's surface macros and hosted prelude ([`prelude`]).
//!
//! Language implementations — such as `lagoon-typed`, the typed sister
//! language — plug in exclusively through the public API here: native
//! transformers, syntax properties, `local-expand`, and the compile-time
//! declaration table. No expander or compiler internals are special-cased
//! for them, which is the paper's thesis.

#![warn(missing_docs)]
// panic-free core: unwrap/expect in non-test code must be justified
// with an explicit #[allow] (CI promotes these to errors)
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod binding;
pub mod build;
pub mod expander;
pub mod module;
pub mod prelude;
pub mod store;
pub mod stxparse;
pub mod template;

pub use binding::{Binding, BindingTable, CoreFormKind, ExpandCtx, Expanded, NativeMacro};
pub use expander::{current_expander, syntax_error, Expander, ProvideItem};
pub use module::{CompiledModule, EngineKind, Language, ModuleRegistry};
pub use stxparse::{native, native_with_recipe, phase1_natives};
