//! A hand-rolled HTTP/1.1 layer: request reading, response writing, and
//! a small keep-alive client.
//!
//! Like the daemon's NDJSON protocol (`lagoon_server::json`), this is
//! std-only and covers exactly what the gateway needs: `GET`/`POST`
//! with `Content-Length` bodies, keep-alive (HTTP/1.1 default, honored
//! for 1.0 with `Connection: keep-alive`), and pipelining — requests
//! are read sequentially off one buffered stream and responses written
//! back in order, so a client that writes several requests up front
//! gets its responses in request order.
//!
//! Every input dimension is bounded: the request line, a single header,
//! the total header block, the header count, and the declared body
//! length (the same cap the daemon enforces on an NDJSON line). Framing
//! errors (a malformed request line, an unparsable `Content-Length`)
//! poison the stream position, so those responses close the
//! connection; cleanly-framed application errors (unknown route, bad
//! JSON body) keep it open.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Total header-block byte budget per request.
pub const MAX_HEADER_BYTES: usize = 32 * 1024;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 100;

/// The parsed head of a request: everything before the body.
#[derive(Clone, Debug)]
pub struct Head {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target, query string included.
    pub target: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0`.
    pub http11: bool,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
}

/// A fully-read request (head plus body).
#[derive(Clone, Debug)]
pub struct Request {
    /// The request head.
    pub head: Head,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Head {
    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target with any query string stripped.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the client asked for (or defaults to) connection reuse.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// Whether the client sent `Expect: 100-continue` and is waiting
    /// for an interim response before transmitting the body.
    pub fn expects_continue(&self) -> bool {
        self.header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    }
}

impl Request {
    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.head.header(name)
    }

    /// The target with any query string stripped.
    pub fn path(&self) -> &str {
        self.head.path()
    }
}

/// Everything that can go wrong reading a request. [`error_status`]
/// maps the protocol-level variants to a status code and whether the
/// connection can survive the error.
#[derive(Debug)]
pub enum HttpError {
    /// EOF before the first request byte: the clean end of a keep-alive
    /// connection, not an error to report.
    Closed,
    /// The transport failed mid-request.
    Io(std::io::Error),
    /// The request line did not parse (wrong shape, bad method bytes).
    BadRequestLine,
    /// The request line exceeded [`MAX_REQUEST_LINE`].
    RequestLineTooLong,
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion,
    /// A single header, the header block, or the header count exceeded
    /// its cap.
    HeadersTooLarge,
    /// A header line without a `:` separator (or invalid bytes).
    BadHeader,
    /// A body-carrying method without a `Content-Length`.
    LengthRequired,
    /// An unparsable `Content-Length` value.
    BadContentLength,
    /// A `Transfer-Encoding` the gateway does not implement (chunked).
    UnsupportedTransferEncoding,
    /// The declared `Content-Length` exceeds the configured cap.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured cap it exceeded.
        cap: usize,
    },
}

/// The status code, a human-readable message, and whether the
/// connection must close, for a protocol-level [`HttpError`]. `None`
/// for [`HttpError::Closed`]/[`HttpError::Io`] (nothing to send).
///
/// Framing errors close: once the parser loses the request boundary
/// the stream position is unrecoverable. `LengthRequired` and
/// `BodyTooLarge` also close — an unread body would be parsed as the
/// next request line.
pub fn error_status(e: &HttpError) -> Option<(u16, String, bool)> {
    match e {
        HttpError::Closed | HttpError::Io(_) => None,
        HttpError::BadRequestLine => Some((400, "malformed request line".to_string(), true)),
        HttpError::RequestLineTooLong => Some((
            414,
            format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
            true,
        )),
        HttpError::UnsupportedVersion => Some((
            505,
            "only HTTP/1.0 and HTTP/1.1 are supported".to_string(),
            true,
        )),
        HttpError::HeadersTooLarge => Some((
            431,
            format!("headers exceed {MAX_HEADER_BYTES} bytes or {MAX_HEADERS} fields"),
            true,
        )),
        HttpError::BadHeader => Some((400, "malformed header".to_string(), true)),
        HttpError::LengthRequired => Some((411, "POST requires Content-Length".to_string(), true)),
        HttpError::BadContentLength => Some((400, "unparsable Content-Length".to_string(), true)),
        HttpError::UnsupportedTransferEncoding => Some((
            501,
            "Transfer-Encoding is not supported; send Content-Length".to_string(),
            true,
        )),
        HttpError::BodyTooLarge { declared, cap } => Some((
            413,
            format!("body of {declared} bytes exceeds the {cap}-byte cap"),
            true,
        )),
    }
}

/// Reads one line terminated by `\n` (tolerating `\r\n`), bounded by
/// `cap` bytes. `Ok(None)` is EOF before any byte.
fn read_line_bounded(
    r: &mut impl BufRead,
    cap: usize,
    over: fn() -> HttpError,
) -> Result<Option<String>, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf().map_err(HttpError::Io)?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            // EOF mid-line: surface what arrived; the caller's parse
            // will reject it if it is not a complete construct.
            break;
        }
        if let Some(pos) = chunk.iter().position(|b| *b == b'\n') {
            if buf.len() + pos > cap {
                r.consume(pos + 1);
                return Err(over());
            }
            buf.extend_from_slice(&chunk[..pos]);
            r.consume(pos + 1);
            break;
        }
        let n = chunk.len();
        if buf.len() + n > cap {
            r.consume(n);
            return Err(over());
        }
        buf.extend_from_slice(chunk);
        r.consume(n);
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::BadHeader)
}

/// Reads and parses the request line and headers. Leading blank lines
/// are skipped (RFC 9112 §2.2).
///
/// # Errors
///
/// Returns [`HttpError::Closed`] on clean EOF, and the protocol-level
/// variants on malformed or oversized input.
pub fn read_head(r: &mut impl BufRead) -> Result<Head, HttpError> {
    let line = loop {
        match read_line_bounded(r, MAX_REQUEST_LINE, || HttpError::RequestLineTooLong)? {
            None => return Err(HttpError::Closed),
            Some(l) if l.is_empty() => continue,
            Some(l) => break l,
        }
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequestLine),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(HttpError::UnsupportedVersion),
        _ => return Err(HttpError::BadRequestLine),
    };
    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = read_line_bounded(r, MAX_HEADER_LINE, || HttpError::HeadersTooLarge)?
            .ok_or(HttpError::BadHeader)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES || headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(Head {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
    })
}

/// Reads the request body declared by `head`, bounded by `max_body`.
/// Methods that carry no body (`GET`, `HEAD`, `DELETE`) return empty
/// without requiring `Content-Length`.
///
/// # Errors
///
/// Returns the cap/framing errors documented on [`HttpError`].
pub fn read_body(r: &mut impl BufRead, head: &Head, max_body: usize) -> Result<Vec<u8>, HttpError> {
    if head
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let declared = match head.header("content-length") {
        Some(v) => Some(
            v.trim()
                .parse::<usize>()
                .map_err(|_| HttpError::BadContentLength)?,
        ),
        None => None,
    };
    let needs_body = matches!(head.method.as_str(), "POST" | "PUT" | "PATCH");
    let len = match (declared, needs_body) {
        (Some(n), _) => n,
        (None, true) => return Err(HttpError::LengthRequired),
        (None, false) => 0,
    };
    if len > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: len,
            cap: max_body,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(body)
}

/// The canonical reason phrase for the status codes the gateway emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Content Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a complete response: status line, `Content-Type:
/// application/json`, `Content-Length`, a `Connection` header matching
/// `keep_alive`, any `extra` headers, and the body.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    extra: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the `100 Continue` interim response.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_continue(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A parsed response on the client side.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// A keep-alive HTTP client connection. [`HttpClient::send`] and
/// [`HttpClient::read_response`] are split so callers can pipeline:
/// write several requests, then read the responses in order.
pub struct HttpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects, with `timeout` bounding connect/read/write.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str, timeout: Option<Duration>) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        // small framed requests; Nagle + delayed ACK would add ~40ms
        // per request otherwise
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Writes one request (with `Content-Length` framing) without
    /// waiting for the response.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(
        &mut self,
        method: &str,
        target: &str,
        extra: &[(&str, String)],
        body: &[u8],
    ) -> std::io::Result<()> {
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nhost: lagoon\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in extra {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()
    }

    /// Reads one response (skipping any `100 Continue` interim).
    ///
    /// # Errors
    ///
    /// Transport failures, or `InvalidData` on malformed framing.
    pub fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        loop {
            let response = self.read_one()?;
            if response.status != 100 {
                return Ok(response);
            }
        }
    }

    fn read_one(&mut self) -> std::io::Result<HttpResponse> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(invalid("connection closed before status line"));
        }
        let mut parts = line.trim_end().splitn(3, ' ');
        let (version, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        if !version.starts_with("HTTP/1.") {
            return Err(invalid("bad status line"));
        }
        let status: u16 = status.parse().map_err(|_| invalid("bad status code"))?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(invalid("connection closed in headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_string(), value.trim().to_string()));
            }
        }
        let len = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }

    /// [`HttpClient::send`] then [`HttpClient::read_response`].
    ///
    /// # Errors
    ///
    /// Propagates transport failures and malformed framing.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        extra: &[(&str, String)],
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        self.send(method, target, extra, body)?;
        self.read_response()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn head_of(raw: &str) -> Result<Head, HttpError> {
        read_head(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    fn request_of(raw: &str, max_body: usize) -> Result<Request, HttpError> {
        let mut r = Cursor::new(raw.as_bytes().to_vec());
        let head = read_head(&mut r)?;
        let body = read_body(&mut r, &head, max_body)?;
        Ok(Request { head, body })
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let req = request_of(
            "POST /v1/run?deep=0 HTTP/1.1\r\nHost: x\r\nX-Lagoon-Trace-Id: t-1\r\ncontent-length: 4\r\n\r\nabcd",
            1024,
        )
        .expect("parse");
        assert_eq!(req.head.method, "POST");
        assert_eq!(req.path(), "/v1/run");
        assert_eq!(req.header("x-lagoon-trace-id"), Some("t-1"));
        assert_eq!(req.body, b"abcd");
        assert!(req.head.keep_alive());
    }

    #[test]
    fn bare_lf_and_leading_blank_lines_are_tolerated() {
        let req = request_of("\r\n\nGET /v1/healthz HTTP/1.1\nhost: x\n\n", 1024).expect("parse");
        assert_eq!(req.head.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        assert!(matches!(
            head_of("NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            head_of("GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            head_of("get /x HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            head_of("GET /x HTTP/2.0\r\n\r\n"),
            Err(HttpError::UnsupportedVersion)
        ));
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert!(matches!(head_of(&long), Err(HttpError::RequestLineTooLong)));
    }

    #[test]
    fn oversized_and_malformed_headers_are_rejected() {
        let big = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "v".repeat(MAX_HEADER_LINE)
        );
        assert!(matches!(head_of(&big), Err(HttpError::HeadersTooLarge)));
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS)
                .map(|i| format!("h{i}: v\r\n"))
                .collect::<String>()
        );
        assert!(matches!(head_of(&many), Err(HttpError::HeadersTooLarge)));
        assert!(matches!(
            head_of("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadHeader)
        ));
    }

    #[test]
    fn content_length_is_validated_and_capped() {
        assert!(matches!(
            request_of(
                "POST /v1/run HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
                1024
            ),
            Err(HttpError::BadContentLength)
        ));
        assert!(matches!(
            request_of("POST /v1/run HTTP/1.1\r\ncontent-length: -1\r\n\r\n", 1024),
            Err(HttpError::BadContentLength)
        ));
        assert!(matches!(
            request_of("POST /v1/run HTTP/1.1\r\nhost: x\r\n\r\n", 1024),
            Err(HttpError::LengthRequired)
        ));
        assert!(matches!(
            request_of(
                "POST /v1/run HTTP/1.1\r\ncontent-length: 2048\r\n\r\n",
                1024
            ),
            Err(HttpError::BodyTooLarge {
                declared: 2048,
                cap: 1024
            })
        ));
        assert!(matches!(
            request_of(
                "POST /v1/run HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                1024
            ),
            Err(HttpError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn keep_alive_defaults_follow_the_version() {
        assert!(head_of("GET / HTTP/1.1\r\n\r\n").unwrap().keep_alive());
        assert!(!head_of("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive());
        assert!(!head_of("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .keep_alive());
        assert!(head_of("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .keep_alive());
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let raw = "POST /v1/run HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi\
                   GET /v1/stats HTTP/1.1\r\n\r\n";
        let mut r = Cursor::new(raw.as_bytes().to_vec());
        let first = read_head(&mut r).expect("first head");
        let body = read_body(&mut r, &first, 1024).expect("first body");
        assert_eq!(body, b"hi");
        let second = read_head(&mut r).expect("second head");
        assert_eq!(second.path(), "/v1/stats");
        assert!(matches!(read_head(&mut r), Err(HttpError::Closed)));
    }

    #[test]
    fn responses_round_trip_through_the_writer() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            &[("retry-after", "1".to_string())],
            b"{}",
            true,
        )
        .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
