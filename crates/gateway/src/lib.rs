//! The lagoon gateway: an HTTP/1.1 front end over a pool of sharded
//! evaluation daemons.
//!
//! The daemon (PR 5–7) speaks a bespoke NDJSON protocol from a single
//! process. The gateway puts a standard transport in front of it and
//! scales it out: `POST /v1/run|expand|check` and `GET
//! /v1/stats|healthz` map onto the existing request taxonomy, and a
//! shard supervisor runs N daemons — spawned `lagoon serve` processes
//! in production, in-process servers in tests — that share compiled
//! modules only through the content-addressed `.lagc` store (made
//! multi-process-safe by PR 3's tmp+rename writes).
//!
//! Routing is least-outstanding-requests with shed-aware failover: a
//! request goes to the shard with the fewest requests in flight, and a
//! shedding rejection (`resource-exhausted` with a `reason`) or a
//! transport failure moves it to the next-least-loaded shard before
//! anything surfaces to the client. Only when *every* shard sheds does
//! the client see a 503 — carrying the daemon's own `retry_after_ms`
//! hint as a `Retry-After` header. PR 6's trace ids thread through
//! HTTP: `x-lagoon-trace-id` in on the request, echoed out on the
//! response, and per-shard phase buckets aggregate in `/v1/stats`.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod http;
pub mod shard;

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lagoon_diag::{Histogram, Limits};
use lagoon_server::json::{self, obj, Json};

use http::Request;
use shard::{Shard, ShardBackend};

/// Options for [`Gateway::start`].
#[derive(Clone)]
pub struct GatewayOptions {
    /// Bind address for the HTTP listener (port 0 picks one).
    pub addr: String,
    /// Number of daemon shards.
    pub shards: usize,
    /// Worker threads per shard daemon.
    pub workers_per_shard: usize,
    /// Per-shard bounded queue capacity.
    pub queue_cap: usize,
    /// How shard daemons run.
    pub backend: ShardBackend,
    /// Shared `.lagc` store directory — the one thing shards share.
    pub cache_dir: Option<PathBuf>,
    /// Directory of `<name>.lag` sources for named modules.
    pub source_root: Option<PathBuf>,
    /// Default per-request limits for the shard daemons.
    pub limits: Limits,
    /// Whether shard workers run the VM peephole pass.
    pub peephole: bool,
    /// HTTP `Content-Length` cap — the same bound the daemon enforces
    /// on an NDJSON line (see `ServeOptions::max_request_bytes`).
    pub max_body_bytes: usize,
    /// Bound on connect/read/write against a shard.
    pub request_timeout: Option<Duration>,
    /// Enables `POST /v1/test/kill-shard` (and the daemons' test ops).
    pub test_ops: bool,
    /// Extra arguments appended to each spawned `serve` command
    /// (process backend only) — e.g. limit flags.
    pub extra_shard_args: Vec<String>,
}

impl Default for GatewayOptions {
    fn default() -> GatewayOptions {
        GatewayOptions {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            workers_per_shard: 2,
            queue_cap: 64,
            backend: ShardBackend::InProcess,
            cache_dir: None,
            source_root: None,
            limits: Limits::default(),
            peephole: true,
            max_body_bytes: 1 << 20,
            request_timeout: Some(Duration::from_secs(30)),
            test_ops: false,
            extra_shard_args: Vec::new(),
        }
    }
}

impl GatewayOptions {
    /// The NDJSON line cap passed to shard daemons: the HTTP body cap
    /// plus headroom, since the gateway re-serializes the body with an
    /// injected `op` (and possibly a `trace_id`) before proxying.
    pub fn shard_request_bytes(&self) -> usize {
        self.max_body_bytes.saturating_mul(2).max(4096)
    }
}

/// HTTP-side counters, split from the shard gauges.
#[derive(Default)]
struct HttpStats {
    requests: u64,
    ok_2xx: u64,
    err_4xx: u64,
    err_5xx: u64,
    /// Requests that were shed by every shard (surfaced as 503).
    sheds: u64,
    /// Requests that succeeded on a shard other than the first pick.
    failovers: u64,
    /// Requests that failed on every shard at the transport level.
    unavailable: u64,
    bytes_in: u64,
    bytes_out: u64,
    per_route: BTreeMap<String, Histogram>,
}

struct GwShared {
    opts: GatewayOptions,
    shards: Vec<Shard>,
    shutdown: AtomicBool,
    started: Instant,
    http: Mutex<HttpStats>,
}

/// A running gateway; call [`Gateway::shutdown`] then [`Gateway::wait`]
/// (or rely on `POST /v1/shutdown` / SIGTERM) to stop it.
pub struct Gateway {
    addr: SocketAddr,
    shared: Arc<GwShared>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the HTTP listener, starts every shard, and spawns the
    /// acceptor and the shard supervisor.
    ///
    /// # Errors
    ///
    /// Returns bind or shard-spawn failures (already-started shards
    /// are stopped before the error surfaces).
    pub fn start(opts: GatewayOptions) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let mut shards = Vec::new();
        for index in 0..opts.shards.max(1) {
            match Shard::start(&opts, index) {
                Ok(shard) => shards.push(shard),
                Err(e) => {
                    for shard in &shards {
                        shard.stop(opts.request_timeout);
                    }
                    return Err(e);
                }
            }
        }
        let shared = Arc::new(GwShared {
            opts,
            shards,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            http: Mutex::new(HttpStats::default()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_main(listener, &shared))
        };
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_main(&shared))
        };
        Ok(Gateway {
            addr,
            shared,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
        })
    }

    /// The bound HTTP address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts shutdown: the acceptor stops taking connections and
    /// [`Gateway::wait`] will drain the shards.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the acceptor and supervisor exit, then drains and
    /// reaps every shard daemon.
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        for shard in &self.shared.shards {
            shard.stop(self.shared.opts.request_timeout);
        }
    }

    /// The gateway's statistics object (`deep` embeds each daemon's
    /// own `stats`).
    pub fn stats_json(&self, deep: bool) -> String {
        stats_json(&self.shared, deep).to_string()
    }
}

fn supervisor_main(shared: &Arc<GwShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        for shard in &shared.shards {
            shard.ensure_live(&shared.opts);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn acceptor_main(listener: TcpListener, shared: &Arc<GwShared>) {
    loop {
        if lagoon_server::daemon::sigterm_triggered() {
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || connection_main(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// One JSON error body in the daemon's error shape, so HTTP clients
/// and NDJSON clients see the same taxonomy.
fn error_body(kind: &str, message: &str, extra: Vec<(&str, Json)>) -> Vec<u8> {
    let mut fields = vec![
        ("kind", Json::Str(kind.to_string())),
        ("message", Json::Str(message.to_string())),
    ];
    fields.extend(extra);
    obj(vec![("ok", Json::Bool(false)), ("error", obj(fields))])
        .to_string()
        .into_bytes()
}

/// A fully-assembled response, ready to write.
struct Outcome {
    status: u16,
    headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Outcome {
    fn new(status: u16, body: Vec<u8>) -> Outcome {
        Outcome {
            status,
            headers: Vec::new(),
            body,
        }
    }
}

fn connection_main(stream: TcpStream, shared: &Arc<GwShared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let mut reader = BufReader::new(stream);
    loop {
        let head = match http::read_head(&mut reader) {
            Ok(head) => head,
            Err(e) => {
                let Some((status, message, _close)) = http::error_status(&e) else {
                    return;
                };
                let body = error_body("protocol", &message, vec![]);
                let _ = http::write_response(&mut writer, status, &[], &body, false);
                return;
            }
        };
        if head.expects_continue() && http::write_continue(&mut writer).is_err() {
            return;
        }
        let body = match http::read_body(&mut reader, &head, shared.opts.max_body_bytes) {
            Ok(body) => body,
            Err(e) => {
                let Some((status, message, _close)) = http::error_status(&e) else {
                    return;
                };
                let kind = if status == 413 {
                    "resource-exhausted"
                } else {
                    "protocol"
                };
                let extra = if status == 413 {
                    vec![
                        ("reason", Json::Str("request-too-large".to_string())),
                        ("retryable", Json::Bool(false)),
                    ]
                } else {
                    vec![]
                };
                let body = error_body(kind, &message, extra);
                let _ = http::write_response(&mut writer, status, &[], &body, false);
                return;
            }
        };
        let keep_alive = head.keep_alive();
        let started = Instant::now();
        let request = Request { head, body };
        let outcome = route(shared, &request);
        {
            let mut stats = shared.http.lock().unwrap_or_else(|e| e.into_inner());
            stats.requests += 1;
            stats.bytes_in += request.body.len() as u64;
            stats.bytes_out += outcome.body.len() as u64;
            match outcome.status {
                200 => stats.ok_2xx += 1,
                400..=499 => stats.err_4xx += 1,
                _ => stats.err_5xx += 1,
            }
            let route_key = request.path().trim_start_matches("/v1/").to_string();
            stats
                .per_route
                .entry(route_key)
                .or_default()
                .record(started.elapsed());
        }
        if http::write_response(
            &mut writer,
            outcome.status,
            &outcome.headers,
            &outcome.body,
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// Routes one request. Application-level failures (unknown route, bad
/// JSON) are cleanly framed responses and keep the connection open.
fn route(shared: &Arc<GwShared>, request: &Request) -> Outcome {
    let method = request.head.method.as_str();
    match (method, request.path()) {
        ("GET", "/v1/healthz") => healthz(shared),
        ("GET", "/v1/stats") => {
            let deep = !request.head.target.contains("deep=0");
            Outcome::new(200, stats_json(shared, deep).to_string().into_bytes())
        }
        ("POST", "/v1/run") => dispatch(shared, request, "run"),
        ("POST", "/v1/expand") => dispatch(shared, request, "expand"),
        ("POST", "/v1/check") => dispatch(shared, request, "check"),
        ("POST", "/v1/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Outcome::new(
                200,
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("draining", Json::Bool(true)),
                ])
                .to_string()
                .into_bytes(),
            )
        }
        ("POST", "/v1/test/kill-shard") if shared.opts.test_ops => kill_shard(shared, request),
        (
            _,
            "/v1/healthz" | "/v1/stats" | "/v1/run" | "/v1/expand" | "/v1/check" | "/v1/shutdown",
        ) => Outcome::new(
            405,
            error_body(
                "protocol",
                &format!("method {method} not allowed here"),
                vec![],
            ),
        ),
        (_, path) => Outcome::new(
            404,
            error_body("protocol", &format!("no route for {path}"), vec![]),
        ),
    }
}

fn healthz(shared: &Arc<GwShared>) -> Outcome {
    let live = shared.shards.iter().filter(|s| s.is_live()).count();
    let total = shared.shards.len();
    let ok = live >= 1 && !shared.shutdown.load(Ordering::SeqCst);
    let body = obj(vec![
        ("ok", Json::Bool(ok)),
        ("live", Json::Num(live as f64)),
        ("shards", Json::Num(total as f64)),
    ])
    .to_string()
    .into_bytes();
    Outcome::new(if ok { 200 } else { 503 }, body)
}

fn kill_shard(shared: &Arc<GwShared>, request: &Request) -> Outcome {
    let parsed = std::str::from_utf8(&request.body)
        .ok()
        .and_then(|s| json::parse(s).ok());
    let index = parsed
        .as_ref()
        .and_then(|p| p.get("shard"))
        .and_then(Json::as_u64)
        .unwrap_or(0) as usize;
    match shared.shards.get(index) {
        None => Outcome::new(
            400,
            error_body("protocol", &format!("no shard {index}"), vec![]),
        ),
        Some(shard) => {
            shard.kill();
            Outcome::new(
                200,
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("killed", Json::Num(index as f64)),
                ])
                .to_string()
                .into_bytes(),
            )
        }
    }
}

/// Whether a proxied daemon response is a shedding rejection
/// (admission control, not a program error), and its retry hint.
fn shed_info(parsed: &Json) -> Option<(bool, Option<u64>)> {
    let err = parsed.get("error")?;
    if err.get("kind").and_then(Json::as_str) != Some("resource-exhausted") {
        return None;
    }
    err.get("reason").and_then(Json::as_str)?;
    let retryable = err.get("retryable").and_then(Json::as_bool) == Some(true);
    let hint = err.get("retry_after_ms").and_then(Json::as_u64);
    Some((retryable, hint))
}

/// Proxies a run/expand/check request to the shard pool:
/// least-outstanding first, failing over across shards on transport
/// errors and sheds, so a single dead or saturated shard is invisible
/// to the client.
fn dispatch(shared: &Arc<GwShared>, request: &Request, op: &str) -> Outcome {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => {
            return Outcome::new(400, error_body("protocol", "body is not UTF-8", vec![]));
        }
    };
    let mut parsed = if text.trim().is_empty() {
        Json::Obj(BTreeMap::new())
    } else {
        match json::parse(text) {
            Ok(p @ Json::Obj(_)) => p,
            Ok(_) => {
                return Outcome::new(
                    400,
                    error_body("protocol", "body must be a JSON object", vec![]),
                );
            }
            Err(e) => {
                return Outcome::new(
                    400,
                    error_body("protocol", &format!("bad JSON body: {e}"), vec![]),
                );
            }
        }
    };
    if let Json::Obj(map) = &mut parsed {
        // The route determines the op — a body-supplied "op" cannot
        // smuggle shutdown/test ops through the proxy.
        map.insert("op".to_string(), Json::Str(op.to_string()));
        if let Some(id) = request.header("x-lagoon-trace-id") {
            if !id.is_empty() {
                map.insert(
                    "trace_id".to_string(),
                    Json::Str(id.chars().take(64).collect()),
                );
            }
        }
    }
    let line = parsed.to_string();

    // Least-outstanding routing: try shards from least to most loaded.
    let mut order: Vec<usize> = (0..shared.shards.len()).collect();
    order.sort_by_key(|i| shared.shards[*i].outstanding.load(Ordering::Relaxed));

    let mut last_shed: Option<(String, usize, Option<u64>)> = None;
    for (attempt, &index) in order.iter().enumerate() {
        let shard = &shared.shards[index];
        shard.outstanding.fetch_add(1, Ordering::Relaxed);
        let result = shard.proxy(&line, shared.opts.request_timeout);
        shard.outstanding.fetch_sub(1, Ordering::Relaxed);
        match result {
            Err(_) => continue,
            Ok(response) => {
                let parsed = json::parse(&response).unwrap_or(Json::Null);
                if let Some((_retryable, hint)) = shed_info(&parsed) {
                    // Shed — try the next shard (even a non-retryable
                    // "shutting-down" shed: another shard may take it).
                    last_shed = Some((response, index, hint));
                    continue;
                }
                if attempt > 0 {
                    let mut stats = shared.http.lock().unwrap_or_else(|e| e.into_inner());
                    stats.failovers += 1;
                }
                return respond(&parsed, response, index);
            }
        }
    }

    if let Some((response, index, hint)) = last_shed {
        let mut stats = shared.http.lock().unwrap_or_else(|e| e.into_inner());
        stats.sheds += 1;
        drop(stats);
        let ms = hint.unwrap_or(100);
        let mut outcome = Outcome::new(503, response.into_bytes());
        outcome
            .headers
            .push(("retry-after", ms.div_ceil(1000).max(1).to_string()));
        outcome
            .headers
            .push(("x-lagoon-retry-after-ms", ms.to_string()));
        outcome.headers.push(("x-lagoon-shard", index.to_string()));
        return outcome;
    }

    let mut stats = shared.http.lock().unwrap_or_else(|e| e.into_inner());
    stats.unavailable += 1;
    drop(stats);
    let mut outcome = Outcome::new(
        502,
        error_body(
            "unavailable",
            "no shard could take the request",
            vec![
                ("retryable", Json::Bool(true)),
                ("retry_after_ms", Json::Num(200.0)),
            ],
        ),
    );
    outcome
        .headers
        .push(("x-lagoon-retry-after-ms", "200".to_string()));
    outcome
}

/// Maps a daemon response onto an HTTP status. The status reflects the
/// *serving* outcome, not the program's: protocol misuse is 400,
/// daemon internal errors are 500, and program-level results — values
/// and type/runtime/budget errors alike — are 200 with the structured
/// body, because the gateway served them successfully.
fn respond(parsed: &Json, response: String, shard_index: usize) -> Outcome {
    let status = match parsed
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
    {
        Some("protocol") => 400,
        Some("internal") => 500,
        _ => 200,
    };
    let mut outcome = Outcome::new(status, response.into_bytes());
    outcome
        .headers
        .push(("x-lagoon-shard", shard_index.to_string()));
    if let Some(id) = parsed.get("trace_id").and_then(Json::as_str) {
        outcome.headers.push(("x-lagoon-trace-id", id.to_string()));
    }
    outcome
}

/// The gateway statistics object: HTTP counters, per-route latency
/// histograms, per-shard gauges with aggregated phase buckets, and
/// (when `deep`) each daemon's own `stats` object embedded.
fn stats_json(shared: &Arc<GwShared>, deep: bool) -> Json {
    let http = {
        let stats = shared.http.lock().unwrap_or_else(|e| e.into_inner());
        let mut routes = BTreeMap::new();
        for (route, h) in &stats.per_route {
            let parsed = json::parse(&h.to_json()).unwrap_or(Json::Null);
            routes.insert(route.clone(), parsed);
        }
        obj(vec![
            ("requests", Json::Num(stats.requests as f64)),
            ("ok_2xx", Json::Num(stats.ok_2xx as f64)),
            ("err_4xx", Json::Num(stats.err_4xx as f64)),
            ("err_5xx", Json::Num(stats.err_5xx as f64)),
            ("sheds", Json::Num(stats.sheds as f64)),
            ("failovers", Json::Num(stats.failovers as f64)),
            ("unavailable", Json::Num(stats.unavailable as f64)),
            ("bytes_in", Json::Num(stats.bytes_in as f64)),
            ("bytes_out", Json::Num(stats.bytes_out as f64)),
            ("routes", Json::Obj(routes)),
        ])
    };
    let shard_gauges: Vec<Json> = shared.shards.iter().map(Shard::gauges).collect();
    let live = shared.shards.iter().filter(|s| s.is_live()).count();
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        (
            "uptime_ms",
            Json::Num(shared.started.elapsed().as_secs_f64() * 1e3),
        ),
        ("shards", Json::Num(shared.shards.len() as f64)),
        (
            "workers_per_shard",
            Json::Num(shared.opts.workers_per_shard as f64),
        ),
        ("live", Json::Num(live as f64)),
        ("http", http),
        ("shard", Json::Arr(shard_gauges)),
    ];
    if deep {
        let daemons: Vec<Json> = shared
            .shards
            .iter()
            .map(|s| {
                s.daemon_stats(shared.opts.request_timeout)
                    .unwrap_or(Json::Null)
            })
            .collect();
        fields.push(("daemons", Json::Arr(daemons)));
    }
    obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_info_classifies_rejections() {
        let shed = json::parse(
            r#"{"ok":false,"error":{"kind":"resource-exhausted","message":"m",
                "reason":"queue-full","retryable":true,"retry_after_ms":25}}"#,
        )
        .unwrap();
        assert_eq!(shed_info(&shed), Some((true, Some(25))));
        // A program that exhausted its own budget has no "reason" and
        // must NOT be failed over: rerunning it elsewhere wastes a
        // second shard's time on the same deterministic outcome.
        let budget = json::parse(
            r#"{"ok":false,"error":{"kind":"resource-exhausted","message":"m","budget":"vm-steps"}}"#,
        )
        .unwrap();
        assert_eq!(shed_info(&budget), None);
        let ok = json::parse(r#"{"ok":true,"value":"3"}"#).unwrap();
        assert_eq!(shed_info(&ok), None);
    }

    #[test]
    fn respond_maps_outcomes_to_statuses() {
        let ok = json::parse(r#"{"ok":true,"value":"3","trace_id":"t-9"}"#).unwrap();
        let outcome = respond(&ok, ok.to_string(), 1);
        assert_eq!(outcome.status, 200);
        assert!(outcome
            .headers
            .iter()
            .any(|(k, v)| *k == "x-lagoon-trace-id" && v == "t-9"));
        assert!(outcome
            .headers
            .iter()
            .any(|(k, v)| *k == "x-lagoon-shard" && v == "1"));
        let protocol =
            json::parse(r#"{"ok":false,"error":{"kind":"protocol","message":"m"}}"#).unwrap();
        assert_eq!(respond(&protocol, protocol.to_string(), 0).status, 400);
        let internal =
            json::parse(r#"{"ok":false,"error":{"kind":"internal","message":"m"}}"#).unwrap();
        assert_eq!(respond(&internal, internal.to_string(), 0).status, 500);
        // Program-level errors are 200: the gateway served the request.
        let type_err =
            json::parse(r#"{"ok":false,"error":{"kind":"type","message":"m"}}"#).unwrap();
        assert_eq!(respond(&type_err, type_err.to_string(), 0).status, 200);
    }
}
