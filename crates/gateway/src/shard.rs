//! Shard management: each shard is one evaluation daemon — a spawned
//! `lagoon serve` process or an in-process [`Server`] — plus the
//! gateway-side state needed to route to it: a pool of idle NDJSON
//! connections, an outstanding-request gauge for least-outstanding
//! routing, and failure counters.
//!
//! The supervisor tick ([`Shard::ensure_live`]) is PR 7's worker
//! respawn pattern lifted to process granularity: a shard whose
//! process exits (crash, kill) is respawned in place with the same
//! store directory, and the connection pool is flushed so stale
//! sockets never serve the new address.

use std::io::{BufRead, BufReader};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use lagoon_server::client::Connection;
use lagoon_server::json::{obj, Json};
use lagoon_server::{ServeOptions, Server};

use crate::GatewayOptions;

/// How a shard's daemon runs.
#[derive(Clone, Debug)]
pub enum ShardBackend {
    /// Spawn `cmd... serve …` as a child process (the production
    /// shape: shards are isolated OS processes sharing only the
    /// content-addressed store).
    Process {
        /// The command prefix, usually `[path-to-lagoon-binary]`.
        cmd: Vec<String>,
    },
    /// Run the daemon on threads inside this process (tests and the
    /// bench harness's fallback when no `lagoon` binary is around).
    InProcess,
}

enum Runtime {
    Process(std::process::Child),
    InProcess(Box<Server>),
    /// Killed or exited; the supervisor respawns it on its next tick.
    Dead,
}

struct ShardInner {
    addr: String,
    runtime: Runtime,
    /// Idle keep-alive connections to this shard, reused across
    /// requests (capped; see [`Shard::park`]).
    idle: Vec<Connection>,
}

/// One shard: its running daemon and the routing state around it.
pub struct Shard {
    /// The shard's position in the gateway's shard vector.
    pub index: usize,
    inner: Mutex<ShardInner>,
    /// Requests currently in flight against this shard — the
    /// least-outstanding routing key.
    pub outstanding: AtomicUsize,
    /// Requests this shard completed (any response, shed or not).
    pub done: AtomicU64,
    /// Responses that were shedding rejections.
    pub sheds: AtomicU64,
    /// Transport failures talking to this shard.
    pub conn_errors: AtomicU64,
    /// Times the supervisor respawned this shard's daemon.
    pub respawns: AtomicU64,
    /// Aggregated per-phase milliseconds from proxied responses
    /// (read/expand/typecheck/… buckets, PR 6's trace taxonomy).
    phases: Mutex<std::collections::BTreeMap<String, f64>>,
}

/// Most idle connections parked per shard.
const IDLE_POOL_CAP: usize = 8;

/// Starts a backend per `opts`, returning its address and runtime.
fn start_backend(opts: &GatewayOptions, index: usize) -> std::io::Result<(String, Runtime)> {
    match &opts.backend {
        ShardBackend::InProcess => {
            let server = Server::start(ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: opts.workers_per_shard,
                queue_cap: opts.queue_cap,
                cache_dir: opts.cache_dir.clone(),
                source_root: opts.source_root.clone(),
                limits: opts.limits,
                peephole: opts.peephole,
                recycle_after: 0,
                test_ops: opts.test_ops,
                max_request_bytes: opts.shard_request_bytes(),
            })?;
            Ok((
                server.addr().to_string(),
                Runtime::InProcess(Box::new(server)),
            ))
        }
        ShardBackend::Process { cmd } => {
            let (program, prefix) = cmd
                .split_first()
                .ok_or_else(|| std::io::Error::other("empty shard command"))?;
            let mut command = std::process::Command::new(program);
            command.args(prefix);
            command.args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                &opts.workers_per_shard.to_string(),
                "--queue-cap",
                &opts.queue_cap.to_string(),
                "--max-request-bytes",
                &opts.shard_request_bytes().to_string(),
            ]);
            if let Some(dir) = &opts.cache_dir {
                command.args(["--cache-dir", &dir.display().to_string()]);
            }
            if let Some(root) = &opts.source_root {
                command.args(["--root", &root.display().to_string()]);
            }
            if !opts.peephole {
                command.arg("--no-peephole");
            }
            if opts.test_ops {
                command.arg("--test-ops");
            }
            command.args(&opts.extra_shard_args);
            command
                .stdin(std::process::Stdio::null())
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::inherit());
            let mut child = command.spawn()?;
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| std::io::Error::other("shard child has no stdout"))?;
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            let addr = loop {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::other(format!(
                        "shard {index} exited before announcing its address"
                    )));
                }
                if let Some(rest) = line.trim().strip_prefix("listening on ") {
                    break rest.to_string();
                }
            };
            // Keep draining the child's stdout so it can never block on
            // a full pipe (the daemon prints final stats on exit).
            std::thread::spawn(move || {
                let mut sink = String::new();
                loop {
                    sink.clear();
                    match reader.read_line(&mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            });
            Ok((addr, Runtime::Process(child)))
        }
    }
}

impl Shard {
    /// Starts shard `index` per the gateway options.
    ///
    /// # Errors
    ///
    /// Propagates spawn/bind failures.
    pub fn start(opts: &GatewayOptions, index: usize) -> std::io::Result<Shard> {
        let (addr, runtime) = start_backend(opts, index)?;
        Ok(Shard {
            index,
            inner: Mutex::new(ShardInner {
                addr,
                runtime,
                idle: Vec::new(),
            }),
            outstanding: AtomicUsize::new(0),
            done: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            conn_errors: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            phases: Mutex::new(std::collections::BTreeMap::new()),
        })
    }

    /// The shard daemon's current address.
    pub fn addr(&self) -> String {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .addr
            .clone()
    }

    /// Whether the shard's daemon is (as far as we know) running. A
    /// freshly-killed process reads as live until the supervisor's
    /// next tick reaps it — routing discovers the death first through
    /// a connection error and fails over.
    pub fn is_live(&self) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match &mut inner.runtime {
            Runtime::Dead => false,
            Runtime::InProcess(_) => true,
            Runtime::Process(child) => !matches!(child.try_wait(), Ok(Some(_))),
        }
    }

    /// Sends one NDJSON line to this shard and reads the response,
    /// reusing a pooled connection when one is parked. A stale pooled
    /// connection (daemon restarted since it was parked) is retried
    /// once on a fresh dial before the error surfaces.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (after the one stale retry).
    pub fn proxy(&self, line: &str, timeout: Option<Duration>) -> std::io::Result<String> {
        let pooled = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.idle.pop().map(|c| (c, inner.addr.clone()))
        };
        if let Some((mut conn, addr)) = pooled {
            match conn.roundtrip(line) {
                Ok(response) if !response.is_empty() => {
                    self.record(&response);
                    self.park(conn, &addr);
                    return Ok(response);
                }
                // EOF or error on a pooled socket: the daemon likely
                // restarted; fall through to a fresh dial.
                _ => {}
            }
        }
        let addr = self.addr();
        let mut conn = match Connection::connect(&addr, timeout) {
            Ok(c) => c,
            Err(e) => {
                self.conn_errors.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        match conn.roundtrip(line) {
            Ok(response) if !response.is_empty() => {
                self.record(&response);
                self.park(conn, &addr);
                Ok(response)
            }
            Ok(_) => {
                self.conn_errors.fetch_add(1, Ordering::Relaxed);
                Err(std::io::Error::other("shard closed the connection"))
            }
            Err(e) => {
                self.conn_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Folds a successful response into the shard's counters and phase
    /// buckets.
    fn record(&self, response: &str) {
        self.done.fetch_add(1, Ordering::Relaxed);
        let Ok(parsed) = lagoon_server::json::parse(response) else {
            return;
        };
        if parsed
            .get("error")
            .and_then(|e| e.get("reason"))
            .and_then(Json::as_str)
            .is_some()
        {
            self.sheds.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(Json::Obj(phases)) = parsed.get("phases") {
            let mut agg = self.phases.lock().unwrap_or_else(|e| e.into_inner());
            for (name, ms) in phases {
                if let Json::Num(ms) = ms {
                    *agg.entry(name.clone()).or_insert(0.0) += ms;
                }
            }
        }
    }

    /// Parks an idle connection for reuse, unless the shard has moved
    /// (respawn changed its address) or the pool is full.
    fn park(&self, conn: Connection, addr: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.addr == addr && inner.idle.len() < IDLE_POOL_CAP {
            inner.idle.push(conn);
        }
    }

    /// Kills the shard's daemon (test op / shutdown path). A process
    /// backend is killed outright; an in-process backend is drained on
    /// a detached thread. Either way the supervisor sees a dead shard
    /// and respawns it on its next tick — unless the gateway is
    /// shutting down.
    pub fn kill(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.idle.clear();
        match std::mem::replace(&mut inner.runtime, Runtime::Dead) {
            Runtime::Dead => {}
            Runtime::Process(mut child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            Runtime::InProcess(server) => {
                server.shutdown();
                std::thread::spawn(move || server.wait());
            }
        }
    }

    /// Supervisor tick: if the daemon died (killed, crashed, or
    /// exited), respawn it in place and flush the stale connection
    /// pool. Returns whether a respawn happened.
    pub fn ensure_live(&self, opts: &GatewayOptions) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let dead = match &mut inner.runtime {
            Runtime::Dead => true,
            Runtime::InProcess(_) => false,
            Runtime::Process(child) => match child.try_wait() {
                Ok(Some(_)) => true,
                Ok(None) => false,
                Err(_) => true,
            },
        };
        if !dead {
            return false;
        }
        match start_backend(opts, self.index) {
            Ok((addr, runtime)) => {
                inner.addr = addr;
                inner.runtime = runtime;
                inner.idle.clear();
                self.respawns.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                // Spawn failed (transient fork/bind issue): leave the
                // shard dead; the next tick tries again.
                inner.runtime = Runtime::Dead;
                false
            }
        }
    }

    /// Asks the shard's daemon for its own `stats` object.
    pub fn daemon_stats(&self, timeout: Option<Duration>) -> Option<Json> {
        let addr = self.addr();
        let response =
            lagoon_server::client::request_line(&addr, r#"{"op":"stats"}"#, timeout).ok()?;
        lagoon_server::json::parse(&response).ok()
    }

    /// The gateway-side gauges for this shard as a JSON object.
    pub fn gauges(&self) -> Json {
        let phases = {
            let agg = self.phases.lock().unwrap_or_else(|e| e.into_inner());
            Json::Obj(
                agg.iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            )
        };
        obj(vec![
            ("index", Json::Num(self.index as f64)),
            ("addr", Json::Str(self.addr())),
            ("live", Json::Bool(self.is_live())),
            (
                "outstanding",
                Json::Num(self.outstanding.load(Ordering::Relaxed) as f64),
            ),
            ("done", Json::Num(self.done.load(Ordering::Relaxed) as f64)),
            (
                "sheds",
                Json::Num(self.sheds.load(Ordering::Relaxed) as f64),
            ),
            (
                "conn_errors",
                Json::Num(self.conn_errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "respawns",
                Json::Num(self.respawns.load(Ordering::Relaxed) as f64),
            ),
            ("phases_ms", phases),
        ])
    }

    /// Final teardown: ask the daemon to drain via its own protocol,
    /// then reap it. Used by gateway shutdown (not the kill path).
    pub fn stop(&self, timeout: Option<Duration>) {
        let addr = self.addr();
        let _ = lagoon_server::client::request_line(&addr, r#"{"op":"shutdown"}"#, timeout);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.idle.clear();
        match std::mem::replace(&mut inner.runtime, Runtime::Dead) {
            Runtime::Dead => {}
            Runtime::Process(mut child) => {
                // Bounded wait for the drain, then force.
                for _ in 0..100 {
                    match child.try_wait() {
                        Ok(Some(_)) => return,
                        Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                        Err(_) => break,
                    }
                }
                let _ = child.kill();
                let _ = child.wait();
            }
            Runtime::InProcess(server) => {
                server.shutdown();
                server.wait();
            }
        }
    }
}
