//! A sampling profiler for the VM (the `vm-profile` feature).
//!
//! The machine draws its step budget in chunks (see
//! `lagoon_diag::limits::vm_take_fuel`), so the dispatch loop already
//! has a rarely-taken refill branch — at most once per 65,536 steps.
//! This module hangs a sample off that branch: each refill attributes
//! one whole fuel chunk to the innermost function running at that
//! moment, giving a statistical per-function step profile with *zero*
//! per-opcode cost. Like the opcode counters, sampling is doubly
//! gated — the feature compiles the hook in, and [`set_active`] turns
//! it on for a particular run — so the refill branch costs one
//! thread-local flag read when profiling is off.
//!
//! Chunk-granular sampling is coarse by design: a function must burn
//! on the order of a chunk of steps to register reliably. That is the
//! right bias for a profiler whose job is finding where the time goes.

use lagoon_syntax::Symbol;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SAMPLES: RefCell<HashMap<Option<Symbol>, u64>> = RefCell::new(HashMap::new());
}

/// Turns sampling on or off for this thread.
pub fn set_active(active: bool) {
    ACTIVE.with(|a| a.set(active));
}

/// Whether sampling is currently active on this thread.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Records one fuel-chunk sample against `name` (the innermost
/// function's proto name; `None` for anonymous or top-level code).
/// Called by the machine at each fuel refill; a flag read when off.
#[inline]
pub fn sample(name: Option<Symbol>) {
    if !active() {
        return;
    }
    SAMPLES.with(|s| *s.borrow_mut().entry(name).or_insert(0) += 1);
}

/// Clears all recorded samples.
pub fn reset() {
    SAMPLES.with(|s| s.borrow_mut().clear());
}

/// The recorded samples as `(function, chunks)` rows, sorted by
/// descending count (ties by name for stable output). Gensym suffixes
/// are stripped so alpha-renamed user functions aggregate under the
/// name the user wrote; anonymous code reports as `<anonymous>`.
pub fn snapshot() -> Vec<(String, u64)> {
    let mut merged: HashMap<String, u64> = HashMap::new();
    SAMPLES.with(|s| {
        for (name, count) in s.borrow().iter() {
            let label = match name {
                Some(sym) => sym.with_str(|n| lagoon_syntax::strip_gensym(n).to_string()),
                None => "<anonymous>".to_string(),
            };
            *merged.entry(label).or_insert(0) += count;
        }
    });
    let mut rows: Vec<(String, u64)> = merged.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

/// The snapshot as a JSON array of `{"fn","chunks"}` rows.
pub fn snapshot_json() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, (name, chunks)) in snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"fn\":{},\"chunks\":{chunks}}}",
            lagoon_diag::json_string(name)
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_accumulate_and_reset() {
        reset();
        set_active(true);
        sample(Some(Symbol::intern("fib")));
        sample(Some(Symbol::intern("fib")));
        sample(Some(Symbol::fresh("loop")));
        sample(None);
        set_active(false);
        sample(Some(Symbol::intern("ignored-while-off")));
        let snap = snapshot();
        assert_eq!(snap[0], ("fib".to_string(), 2));
        assert!(snap.contains(&("loop".to_string(), 1)));
        assert!(snap.contains(&("<anonymous>".to_string(), 1)));
        assert!(!snap.iter().any(|(n, _)| n == "ignored-while-off"));
        let json = snapshot_json();
        assert!(json.contains("\"fn\":\"fib\""), "{json}");
        reset();
        assert!(snapshot().is_empty());
    }
}
