//! Bytecode peephole/superinstruction pass.
//!
//! Sits between the compiler ([`crate::compile`]) and the machine
//! ([`crate::machine`]): [`optimize_module`] rewrites each [`Proto`]'s
//! instruction stream over a sliding window, replacing common two- and
//! three-instruction sequences with the fused superinstructions defined
//! in [`crate::bytecode`]. Two families are fused:
//!
//! * **compare-and-branch** — a comparison or predicate followed by the
//!   `JumpIfFalse` that consumes it (`Lt2; JumpIfFalse t` → `BrLt2 t`),
//!   for the generic, `Fx*`, `Fl*`, and unboxed `FlS*` comparisons.
//!   This hits every loop header.
//! * **load/operate** — `LoadLocal`/`Const` pushes followed by the
//!   operation that pops them (`LoadLocal i; LoadLocal j; Add2` →
//!   `AddLL i j`, `LoadLocal i; Car` → `CarL i`, …).
//!
//! The pass is **semantics-preserving by construction**: each fused
//! opcode executes the exact code paths of its unfused window (same
//! error messages, same stack effect, same observable order), and a
//! window is only fused when none of its *interior* instructions is a
//! jump target. Because jump targets are absolute instruction indices
//! and fusion shrinks the stream, every target is remapped through an
//! old-index → new-index table after rewriting.
//!
//! The pass is also **optional**: it runs by default, and is disabled
//! for the thread with [`set_enabled`] (the facade's
//! `Lagoon::set_peephole(false)` / the CLI's `--no-peephole`).

use crate::bytecode::{ModuleCode, Op, Proto};
use std::cell::Cell;
use std::rc::Rc;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(true) };
    static LAST: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Enables or disables the pass for this thread. Affects subsequent
/// compilations only; already-compiled code is untouched.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Whether the pass is enabled on this thread (the default).
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// What the most recent [`optimize_module`] call on this thread did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeepStats {
    /// Superinstructions created.
    pub fused: u64,
    /// Instructions eliminated (window width minus one, summed).
    pub removed: u64,
}

/// Statistics for the most recent [`optimize_module`] call on this
/// thread; the module pipeline reads this right after compiling to
/// surface fusion counts through `lagoon-diag`.
pub fn last_stats() -> PeepStats {
    let (fused, removed) = LAST.with(Cell::get);
    PeepStats { fused, removed }
}

/// Zeroes [`last_stats`]; the compiler calls this when the pass is
/// skipped so a later read doesn't see a previous module's numbers.
pub fn clear_stats() {
    LAST.with(|l| l.set((0, 0)));
}

/// Runs the peephole pass over every proto of a compiled module.
pub fn optimize_module(code: ModuleCode) -> ModuleCode {
    let mut stats = PeepStats::default();
    let top = optimize_proto(&code.top, &mut stats);
    LAST.with(|l| l.set((stats.fused, stats.removed)));
    ModuleCode {
        top,
        global_names: code.global_names,
        defined: code.defined,
    }
}

fn optimize_proto(p: &Proto, stats: &mut PeepStats) -> Rc<Proto> {
    let protos = p
        .protos
        .iter()
        .map(|child| optimize_proto(child, stats))
        .collect();
    Rc::new(Proto {
        name: p.name,
        arity: p.arity,
        nlocals: p.nlocals,
        captures: p.captures.clone(),
        code: optimize_code(&p.code, stats),
        consts: p.consts.clone(),
        protos,
    })
}

/// The absolute jump target carried by `op`, if any.
fn jump_target(op: Op) -> Option<u32> {
    match op {
        Op::Jump(t)
        | Op::JumpIfFalse(t)
        | Op::BrLt2(t)
        | Op::BrLe2(t)
        | Op::BrGt2(t)
        | Op::BrGe2(t)
        | Op::BrNumEq2(t)
        | Op::BrZeroP(t)
        | Op::BrNullP(t)
        | Op::BrPairP(t)
        | Op::BrFlLt(t)
        | Op::BrFlLe(t)
        | Op::BrFlGt(t)
        | Op::BrFlGe(t)
        | Op::BrFlEq(t)
        | Op::BrFxLt(t)
        | Op::BrFxLe(t)
        | Op::BrFxGt(t)
        | Op::BrFxGe(t)
        | Op::BrFxEq(t)
        | Op::BrFlSLt(t)
        | Op::BrFlSLe(t)
        | Op::BrFlSGt(t)
        | Op::BrFlSGe(t)
        | Op::BrFlSEq(t) => Some(t),
        _ => None,
    }
}

/// `op` with its jump target replaced by `t`. Identity for targetless
/// instructions.
fn retarget(op: Op, t: u32) -> Op {
    match op {
        Op::Jump(_) => Op::Jump(t),
        Op::JumpIfFalse(_) => Op::JumpIfFalse(t),
        Op::BrLt2(_) => Op::BrLt2(t),
        Op::BrLe2(_) => Op::BrLe2(t),
        Op::BrGt2(_) => Op::BrGt2(t),
        Op::BrGe2(_) => Op::BrGe2(t),
        Op::BrNumEq2(_) => Op::BrNumEq2(t),
        Op::BrZeroP(_) => Op::BrZeroP(t),
        Op::BrNullP(_) => Op::BrNullP(t),
        Op::BrPairP(_) => Op::BrPairP(t),
        Op::BrFlLt(_) => Op::BrFlLt(t),
        Op::BrFlLe(_) => Op::BrFlLe(t),
        Op::BrFlGt(_) => Op::BrFlGt(t),
        Op::BrFlGe(_) => Op::BrFlGe(t),
        Op::BrFlEq(_) => Op::BrFlEq(t),
        Op::BrFxLt(_) => Op::BrFxLt(t),
        Op::BrFxLe(_) => Op::BrFxLe(t),
        Op::BrFxGt(_) => Op::BrFxGt(t),
        Op::BrFxGe(_) => Op::BrFxGe(t),
        Op::BrFxEq(_) => Op::BrFxEq(t),
        Op::BrFlSLt(_) => Op::BrFlSLt(t),
        Op::BrFlSLe(_) => Op::BrFlSLe(t),
        Op::BrFlSGt(_) => Op::BrFlSGt(t),
        Op::BrFlSGe(_) => Op::BrFlSGe(t),
        Op::BrFlSEq(_) => Op::BrFlSEq(t),
        other => other,
    }
}

/// Fuses one window starting at `w[0]`, if a pattern applies and no
/// *interior* window position is a jump target (`tgt` is the
/// is-jump-target slice aligned with `w`; the window start may itself
/// be a target — the fused op simply becomes that target). Returns the
/// superinstruction and the window width it swallows. Branch targets in
/// the result are still *old* indices; the caller remaps them.
fn try_fuse(w: &[Op], tgt: &[bool]) -> Option<(Op, usize)> {
    let interior_free = |width: usize| tgt.get(1..width).is_some_and(|t| !t.iter().any(|b| *b));
    if w.len() >= 3 && interior_free(3) {
        if let (Op::LoadLocal(i), Op::LoadLocal(j)) = (w[0], w[1]) {
            let fused = match w[2] {
                Op::Add2 => Some(Op::AddLL(i, j)),
                Op::Sub2 => Some(Op::SubLL(i, j)),
                Op::Mul2 => Some(Op::MulLL(i, j)),
                Op::VectorRef => Some(Op::VectorRefLL(i, j)),
                Op::FxAdd => Some(Op::FxAddLL(i, j)),
                Op::FxSub => Some(Op::FxSubLL(i, j)),
                Op::UnsafeVectorRef => Some(Op::UnsafeVectorRefLL(i, j)),
                _ => None,
            };
            if let Some(op) = fused {
                return Some((op, 3));
            }
        }
        if let (Op::LoadLocal(i), Op::Const(k)) = (w[0], w[1]) {
            let fused = match w[2] {
                Op::Add2 => Some(Op::AddLC(i, k)),
                Op::Sub2 => Some(Op::SubLC(i, k)),
                Op::FxAdd => Some(Op::FxAddLC(i, k)),
                Op::FxSub => Some(Op::FxSubLC(i, k)),
                _ => None,
            };
            if let Some(op) = fused {
                return Some((op, 3));
            }
        }
    }
    if w.len() >= 2 && interior_free(2) {
        if let Op::JumpIfFalse(t) = w[1] {
            let fused = match w[0] {
                Op::Lt2 => Some(Op::BrLt2(t)),
                Op::Le2 => Some(Op::BrLe2(t)),
                Op::Gt2 => Some(Op::BrGt2(t)),
                Op::Ge2 => Some(Op::BrGe2(t)),
                Op::NumEq2 => Some(Op::BrNumEq2(t)),
                Op::ZeroP => Some(Op::BrZeroP(t)),
                Op::NullP => Some(Op::BrNullP(t)),
                Op::PairP => Some(Op::BrPairP(t)),
                Op::FlLt => Some(Op::BrFlLt(t)),
                Op::FlLe => Some(Op::BrFlLe(t)),
                Op::FlGt => Some(Op::BrFlGt(t)),
                Op::FlGe => Some(Op::BrFlGe(t)),
                Op::FlEq => Some(Op::BrFlEq(t)),
                Op::FxLt => Some(Op::BrFxLt(t)),
                Op::FxLe => Some(Op::BrFxLe(t)),
                Op::FxGt => Some(Op::BrFxGt(t)),
                Op::FxGe => Some(Op::BrFxGe(t)),
                Op::FxEq => Some(Op::BrFxEq(t)),
                Op::FlSLt => Some(Op::BrFlSLt(t)),
                Op::FlSLe => Some(Op::BrFlSLe(t)),
                Op::FlSGt => Some(Op::BrFlSGt(t)),
                Op::FlSGe => Some(Op::BrFlSGe(t)),
                Op::FlSEq => Some(Op::BrFlSEq(t)),
                _ => None,
            };
            if let Some(op) = fused {
                return Some((op, 2));
            }
        }
        if let Op::LoadLocal(i) = w[0] {
            let fused = match w[1] {
                Op::Car => Some(Op::CarL(i)),
                Op::Cdr => Some(Op::CdrL(i)),
                Op::UnsafeCar => Some(Op::UnsafeCarL(i)),
                Op::UnsafeCdr => Some(Op::UnsafeCdrL(i)),
                _ => None,
            };
            if let Some(op) = fused {
                return Some((op, 2));
            }
        }
    }
    None
}

fn optimize_code(code: &[Op], stats: &mut PeepStats) -> Vec<Op> {
    // Absolute jump targets; `code.len()` is a valid target (a branch
    // patched to fall off the end, which `Return` placement makes
    // unreachable in compiler output but the remap must still cover).
    let mut is_target = vec![false; code.len() + 1];
    for op in code {
        if let Some(t) = jump_target(*op) {
            if let Some(slot) = is_target.get_mut(t as usize) {
                *slot = true;
            }
        }
    }
    let mut out = Vec::with_capacity(code.len());
    let mut map = vec![0u32; code.len() + 1];
    let mut i = 0;
    while i < code.len() {
        match try_fuse(&code[i..], &is_target[i..]) {
            Some((op, width)) => {
                // Swallowed positions can't be jump targets, but map
                // them to the fused op anyway so the remap is total.
                for m in &mut map[i..i + width] {
                    *m = out.len() as u32;
                }
                out.push(op);
                stats.fused += 1;
                stats.removed += width as u64 - 1;
                i += width;
            }
            None => {
                map[i] = out.len() as u32;
                out.push(code[i]);
                i += 1;
            }
        }
    }
    map[code.len()] = out.len() as u32;
    for op in &mut out {
        if let Some(t) = jump_target(*op) {
            *op = retarget(*op, map[t as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_runtime::Arity;

    fn proto(code: Vec<Op>) -> Proto {
        Proto {
            name: None,
            arity: Arity::exactly(0),
            nlocals: 4,
            captures: vec![],
            code,
            consts: vec![],
            protos: vec![],
        }
    }

    fn opt(code: Vec<Op>) -> Vec<Op> {
        let mut stats = PeepStats::default();
        optimize_proto(&proto(code), &mut stats).code.clone()
    }

    #[test]
    fn compare_and_branch_fuses_and_targets_remap() {
        // LoadLocal/LoadLocal/Lt2 is not a fusable 3-window; the
        // 2-window Lt2+JumpIfFalse fires instead (its start being a
        // jump target of the backward Jump is fine), and both the
        // forward branch 6→5 and the backward Jump 2→2 remap.
        let out = opt(vec![
            Op::LoadLocal(0),
            Op::LoadLocal(1),
            Op::Lt2,
            Op::JumpIfFalse(6),
            Op::Jump(2),
            Op::Void,
            Op::Void,
            Op::Return,
        ]);
        assert_eq!(
            out,
            vec![
                Op::LoadLocal(0),
                Op::LoadLocal(1),
                Op::BrLt2(5),
                Op::Jump(2),
                Op::Void,
                Op::Void,
                Op::Return,
            ]
        );
    }

    #[test]
    fn load_load_binop_fuses() {
        let out = opt(vec![
            Op::LoadLocal(2),
            Op::LoadLocal(3),
            Op::Add2,
            Op::Return,
        ]);
        assert_eq!(out, vec![Op::AddLL(2, 3), Op::Return]);
    }

    #[test]
    fn load_const_binop_fuses() {
        let out = opt(vec![Op::LoadLocal(0), Op::Const(1), Op::Sub2, Op::Return]);
        assert_eq!(out, vec![Op::SubLC(0, 1), Op::Return]);
    }

    #[test]
    fn load_car_fuses() {
        let out = opt(vec![Op::LoadLocal(1), Op::Cdr, Op::Return]);
        assert_eq!(out, vec![Op::CdrL(1), Op::Return]);
    }

    #[test]
    fn jump_target_inside_window_blocks_fusion() {
        // The Add2 at index 2 is a jump target: fusing
        // [LoadLocal, LoadLocal, Add2] would jump into a superinstruction.
        let out = opt(vec![
            Op::LoadLocal(0),
            Op::LoadLocal(1),
            Op::Add2,
            Op::JumpIfFalse(2),
            Op::Return,
        ]);
        assert_eq!(
            out,
            vec![
                Op::LoadLocal(0),
                Op::LoadLocal(1),
                Op::Add2,
                Op::JumpIfFalse(2),
                Op::Return,
            ]
        );
    }

    #[test]
    fn window_start_as_target_still_fuses() {
        // Index 1 (Lt2) is a target; the fused BrLt2 takes its place
        // and the incoming edge remaps onto it.
        let out = opt(vec![
            Op::Void,
            Op::Lt2,
            Op::JumpIfFalse(0),
            Op::Jump(1),
            Op::Return,
        ]);
        assert_eq!(out, vec![Op::Void, Op::BrLt2(0), Op::Jump(1), Op::Return]);
    }

    #[test]
    fn pass_is_idempotent() {
        let code = vec![
            Op::LoadLocal(0),
            Op::Const(0),
            Op::FxAdd,
            Op::FxLt,
            Op::JumpIfFalse(0),
            Op::Return,
        ];
        let once = opt(code);
        let twice = opt(once.clone());
        assert_eq!(once, twice);
    }

    #[test]
    fn stats_count_fusions_and_removals() {
        let mut stats = PeepStats::default();
        optimize_proto(
            &proto(vec![
                Op::LoadLocal(0),
                Op::LoadLocal(1),
                Op::Add2, // 3-window fusion: 2 removed
                Op::Lt2,
                Op::JumpIfFalse(0), // 2-window fusion: 1 removed
                Op::Return,
            ]),
            &mut stats,
        );
        assert_eq!(
            stats,
            PeepStats {
                fused: 2,
                removed: 3
            }
        );
    }

    #[test]
    fn enable_knob_is_thread_local_and_defaults_on() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
