//! The stack machine.
//!
//! Executes [`Proto`] bytecode over a value stack with explicit frames.
//! Tail calls replace the current frame, so hosted tail recursion runs in
//! constant space on both the value stack and the Rust stack.
//!
//! The generic instructions (`Add2`, `Car`, …) route through the runtime's
//! tag-dispatching numeric tower; the `Fl*`/`Fx*`/`Fc*`/`Unsafe*`
//! instructions extract payloads with a single pattern match and no
//! checks — the machine-level realization of the paper's unsafe
//! primitives.

use crate::bytecode::{CaptureSrc, ModuleCode, Op, Proto};
use crate::engine::{apply_contracted, is_apply_native, splice_apply_args, Engine};
use lagoon_runtime::{number, Closure, Kind, RtError, Value};
use lagoon_syntax::Symbol;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A module instance's global-variable table.
#[derive(Debug)]
pub struct Globals {
    /// Slot `i` holds the variable named `names[i]`.
    pub names: Vec<Symbol>,
    /// Name → slot, built once at instantiation so by-name lookups
    /// (export extraction does one per export, per dependant) are O(1)
    /// instead of a linear scan of `names`. First slot wins, matching
    /// the scan it replaces.
    index: HashMap<Symbol, usize>,
    slots: RefCell<Vec<Option<Value>>>,
}

impl Globals {
    /// Builds a table for `code`, resolving each imported name with
    /// `resolve` (module-defined names start undefined).
    pub fn for_module(
        code: &ModuleCode,
        mut resolve: impl FnMut(Symbol) -> Option<Value>,
    ) -> Rc<Globals> {
        let slots = code
            .global_names
            .iter()
            .map(|name| resolve(*name))
            .collect();
        let mut index = HashMap::with_capacity(code.global_names.len());
        for (i, name) in code.global_names.iter().enumerate() {
            index.entry(*name).or_insert(i);
        }
        Rc::new(Globals {
            names: code.global_names.clone(),
            index,
            slots: RefCell::new(slots),
        })
    }

    /// Reads a global by name (used to extract exports after the module
    /// body runs).
    pub fn get(&self, name: Symbol) -> Option<Value> {
        let idx = *self.index.get(&name)?;
        self.slots.borrow()[idx].clone()
    }

    /// Every defined (non-`None`) global, by name.
    pub fn snapshot(&self) -> Vec<(Symbol, Value)> {
        self.names
            .iter()
            .zip(self.slots.borrow().iter())
            .filter_map(|(n, v)| v.clone().map(|v| (*n, v)))
            .collect()
    }
}

/// The environment payload of a VM closure.
#[derive(Debug)]
pub struct VmEnv {
    /// Captured values (boxes for mutable variables).
    pub captures: Vec<Value>,
    /// The defining module instance's globals.
    pub globals: Rc<Globals>,
}

struct Frame {
    proto: Rc<Proto>,
    ip: usize,
    /// Index of the first argument/local on the stack; `base - 1` holds
    /// the callee value.
    base: usize,
    /// Float-stack depth when this frame was entered. A fused float
    /// sequence may be *suspended* across a call (a generic operand of
    /// a fused expression can itself be a call), so the fstack is not
    /// globally empty at call edges; the invariant is per-frame balance:
    /// every frame returns with the fstack exactly as deep as it found
    /// it, asserted at `Return`/`TailCall`.
    fbase: usize,
    env: Rc<VmEnv>,
}

/// The bytecode engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct Vm;

impl Vm {
    /// Instantiates and runs a compiled module body. Returns the body's
    /// final value together with the instance's globals (for export
    /// extraction).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from the module body.
    pub fn run_module(
        &self,
        code: &ModuleCode,
        resolve: impl FnMut(Symbol) -> Option<Value>,
    ) -> Result<(Value, Rc<Globals>), RtError> {
        let globals = Globals::for_module(code, resolve);
        let env = Rc::new(VmEnv {
            captures: Vec::new(),
            globals: globals.clone(),
        });
        let v = run(code.top.clone(), env, &[])?;
        Ok((v, globals))
    }
}

impl Engine for Vm {
    fn apply(&self, f: &Value, args: &[Value]) -> Result<Value, RtError> {
        let mut f = f.clone();
        let mut args = args.to_vec();
        loop {
            if let Some(n) = f.as_native() {
                if is_apply_native(&f) {
                    (f, args) = splice_apply_args(&args)?;
                    continue;
                }
                if crate::engine::is_cwv_native(&f) {
                    (f, args) = crate::engine::splice_cwv_args(self, &args)?;
                    continue;
                }
                if !n.arity.accepts(args.len()) {
                    // as_str (allocating) is fine here: error path only
                    return Err(arity_error(n.name.as_str(), n.arity, args.len()));
                }
                lagoon_diag::limits::prim_call().map_err(RtError::from)?;
                return (n.f)(&args);
            }
            if let Some(c) = f.as_contracted() {
                return apply_contracted(self, c, &args);
            }
            if let Some(c) = f.as_closure() {
                let (proto, env) = downcast_closure(c)?;
                return run(proto, env, &args);
            }
            return Err(RtError::type_error(format!(
                "application: not a procedure: {}",
                f.write_string()
            )));
        }
    }
}

fn arity_error(name: impl std::fmt::Display, arity: lagoon_runtime::Arity, got: usize) -> RtError {
    RtError::arity(format!("{name}: expects {arity} argument(s), got {got}"))
}

fn downcast_closure(c: &Closure) -> Result<(Rc<Proto>, Rc<VmEnv>), RtError> {
    let proto = c.code.clone().downcast::<Proto>().map_err(|_| {
        RtError::new(
            Kind::Internal,
            "closure from a different engine applied by the VM",
        )
    })?;
    let env = c
        .env
        .clone()
        .downcast::<VmEnv>()
        .map_err(|_| RtError::new(Kind::Internal, "VM closure has a foreign environment"))?;
    Ok((proto, env))
}

fn underflow() -> RtError {
    RtError::new(Kind::Internal, "value stack underflow")
}

/// Pops a value, surfacing a corrupted stack as a structured internal
/// error instead of a panic.
macro_rules! pop {
    ($stack:expr) => {
        match $stack.pop() {
            Some(v) => v,
            None => return Err(underflow()),
        }
    };
}

// Unsafe-op payload extraction: a misapplied operand yields an arbitrary
// value (0 / 0.0), never UB. Works on a `&Value` without cloning — with
// the word representation this is a tag test plus a bit reinterpretation.
macro_rules! flval {
    ($v:expr) => {
        $v.as_float().unwrap_or(0.0)
    };
}

macro_rules! fxval {
    ($v:expr) => {
        $v.as_int().unwrap_or(0)
    };
}

macro_rules! fcval {
    ($v:expr) => {
        $v.as_complex().unwrap_or((0.0, 0.0))
    };
}

/// Reusable per-activation machine state: the unified operand/locals
/// stack, the unboxed float side stack, and the suspended-caller frames.
///
/// Pooled per thread so re-entrant VM activations (a native calling back
/// into hosted code) each check out their own buffers while plain calls
/// reuse warm allocations instead of growing fresh `Vec`s every entry.
#[derive(Default)]
struct Buffers {
    stack: Vec<Value>,
    fstack: Vec<f64>,
    frames: Vec<Frame>,
}

thread_local! {
    static BUFFER_POOL: RefCell<Vec<Buffers>> = const { RefCell::new(Vec::new()) };
}

fn take_buffers() -> Buffers {
    BUFFER_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default()
}

/// Returns a checked-out buffer set to the pool, clearing it first. The
/// clear is the error-unwind invariant restore: a mid-fused-sequence
/// error can abandon operands on `stack` and — crucially — unboxed
/// floats on `fstack`; the next activation must start from empty.
fn return_buffers(mut bufs: Buffers) {
    bufs.stack.clear();
    bufs.fstack.clear();
    bufs.frames.clear();
    BUFFER_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < 8 {
            pool.push(bufs);
        }
    });
}

/// Runs `proto` as the body of a call with `args`, to completion.
///
/// Selects between the counting and non-counting monomorphizations of
/// [`exec`] once per entry, so the hot loop itself carries no counting
/// branch when opcode counters are off (or compiled out).
fn run(proto: Rc<Proto>, env: Rc<VmEnv>, args: &[Value]) -> Result<Value, RtError> {
    #[cfg(feature = "vm-counters")]
    if crate::counters::active() {
        return exec::<true>(proto, env, args);
    }
    exec::<false>(proto, env, args)
}

/// The interpreter loop, monomorphized over whether per-opcode counters
/// are recorded.
///
/// Fuel is drawn from the shared step budget in chunks
/// ([`lagoon_diag::limits::vm_take_fuel`]) and counted down in a local,
/// so the per-opcode cost is a decrement-and-test. Natives can re-enter
/// the VM, so the unused remainder is returned on every exit path.
fn exec<const COUNT: bool>(
    proto: Rc<Proto>,
    env: Rc<VmEnv>,
    args: &[Value],
) -> Result<Value, RtError> {
    let mut fuel: u64 = 0;
    let mut bufs = take_buffers();
    let result = exec_loop::<COUNT>(proto, env, args, &mut fuel, &mut bufs);
    return_buffers(bufs);
    lagoon_diag::limits::vm_return_fuel(fuel);
    result
}

fn exec_loop<const COUNT: bool>(
    proto: Rc<Proto>,
    env: Rc<VmEnv>,
    args: &[Value],
    fuel: &mut u64,
    bufs: &mut Buffers,
) -> Result<Value, RtError> {
    // the unified operand/frame stack: every frame's callee sits at
    // `base - 1`, its args/locals at frame-pointer-relative slots
    // `base..base + nlocals`, and operand temporaries above them
    let stack = &mut bufs.stack;
    // the unboxed float stack used by fused unsafe-fl* sequences; each
    // frame returns it at the depth it was entered with (a fused
    // sequence may be suspended across a call when a generic operand is
    // itself a call), and an error unwind clears it wholesale in
    // `return_buffers`
    let fstack = &mut bufs.fstack;
    // suspended callers only — the active frame lives in the `cur`
    // local, so per-instruction dispatch touches frame state (proto,
    // code, ip, base, env) through a local instead of re-borrowing the
    // frame vector every iteration
    let frames = &mut bufs.frames;
    // dummy callee slot so every frame has `base - 1` valid
    stack.push(Value::Void);
    stack.extend_from_slice(args);
    let mut cur = make_frame(stack, proto, env, 1, args.len(), 0)?;

    loop {
        if *fuel == 0 {
            *fuel = lagoon_diag::limits::vm_take_fuel().map_err(RtError::from)?;
            // sampling profiler: attribute this fuel chunk to the
            // innermost running function (rarely-taken branch, so the
            // hot path carries no per-opcode cost)
            #[cfg(feature = "vm-profile")]
            crate::profile::sample(cur.proto.name);
        }
        *fuel -= 1;
        let op = cur.proto.code[cur.ip];
        cur.ip += 1;
        #[cfg(feature = "vm-counters")]
        if COUNT {
            crate::counters::record(&op);
        }
        match op {
            Op::Const(k) => stack.push(cur.proto.consts[k as usize].clone()),
            Op::Void => stack.push(Value::Void),
            Op::LoadLocal(i) => stack.push(stack[cur.base + i as usize].clone()),
            Op::StoreLocal(i) => {
                let v = pop!(stack);
                let slot = cur.base + i as usize;
                stack[slot] = v;
            }
            Op::LoadCapture(i) => stack.push(cur.env.captures[i as usize].clone()),
            Op::LoadGlobal(i) => {
                // straight-line runs of loads (argument setup for a call
                // is the common case) share one slot borrow: each extra
                // load still pays its fuel and its counter, so budgets
                // and recorded opcode mixes are identical to dispatching
                // them individually, and the borrow ends before any
                // other instruction (or a re-entrant native) runs
                let slots = cur.env.globals.slots.borrow();
                let mut idx = i;
                loop {
                    match &slots[idx as usize] {
                        Some(v) => stack.push(v.clone()),
                        None => {
                            let name = cur.env.globals.names[idx as usize];
                            return Err(RtError::unbound(name));
                        }
                    }
                    match cur.proto.code.get(cur.ip).copied() {
                        Some(Op::LoadGlobal(j)) if *fuel > 0 => {
                            idx = j;
                            cur.ip += 1;
                            *fuel -= 1;
                            #[cfg(feature = "vm-counters")]
                            if COUNT {
                                crate::counters::record(&Op::LoadGlobal(idx));
                            }
                        }
                        _ => break,
                    }
                }
            }
            Op::StoreGlobal(i) => {
                let v = pop!(stack);
                cur.env.globals.slots.borrow_mut()[i as usize] = Some(v);
            }
            Op::Jump(t) => cur.ip = t as usize,
            Op::JumpIfFalse(t) => {
                if !pop!(stack).is_truthy() {
                    cur.ip = t as usize;
                }
            }
            Op::MakeClosure(i) => {
                let child = cur.proto.protos[i as usize].clone();
                let captures = child
                    .captures
                    .iter()
                    .map(|src| match src {
                        CaptureSrc::Local(s) => stack[cur.base + *s as usize].clone(),
                        CaptureSrc::Capture(c) => cur.env.captures[*c as usize].clone(),
                    })
                    .collect();
                let env = Rc::new(VmEnv {
                    captures,
                    globals: cur.env.globals.clone(),
                });
                stack.push(Value::Closure(Rc::new(Closure {
                    name: child.name,
                    arity: child.arity,
                    code: child,
                    env,
                })));
            }
            Op::Call(n) => {
                match enter_call(stack, n as usize, None, frames.len() + 1)? {
                    Dispatch::Frame(mut f) => {
                        // the callee must leave the caller's suspended
                        // unboxed floats (if any) untouched
                        f.fbase = fstack.len();
                        frames.push(std::mem::replace(&mut cur, f));
                    }
                    Dispatch::Done => {}
                }
            }
            Op::TailCall(n) => {
                // a tail call is the frame's result, so the frame's own
                // fused sequences must all be drained by now
                debug_assert!(fstack.len() == cur.fbase, "fstack unbalanced at TailCall");
                let argstart = stack.len() - n as usize;
                // self-tail-call: the callee is bit-identical to the
                // closure this frame is already running (the common
                // shape of every compiled loop), so the frame can be
                // reused in place — same proto, same captures, no
                // dispatch, no depth bookkeeping. The exact-arity check
                // is the whole of `accepts` with `rest == false`, and
                // the closure guard keeps the outermost frame's dummy
                // void callee from ever matching itself.
                if n as usize == cur.proto.arity.required
                    && !cur.proto.arity.rest
                    && stack[argstart - 1].eq_identity(&stack[cur.base - 1])
                    && stack[cur.base - 1].as_closure().is_some()
                {
                    for i in 0..n as usize {
                        stack.swap(cur.base + i, argstart + i);
                    }
                    stack.truncate(cur.base + n as usize);
                    while stack.len() < cur.base + cur.proto.nlocals as usize {
                        stack.push(Value::Void);
                    }
                    cur.ip = 0;
                    continue;
                }
                match enter_call(stack, n as usize, Some(cur.base), frames.len())? {
                    Dispatch::Frame(mut f) => {
                        f.fbase = cur.fbase;
                        cur = f;
                    }
                    Dispatch::Done => {
                        // a native/contracted callee completed the tail
                        // call; unwind to the caller as `Return` would
                        let result = pop!(stack);
                        stack.truncate(cur.base - 1);
                        match frames.pop() {
                            Some(f) => {
                                cur = f;
                                stack.push(result);
                            }
                            None => return Ok(result),
                        }
                    }
                }
            }
            Op::Return => {
                // the frame hands back exactly the fstack it was given
                debug_assert!(fstack.len() == cur.fbase, "fstack unbalanced at Return");
                let result = pop!(stack);
                stack.truncate(cur.base - 1);
                match frames.pop() {
                    Some(f) => {
                        cur = f;
                        stack.push(result);
                    }
                    None => return Ok(result),
                }
            }
            Op::Pop => {
                stack.pop();
            }
            Op::BoxNew => {
                let v = pop!(stack);
                stack.push(Value::Box(Rc::new(RefCell::new(v))));
            }
            Op::BoxGet => {
                let v = pop!(stack);
                match v.as_box() {
                    Some(b) => {
                        let inner = b.borrow().clone();
                        stack.push(inner);
                    }
                    None => return Err(RtError::new(Kind::Internal, "BoxGet on non-box")),
                }
            }
            Op::BoxSet => {
                let v = pop!(stack);
                let b = pop!(stack);
                match b.as_box() {
                    Some(b) => {
                        *b.borrow_mut() = v;
                    }
                    None => return Err(RtError::new(Kind::Internal, "BoxSet on non-box")),
                }
                stack.push(Value::Void);
            }

            // ---- generic fast paths ----
            Op::Add2 => {
                let b = pop!(stack);
                let a = pop!(stack);
                stack.push(add_value(&a, &b)?);
            }
            Op::Sub2 => {
                let b = pop!(stack);
                let a = pop!(stack);
                stack.push(sub_value(&a, &b)?);
            }
            Op::Mul2 => {
                let b = pop!(stack);
                let a = pop!(stack);
                stack.push(mul_value(&a, &b)?);
            }
            Op::Div2 => {
                let b = pop!(stack);
                let a = pop!(stack);
                stack.push(div_value(&a, &b)?);
            }
            Op::Lt2 => cmpop(stack, "<", |o| o.is_lt())?,
            Op::Le2 => cmpop(stack, "<=", |o| o.is_le())?,
            Op::Gt2 => cmpop(stack, ">", |o| o.is_gt())?,
            Op::Ge2 => cmpop(stack, ">=", |o| o.is_ge())?,
            Op::NumEq2 => {
                let b = pop!(stack);
                let a = pop!(stack);
                stack.push(Value::Bool(num_eq_value(&a, &b)?));
            }
            Op::Add1 => {
                let a = pop!(stack);
                stack.push(add_value(&a, &Value::Int(1))?);
            }
            Op::Sub1 => {
                let a = pop!(stack);
                stack.push(sub_value(&a, &Value::Int(1))?);
            }
            Op::ZeroP => {
                let a = pop!(stack);
                stack.push(Value::Bool(zero_value(&a)?));
            }
            Op::Car => {
                let a = pop!(stack);
                stack.push(car_value(&a)?);
            }
            Op::Cdr => {
                let a = pop!(stack);
                stack.push(cdr_value(&a)?);
            }
            Op::Cons => {
                let b = pop!(stack);
                let a = pop!(stack);
                stack.push(Value::cons(a, b));
            }
            Op::NullP => {
                let a = pop!(stack);
                stack.push(Value::Bool(a.is_nil()));
            }
            Op::PairP => {
                let a = pop!(stack);
                stack.push(Value::Bool(a.as_pair().is_some()));
            }
            Op::Not => {
                let a = pop!(stack);
                stack.push(Value::Bool(!a.is_truthy()));
            }
            Op::EqP => {
                let b = pop!(stack);
                let a = pop!(stack);
                stack.push(Value::Bool(a.eq_identity(&b)));
            }
            Op::VectorRef => {
                let i = pop!(stack);
                let v = pop!(stack);
                stack.push(vector_ref_value(&v, &i)?);
            }
            Op::VectorSet => {
                let x = pop!(stack);
                let i = pop!(stack);
                let v = pop!(stack);
                match (v.as_vector(), i.as_int()) {
                    (Some(vec), Some(n)) => {
                        let mut vec = vec.borrow_mut();
                        let idx = n as usize;
                        if n < 0 || idx >= vec.len() {
                            return Err(RtError::new(
                                Kind::Range,
                                format!(
                                    "vector-set!: index {n} out of range for length {}",
                                    vec.len()
                                ),
                            ));
                        }
                        vec[idx] = x;
                    }
                    _ => {
                        return Err(RtError::type_error(
                            "vector-set!: expected vector and index",
                        ))
                    }
                }
                stack.push(Value::Void);
            }
            Op::VectorLength => {
                let v = pop!(stack);
                match v.as_vector() {
                    Some(vec) => {
                        let len = vec.borrow().len() as i64;
                        stack.push(Value::Int(len));
                    }
                    None => {
                        return Err(RtError::type_error(format!(
                            "vector-length: expected vector, got {}",
                            v.write_string()
                        )))
                    }
                }
            }

            // ---- unsafe specialized instructions ----
            Op::FlAdd => flbin(stack, |a, b| a + b)?,
            Op::FlSub => flbin(stack, |a, b| a - b)?,
            Op::FlMul => flbin(stack, |a, b| a * b)?,
            Op::FlDiv => flbin(stack, |a, b| a / b)?,
            Op::FlLt => flcmp(stack, |a, b| a < b)?,
            Op::FlLe => flcmp(stack, |a, b| a <= b)?,
            Op::FlGt => flcmp(stack, |a, b| a > b)?,
            Op::FlGe => flcmp(stack, |a, b| a >= b)?,
            Op::FlEq => flcmp(stack, |a, b| a == b)?,
            Op::FlSqrt => {
                let a = flval!(pop!(stack));
                stack.push(Value::Float(a.sqrt()));
            }
            Op::FlAbs => {
                let a = flval!(pop!(stack));
                stack.push(Value::Float(a.abs()));
            }
            Op::FlMin => flbin(stack, f64::min)?,
            Op::FlMax => flbin(stack, f64::max)?,
            Op::FxAdd => fxbin(stack, i64::wrapping_add)?,
            Op::FxSub => fxbin(stack, i64::wrapping_sub)?,
            Op::FxMul => fxbin(stack, i64::wrapping_mul)?,
            Op::FxLt => fxcmp(stack, |a, b| a < b)?,
            Op::FxLe => fxcmp(stack, |a, b| a <= b)?,
            Op::FxGt => fxcmp(stack, |a, b| a > b)?,
            Op::FxGe => fxcmp(stack, |a, b| a >= b)?,
            Op::FxEq => fxcmp(stack, |a, b| a == b)?,
            Op::FcAdd => fcbin(stack, |(ar, ai), (br, bi)| (ar + br, ai + bi))?,
            Op::FcSub => fcbin(stack, |(ar, ai), (br, bi)| (ar - br, ai - bi))?,
            Op::FcMul => fcbin(stack, |(ar, ai), (br, bi)| {
                (ar * br - ai * bi, ar * bi + ai * br)
            })?,
            Op::FcDiv => fcbin(stack, |(ar, ai), (br, bi)| {
                let d = br * br + bi * bi;
                ((ar * br + ai * bi) / d, (ai * br - ar * bi) / d)
            })?,
            Op::FcMag => {
                let (re, im) = fcval!(pop!(stack));
                stack.push(Value::Float(re.hypot(im)));
            }
            Op::UnsafeCar => {
                let a = pop!(stack);
                stack.push(unsafe_car_value(&a));
            }
            Op::UnsafeCdr => {
                let a = pop!(stack);
                stack.push(unsafe_cdr_value(&a));
            }
            Op::UnsafeVectorRef => {
                let i = pop!(stack);
                let v = pop!(stack);
                stack.push(unsafe_vector_ref_value(&v, &i));
            }
            Op::UnsafeVectorSet => {
                let x = pop!(stack);
                let i = pop!(stack);
                let v = pop!(stack);
                if let (Some(vec), Some(n)) = (v.as_vector(), i.as_int()) {
                    let mut vec = vec.borrow_mut();
                    let idx = n as usize;
                    if idx < vec.len() {
                        vec[idx] = x;
                    }
                }
                stack.push(Value::Void);
            }
            Op::UnsafeVectorLength => {
                let v = pop!(stack);
                let len = v.as_vector().map_or(0, |vec| vec.borrow().len() as i64);
                stack.push(Value::Int(len));
            }
            Op::FxToFl => {
                let a = fxval!(pop!(stack));
                stack.push(Value::Float(a as f64));
            }

            // ---- unboxed float fusion ----
            Op::FlPushLocal(i) => {
                let v = flval!(stack[cur.base + i as usize]);
                fstack.push(v);
            }
            Op::FlPushCapture(i) => {
                let v = flval!(cur.env.captures[i as usize]);
                fstack.push(v);
            }
            Op::FlPushConst(k) => {
                let v = flval!(cur.proto.consts[k as usize]);
                fstack.push(v);
            }
            Op::FlUnbox => {
                let v = flval!(pop!(stack));
                fstack.push(v);
            }
            Op::FlUnboxFx => {
                let v = fxval!(pop!(stack));
                fstack.push(v as f64);
            }
            Op::FlBox => {
                let v = pop!(fstack);
                stack.push(Value::Float(v));
            }
            Op::FlSAdd => flfuse(fstack, |a, b| a + b)?,
            Op::FlSSub => flfuse(fstack, |a, b| a - b)?,
            Op::FlSMul => flfuse(fstack, |a, b| a * b)?,
            Op::FlSDiv => flfuse(fstack, |a, b| a / b)?,
            Op::FlSMin => flfuse(fstack, f64::min)?,
            Op::FlSMax => flfuse(fstack, f64::max)?,
            Op::FlSSqrt => {
                let a = pop!(fstack);
                fstack.push(a.sqrt());
            }
            Op::FlSAbs => {
                let a = pop!(fstack);
                fstack.push(a.abs());
            }
            Op::FlSLt => flfusecmp(fstack, stack, |a, b| a < b)?,
            Op::FlSLe => flfusecmp(fstack, stack, |a, b| a <= b)?,
            Op::FlSGt => flfusecmp(fstack, stack, |a, b| a > b)?,
            Op::FlSGe => flfusecmp(fstack, stack, |a, b| a >= b)?,
            Op::FlSEq => flfusecmp(fstack, stack, |a, b| a == b)?,

            // ---- peephole superinstructions ----
            //
            // Each arm is the exact composition of its unfused window:
            // same operand order, same error paths, same stack effect.
            // The `Br*` forms jump when the comparison is *false*,
            // matching `cmp; JumpIfFalse`.
            Op::BrLt2(t) => brcmp(stack, &mut cur.ip, t, "<", |o| o.is_lt())?,
            Op::BrLe2(t) => brcmp(stack, &mut cur.ip, t, "<=", |o| o.is_le())?,
            Op::BrGt2(t) => brcmp(stack, &mut cur.ip, t, ">", |o| o.is_gt())?,
            Op::BrGe2(t) => brcmp(stack, &mut cur.ip, t, ">=", |o| o.is_ge())?,
            Op::BrNumEq2(t) => {
                let b = pop!(stack);
                let a = pop!(stack);
                if !num_eq_value(&a, &b)? {
                    cur.ip = t as usize;
                }
            }
            Op::BrZeroP(t) => {
                let a = pop!(stack);
                if !zero_value(&a)? {
                    cur.ip = t as usize;
                }
            }
            Op::BrNullP(t) => {
                if !pop!(stack).is_nil() {
                    cur.ip = t as usize;
                }
            }
            Op::BrPairP(t) => {
                if pop!(stack).as_pair().is_none() {
                    cur.ip = t as usize;
                }
            }
            Op::BrFlLt(t) => brflcmp(stack, &mut cur.ip, t, |a, b| a < b)?,
            Op::BrFlLe(t) => brflcmp(stack, &mut cur.ip, t, |a, b| a <= b)?,
            Op::BrFlGt(t) => brflcmp(stack, &mut cur.ip, t, |a, b| a > b)?,
            Op::BrFlGe(t) => brflcmp(stack, &mut cur.ip, t, |a, b| a >= b)?,
            Op::BrFlEq(t) => brflcmp(stack, &mut cur.ip, t, |a, b| a == b)?,
            Op::BrFxLt(t) => brfxcmp(stack, &mut cur.ip, t, |a, b| a < b)?,
            Op::BrFxLe(t) => brfxcmp(stack, &mut cur.ip, t, |a, b| a <= b)?,
            Op::BrFxGt(t) => brfxcmp(stack, &mut cur.ip, t, |a, b| a > b)?,
            Op::BrFxGe(t) => brfxcmp(stack, &mut cur.ip, t, |a, b| a >= b)?,
            Op::BrFxEq(t) => brfxcmp(stack, &mut cur.ip, t, |a, b| a == b)?,
            Op::BrFlSLt(t) => brflscmp(fstack, &mut cur.ip, t, |a, b| a < b)?,
            Op::BrFlSLe(t) => brflscmp(fstack, &mut cur.ip, t, |a, b| a <= b)?,
            Op::BrFlSGt(t) => brflscmp(fstack, &mut cur.ip, t, |a, b| a > b)?,
            Op::BrFlSGe(t) => brflscmp(fstack, &mut cur.ip, t, |a, b| a >= b)?,
            Op::BrFlSEq(t) => brflscmp(fstack, &mut cur.ip, t, |a, b| a == b)?,
            Op::CarL(i) => {
                let x = car_value(&stack[cur.base + i as usize])?;
                stack.push(x);
            }
            Op::CdrL(i) => {
                let x = cdr_value(&stack[cur.base + i as usize])?;
                stack.push(x);
            }
            Op::UnsafeCarL(i) => {
                let x = unsafe_car_value(&stack[cur.base + i as usize]);
                stack.push(x);
            }
            Op::UnsafeCdrL(i) => {
                let x = unsafe_cdr_value(&stack[cur.base + i as usize]);
                stack.push(x);
            }
            Op::AddLL(i, j) => {
                let x = add_value(&stack[cur.base + i as usize], &stack[cur.base + j as usize])?;
                stack.push(x);
            }
            Op::SubLL(i, j) => {
                let x = sub_value(&stack[cur.base + i as usize], &stack[cur.base + j as usize])?;
                stack.push(x);
            }
            Op::MulLL(i, j) => {
                let x = mul_value(&stack[cur.base + i as usize], &stack[cur.base + j as usize])?;
                stack.push(x);
            }
            Op::AddLC(i, k) => {
                let x = add_value(&stack[cur.base + i as usize], &cur.proto.consts[k as usize])?;
                stack.push(x);
            }
            Op::SubLC(i, k) => {
                let x = sub_value(&stack[cur.base + i as usize], &cur.proto.consts[k as usize])?;
                stack.push(x);
            }
            Op::VectorRefLL(i, j) => {
                let x =
                    vector_ref_value(&stack[cur.base + i as usize], &stack[cur.base + j as usize])?;
                stack.push(x);
            }
            Op::FxAddLL(i, j) => {
                let a = fxval!(stack[cur.base + i as usize]);
                let b = fxval!(stack[cur.base + j as usize]);
                stack.push(Value::Int(a.wrapping_add(b)));
            }
            Op::FxSubLL(i, j) => {
                let a = fxval!(stack[cur.base + i as usize]);
                let b = fxval!(stack[cur.base + j as usize]);
                stack.push(Value::Int(a.wrapping_sub(b)));
            }
            Op::FxAddLC(i, k) => {
                let a = fxval!(stack[cur.base + i as usize]);
                let b = fxval!(cur.proto.consts[k as usize]);
                stack.push(Value::Int(a.wrapping_add(b)));
            }
            Op::FxSubLC(i, k) => {
                let a = fxval!(stack[cur.base + i as usize]);
                let b = fxval!(cur.proto.consts[k as usize]);
                stack.push(Value::Int(a.wrapping_sub(b)));
            }
            Op::UnsafeVectorRefLL(i, j) => {
                let x = unsafe_vector_ref_value(
                    &stack[cur.base + i as usize],
                    &stack[cur.base + j as usize],
                );
                stack.push(x);
            }
        }
    }
}

#[inline]
fn flfuse(fstack: &mut Vec<f64>, f: fn(f64, f64) -> f64) -> Result<(), RtError> {
    let b = pop!(fstack);
    let a = pop!(fstack);
    fstack.push(f(a, b));
    Ok(())
}

#[inline]
fn flfusecmp(
    fstack: &mut Vec<f64>,
    stack: &mut Vec<Value>,
    f: fn(f64, f64) -> bool,
) -> Result<(), RtError> {
    let b = pop!(fstack);
    let a = pop!(fstack);
    stack.push(Value::Bool(f(a, b)));
    Ok(())
}

/// `car` with the checked error path, shared by `Car` and `CarL`.
#[inline]
fn car_value(a: &Value) -> Result<Value, RtError> {
    match a.as_pair() {
        Some(p) => Ok(p.0.clone()),
        None => Err(RtError::type_error(format!(
            "car: expected pair, got {}",
            a.write_string()
        ))),
    }
}

/// `cdr` with the checked error path, shared by `Cdr` and `CdrL`.
#[inline]
fn cdr_value(a: &Value) -> Result<Value, RtError> {
    match a.as_pair() {
        Some(p) => Ok(p.1.clone()),
        None => Err(RtError::type_error(format!(
            "cdr: expected pair, got {}",
            a.write_string()
        ))),
    }
}

/// `unsafe-car`: a non-pair passes through unchanged (arbitrary but
/// never UB), shared by `UnsafeCar` and `UnsafeCarL`.
#[inline]
fn unsafe_car_value(a: &Value) -> Value {
    match a.as_pair() {
        Some(p) => p.0.clone(),
        None => a.clone(),
    }
}

/// `unsafe-cdr`, shared by `UnsafeCdr` and `UnsafeCdrL`.
#[inline]
fn unsafe_cdr_value(a: &Value) -> Value {
    match a.as_pair() {
        Some(p) => p.1.clone(),
        None => a.clone(),
    }
}

/// `zero?` with the checked error path, shared by `ZeroP` and `BrZeroP`.
#[inline]
fn zero_value(a: &Value) -> Result<bool, RtError> {
    if let Some(n) = a.as_int() {
        Ok(n == 0)
    } else if let Some(x) = a.as_float() {
        Ok(x == 0.0)
    } else if let Some((re, im)) = a.as_complex() {
        Ok(re == 0.0 && im == 0.0)
    } else {
        Err(RtError::type_error(format!(
            "zero?: expected number, got {}",
            a.write_string()
        )))
    }
}

/// Checked `vector-ref`, shared by `VectorRef` and `VectorRefLL`.
#[inline]
fn vector_ref_value(v: &Value, i: &Value) -> Result<Value, RtError> {
    match (v.as_vector(), i.as_int()) {
        (Some(vec), Some(n)) => {
            let vec = vec.borrow();
            let idx = n as usize;
            if n < 0 || idx >= vec.len() {
                return Err(RtError::new(
                    Kind::Range,
                    format!(
                        "vector-ref: index {n} out of range for length {}",
                        vec.len()
                    ),
                ));
            }
            Ok(vec[idx].clone())
        }
        _ => Err(RtError::type_error(format!(
            "vector-ref: expected vector and index, got {} and {}",
            v.write_string(),
            i.write_string()
        ))),
    }
}

/// `unsafe-vector-ref` (out-of-range/non-vector yields void), shared by
/// `UnsafeVectorRef` and `UnsafeVectorRefLL`.
#[inline]
fn unsafe_vector_ref_value(v: &Value, i: &Value) -> Value {
    match (v.as_vector(), i.as_int()) {
        (Some(vec), Some(n)) => vec.borrow().get(n as usize).cloned().unwrap_or(Value::Void),
        _ => Value::Void,
    }
}

/// Fused generic compare-and-branch: pops like the comparison, jumps to
/// `t` when it is false (like the `JumpIfFalse` it replaces).
#[inline]
fn brcmp(
    stack: &mut Vec<Value>,
    ip: &mut usize,
    t: u32,
    name: &'static str,
    ok: fn(std::cmp::Ordering) -> bool,
) -> Result<(), RtError> {
    let b = pop!(stack);
    let a = pop!(stack);
    if !ok(compare_value(name, &a, &b)?) {
        *ip = t as usize;
    }
    Ok(())
}

/// Fused `Fl*` compare-and-branch.
#[inline]
fn brflcmp(
    stack: &mut Vec<Value>,
    ip: &mut usize,
    t: u32,
    f: fn(f64, f64) -> bool,
) -> Result<(), RtError> {
    let b = flval!(pop!(stack));
    let a = flval!(pop!(stack));
    if !f(a, b) {
        *ip = t as usize;
    }
    Ok(())
}

/// Fused `Fx*` compare-and-branch.
#[inline]
fn brfxcmp(
    stack: &mut Vec<Value>,
    ip: &mut usize,
    t: u32,
    f: fn(i64, i64) -> bool,
) -> Result<(), RtError> {
    let b = fxval!(pop!(stack));
    let a = fxval!(pop!(stack));
    if !f(a, b) {
        *ip = t as usize;
    }
    Ok(())
}

/// Fused float-stack compare-and-branch.
#[inline]
fn brflscmp(
    fstack: &mut Vec<f64>,
    ip: &mut usize,
    t: u32,
    f: fn(f64, f64) -> bool,
) -> Result<(), RtError> {
    let b = pop!(fstack);
    let a = pop!(fstack);
    if !f(a, b) {
        *ip = t as usize;
    }
    Ok(())
}

// Inline fast paths for the generic arithmetic opcodes: two flonums or
// two exact integers are decided by a tag compare each and skip the
// numeric tower's promote dispatch (behind a non-inlinable fn pointer
// before these existed). Everything else — mixed exact/inexact, complex,
// fixnum overflow — falls back to the generic tower, which also owns the
// error messages, so semantics are identical by construction.

#[inline(always)]
fn add_value(a: &Value, b: &Value) -> Result<Value, RtError> {
    if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) {
        return Ok(Value::Float(x + y));
    }
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        if let Some(r) = x.checked_add(y) {
            return Ok(Value::Int(r));
        }
    }
    number::add(a, b)
}

#[inline(always)]
fn sub_value(a: &Value, b: &Value) -> Result<Value, RtError> {
    if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) {
        return Ok(Value::Float(x - y));
    }
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        if let Some(r) = x.checked_sub(y) {
            return Ok(Value::Int(r));
        }
    }
    number::sub(a, b)
}

#[inline(always)]
fn mul_value(a: &Value, b: &Value) -> Result<Value, RtError> {
    if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) {
        return Ok(Value::Float(x * y));
    }
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        if let Some(r) = x.checked_mul(y) {
            return Ok(Value::Int(r));
        }
    }
    number::mul(a, b)
}

#[inline(always)]
fn div_value(a: &Value, b: &Value) -> Result<Value, RtError> {
    // only the flonum case is safe to shortcut: integer `/` has
    // exact-or-inexact and divide-by-zero rules the tower owns
    if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) {
        return Ok(Value::Float(x / y));
    }
    number::div(a, b)
}

#[inline(always)]
fn compare_value(name: &'static str, a: &Value, b: &Value) -> Result<std::cmp::Ordering, RtError> {
    if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) {
        // NaN operands fall through to the tower's "cannot compare" error
        if let Some(o) = x.partial_cmp(&y) {
            return Ok(o);
        }
    } else if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        return Ok(x.cmp(&y));
    }
    number::compare(name, a, b)
}

#[inline(always)]
fn num_eq_value(a: &Value, b: &Value) -> Result<bool, RtError> {
    if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) {
        return Ok(x == y);
    }
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        return Ok(x == y);
    }
    number::num_eq(a, b)
}

#[inline]
fn cmpop(
    stack: &mut Vec<Value>,
    name: &'static str,
    ok: fn(std::cmp::Ordering) -> bool,
) -> Result<(), RtError> {
    let b = pop!(stack);
    let a = pop!(stack);
    stack.push(Value::Bool(ok(compare_value(name, &a, &b)?)));
    Ok(())
}

#[inline]
fn flbin(stack: &mut Vec<Value>, f: fn(f64, f64) -> f64) -> Result<(), RtError> {
    let b = flval!(pop!(stack));
    let a = flval!(pop!(stack));
    stack.push(Value::Float(f(a, b)));
    Ok(())
}

#[inline]
fn flcmp(stack: &mut Vec<Value>, f: fn(f64, f64) -> bool) -> Result<(), RtError> {
    let b = flval!(pop!(stack));
    let a = flval!(pop!(stack));
    stack.push(Value::Bool(f(a, b)));
    Ok(())
}

#[inline]
fn fxbin(stack: &mut Vec<Value>, f: fn(i64, i64) -> i64) -> Result<(), RtError> {
    let b = fxval!(pop!(stack));
    let a = fxval!(pop!(stack));
    stack.push(Value::Int(f(a, b)));
    Ok(())
}

#[inline]
fn fxcmp(stack: &mut Vec<Value>, f: fn(i64, i64) -> bool) -> Result<(), RtError> {
    let b = fxval!(pop!(stack));
    let a = fxval!(pop!(stack));
    stack.push(Value::Bool(f(a, b)));
    Ok(())
}

type FcOp = fn((f64, f64), (f64, f64)) -> (f64, f64);

#[inline]
fn fcbin(stack: &mut Vec<Value>, f: FcOp) -> Result<(), RtError> {
    let b = fcval!(pop!(stack));
    let a = fcval!(pop!(stack));
    let (re, im) = f(a, b);
    stack.push(Value::Complex(re, im));
    Ok(())
}

/// What [`enter_call`] resolved the callee to.
enum Dispatch {
    /// A closure: the machine loop should activate this frame (pushing
    /// or replacing the current one depending on tailness).
    Frame(Frame),
    /// A native/contracted procedure that ran to completion; its result
    /// is on top of the stack.
    Done,
}

/// Performs the call whose callee and `n` arguments are on top of the
/// stack. For a tail call, `tail_base` is the current frame's base: the
/// callee and arguments are moved down over the frame being replaced.
/// `depth` is the number of frames that would sit *below* the callee's
/// frame (for the stack-depth limit).
fn enter_call(
    stack: &mut Vec<Value>,
    n: usize,
    tail_base: Option<usize>,
    depth: usize,
) -> Result<Dispatch, RtError> {
    let mut n = n;
    let mut argstart = stack.len() - n;

    if let Some(base) = tail_base {
        // move callee + args down over the current frame
        let dest = base - 1;
        let src = argstart - 1;
        if src != dest {
            // swap rather than clone: the slots being vacated die at the
            // truncate below, so this moves the callee + args without
            // any refcount traffic
            for i in 0..=n {
                stack.swap(dest + i, src + i);
            }
            stack.truncate(dest + n + 1);
            argstart = dest + 1;
        }
    }

    loop {
        let f = stack[argstart - 1].clone();
        if let Some(nat) = f.as_native() {
            if is_apply_native(&f) {
                // replace `apply f a … lst` with `f a … lst-elems`;
                // the new callee lands back at `argstart - 1`
                let all: Vec<Value> = stack.drain(argstart - 1..).collect();
                let (nf, nargs) = splice_apply_args(&all[1..])?;
                stack.push(nf);
                n = nargs.len();
                stack.extend(nargs);
                continue;
            }
            if crate::engine::is_cwv_native(&f) {
                // replace `call-with-values producer consumer` with
                // `consumer v…` (the producer runs reentrantly)
                let all: Vec<Value> = stack.drain(argstart - 1..).collect();
                let (nf, nargs) = crate::engine::splice_cwv_args(&Vm, &all[1..])?;
                stack.push(nf);
                n = nargs.len();
                stack.extend(nargs);
                continue;
            }
            if !nat.arity.accepts(n) {
                // as_str (allocating) is fine here: error path only
                return Err(arity_error(nat.name.as_str(), nat.arity, n));
            }
            lagoon_diag::limits::prim_call().map_err(RtError::from)?;
            let result = (nat.f)(&stack[argstart..])?;
            stack.truncate(argstart - 1);
            stack.push(result);
            return Ok(Dispatch::Done);
        }
        if let Some(c) = f.as_contracted() {
            let args: Vec<Value> = stack[argstart..].to_vec();
            let result = apply_contracted(&Vm, c, &args)?;
            stack.truncate(argstart - 1);
            stack.push(result);
            return Ok(Dispatch::Done);
        }
        if let Some(c) = f.as_closure() {
            let (proto, env) = downcast_closure(c)?;
            let frame = make_frame(stack, proto, env, argstart, n, depth)?;
            return Ok(Dispatch::Frame(frame));
        }
        return Err(RtError::type_error(format!(
            "application: not a procedure: {}",
            f.write_string()
        )));
    }
}

/// Sets up a frame for `proto` whose arguments occupy
/// `stack[base..base + n]`: checks arity, collapses rest arguments, pads
/// locals. `depth` is the number of frames already below this one.
fn make_frame(
    stack: &mut Vec<Value>,
    proto: Rc<Proto>,
    env: Rc<VmEnv>,
    base: usize,
    n: usize,
    depth: usize,
) -> Result<Frame, RtError> {
    // frames live on the heap, so this is a policy limit rather than a
    // host-stack safety one: deep non-tail recursion gets a structured
    // stack-overflow diagnostic instead of unbounded memory growth
    if depth as u64 >= lagoon_diag::limits::max_stack_depth() {
        return Err(RtError::from(lagoon_diag::limits::stack_overflow()));
    }
    if !proto.arity.accepts(n) {
        // as_str (allocating) is fine here: error path only
        return Err(arity_error(
            proto
                .name
                .map(|s| s.as_str())
                .unwrap_or_else(|| "#<procedure>".into()),
            proto.arity,
            n,
        ));
    }
    if proto.arity.rest {
        let required = proto.arity.required;
        let rest: Vec<Value> = stack.drain(base + required..).collect();
        stack.push(Value::list(rest));
    }
    while stack.len() < base + proto.nlocals as usize {
        stack.push(Value::Void);
    }
    Ok(Frame {
        proto,
        ip: 0,
        base,
        // callers that dispatch onto a non-empty float stack overwrite
        // this with the live depth (see `Op::Call`)
        fbase: 0,
        env,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiler;
    use crate::ir::parse_form;
    use lagoon_runtime::prim::primitives;
    use lagoon_syntax::read_all;
    use std::collections::HashMap;

    fn run_src(src: &str) -> Result<Value, RtError> {
        let forms = read_all(src, "<t>")
            .unwrap()
            .iter()
            .map(parse_form)
            .collect::<Result<Vec<_>, _>>()?;
        let code = Compiler::compile_module(&forms)?;
        let prims: HashMap<_, _> = primitives()
            .into_iter()
            .chain([
                crate::engine::apply_placeholder(),
                crate::engine::cwv_placeholder(),
            ])
            .collect();
        let (v, _) = Vm.run_module(&code, |name| prims.get(&name).cloned())?;
        Ok(v)
    }

    #[test]
    fn constants_and_arith() {
        assert_eq!(run_src("42").unwrap().as_int(), Some(42));
        assert_eq!(run_src("(#%plain-app + 1 2)").unwrap().as_int(), Some(3));
        assert_eq!(run_src("(#%plain-app + 1 2 3)").unwrap().as_int(), Some(6));
        assert_eq!(
            run_src("(#%plain-app * 2.5 4.0)").unwrap().as_float(),
            Some(10.0)
        );
    }

    #[test]
    fn define_and_reference() {
        let v = run_src("(define-values (x) 10) (#%plain-app + x x)").unwrap();
        assert_eq!(v.as_int(), Some(20));
    }

    #[test]
    fn lambda_call_and_capture() {
        let v = run_src(
            "(define-values (make-adder) (#%plain-lambda (n) (#%plain-lambda (m) (#%plain-app + n m))))
             (#%plain-app (#%plain-app make-adder 3) 4)",
        )
        .unwrap();
        assert_eq!(v.as_int(), Some(7));
    }

    #[test]
    fn recursion_via_global() {
        let v = run_src(
            "(define-values (fact)
               (#%plain-lambda (n)
                 (if (#%plain-app = n 0) 1 (#%plain-app * n (#%plain-app fact (#%plain-app - n 1))))))
             (#%plain-app fact 10)",
        )
        .unwrap();
        assert_eq!(v.as_int(), Some(3628800));
    }

    #[test]
    fn deep_tail_recursion() {
        let v = run_src(
            "(define-values (loop)
               (#%plain-lambda (n acc)
                 (if (#%plain-app = n 0) acc (#%plain-app loop (#%plain-app - n 1) (#%plain-app + acc 1)))))
             (#%plain-app loop 2000000 0)",
        )
        .unwrap();
        assert_eq!(v.as_int(), Some(2_000_000));
    }

    #[test]
    fn letrec_mutual_recursion() {
        let v = run_src(
            "(letrec-values ([(ev?) (#%plain-lambda (n) (if (#%plain-app = n 0) #t (#%plain-app od? (#%plain-app - n 1))))]
                             [(od?) (#%plain-lambda (n) (if (#%plain-app = n 0) #f (#%plain-app ev? (#%plain-app - n 1))))])
               (#%plain-app ev? 101))",
        )
        .unwrap();
        assert!(!v.is_truthy());
    }

    #[test]
    fn set_on_captured_variable() {
        let v = run_src(
            "(define-values (counter)
               (let-values ([(n) 0])
                 (#%plain-lambda () (begin (set! n (#%plain-app + n 1)) n))))
             (#%plain-app counter)
             (#%plain-app counter)
             (#%plain-app counter)",
        )
        .unwrap();
        assert_eq!(v.as_int(), Some(3));
    }

    #[test]
    fn rest_args() {
        let v = run_src("(#%plain-app (#%plain-lambda (a . rest) rest) 1 2 3)").unwrap();
        assert_eq!(v.list_to_vec().unwrap().len(), 2);
        let v = run_src("(#%plain-app (#%plain-lambda args args))").unwrap();
        assert!(v.is_nil());
    }

    #[test]
    fn unsafe_instructions_execute() {
        let v = run_src("(#%plain-app unsafe-fl+ 1.5 2.5)").unwrap();
        assert_eq!(v.as_float(), Some(4.0));
        let v = run_src("(#%plain-app unsafe-fc* 2.0+2.0i 2.0+2.0i)").unwrap();
        assert_eq!(v.as_complex(), Some((0.0, 8.0)));
        let v = run_src("(#%plain-app unsafe-car (#%plain-app cons 1 2))").unwrap();
        assert_eq!(v.as_int(), Some(1));
    }

    #[test]
    fn apply_through_vm() {
        let v = run_src("(#%plain-app apply + 1 (quote (2 3)))").unwrap();
        assert_eq!(v.as_int(), Some(6));
    }

    #[test]
    fn higher_order_natives() {
        // pass a closure to a native-calling position via apply
        let v = run_src(
            "(define-values (twice) (#%plain-lambda (f x) (#%plain-app f (#%plain-app f x))))
             (#%plain-app twice (#%plain-lambda (n) (#%plain-app * n n)) 3)",
        )
        .unwrap();
        assert_eq!(v.as_int(), Some(81));
    }

    #[test]
    fn errors_have_context() {
        let e = run_src("(#%plain-app car 7)").unwrap_err();
        assert!(e.message.contains("car"));
        let e = run_src("missing").unwrap_err();
        assert_eq!(e.kind, Kind::Unbound);
        let e = run_src("(#%plain-app (#%plain-lambda (x) x))").unwrap_err();
        assert_eq!(e.kind, Kind::Arity);
    }

    #[test]
    fn vector_ops() {
        let v = run_src(
            "(define-values (v) (#%plain-app make-vector 3 0))
             (#%plain-app vector-set! v 1 42)
             (#%plain-app vector-ref v 1)",
        )
        .unwrap();
        assert_eq!(v.as_int(), Some(42));
        assert!(run_src("(#%plain-app vector-ref (#%plain-app vector 1) 5)").is_err());
    }
}
