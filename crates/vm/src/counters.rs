//! Per-opcode execution counters (the `vm-counters` feature).
//!
//! Counting is doubly gated: the feature compiles the counting path in at
//! all, and [`set_active`] turns it on for a particular run. The machine
//! ([`crate::machine`]) checks [`active`] once per VM entry and selects a
//! monomorphized interpreter loop, so the hot loop carries no per-opcode
//! branch when counting is off.

use crate::bytecode::{Op, OpClass};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COUNTS: RefCell<HashMap<&'static str, (OpClass, bool, u64)>> =
        RefCell::new(HashMap::new());
}

/// Turns opcode counting on or off for this thread. The machine samples
/// this once per entry, so toggling mid-run affects only later entries.
pub fn set_active(active: bool) {
    ACTIVE.with(|a| a.set(active));
}

/// Whether opcode counting is currently active on this thread.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Records one execution of `op`.
#[inline]
pub fn record(op: &Op) {
    COUNTS.with(|c| {
        c.borrow_mut()
            .entry(op.mnemonic())
            .or_insert((op.class(), op.is_fused(), 0))
            .2 += 1;
    });
}

/// Clears all recorded counts.
pub fn reset() {
    COUNTS.with(|c| c.borrow_mut().clear());
}

/// The recorded counts as `(mnemonic, class, fused, count)`, sorted by
/// descending count (ties by mnemonic for stable output). `fused` marks
/// peephole superinstructions, so reports can show a fusion rate.
pub fn snapshot() -> Vec<(&'static str, OpClass, bool, u64)> {
    let mut rows: Vec<_> = COUNTS.with(|c| {
        c.borrow()
            .iter()
            .map(|(&name, &(class, fused, count))| (name, class, fused, count))
            .collect()
    });
    rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        reset();
        record(&Op::Add2);
        record(&Op::Add2);
        record(&Op::FlAdd);
        record(&Op::BrLt2(0));
        let snap = snapshot();
        assert_eq!(snap[0], ("Add2", OpClass::Generic, false, 2));
        assert!(snap.contains(&("FlAdd", OpClass::Specialized, false, 1)));
        assert!(snap.contains(&("BrLt2", OpClass::Generic, true, 1)));
        reset();
        assert!(snapshot().is_empty());
    }
}
